//! Elasticity end to end (paper §6): a Yokan service grows from 2 to 4
//! nodes and shrinks back, with Pufferscale planning which databases move
//! and REMI moving them — while the data stays intact throughout.
//!
//! ```text
//! cargo run --release --example elastic_storage
//! ```

use serde_json::json;

use mochi_rs::bedrock::ProviderSpec;
use mochi_rs::core::{Cluster, DynamicService, ServiceConfig};
use mochi_rs::margo::MargoRuntime;
use mochi_rs::mercury::Address;
use mochi_rs::pufferscale::Weights;
use mochi_rs::remi::Strategy;
use mochi_rs::yokan::DatabaseHandle;

fn main() {
    // A 6-node machine managed by a Flux-like resource pool.
    let cluster = Cluster::new(6);

    // Deploy on 2 nodes; each hosts two LSM-backed databases.
    let service = DynamicService::deploy(&cluster, ServiceConfig::default(), 2, |i| {
        vec![
            ProviderSpec::new(format!("shard{}", 2 * i), "yokan", 10 + 2 * i as u16)
                .with_config(json!({"backend": "lsm"})),
            ProviderSpec::new(format!("shard{}", 2 * i + 1), "yokan", 11 + 2 * i as u16)
                .with_config(json!({"backend": "lsm"})),
        ]
    })
    .unwrap();
    println!("deployed on {} nodes: {:?}", service.addresses().len(), service.addresses());

    // Load the shards unevenly so rebalancing has something to do.
    let client = MargoRuntime::init_default(cluster.fabric(), Address::tcp("client", 1)).unwrap();
    let addresses = service.addresses();
    let shard_sizes = [400usize, 100, 50, 25];
    for (shard, &n) in shard_sizes.iter().enumerate() {
        let provider_id = 10 + shard as u16;
        let addr = addresses[shard / 2].clone();
        let db = DatabaseHandle::new(&client, addr, provider_id);
        for k in 0..n {
            db.put(format!("s{shard}/k{k:05}").as_bytes(), &vec![7u8; 256]).unwrap();
        }
    }
    let total_keys: u64 = shard_sizes.iter().map(|n| *n as u64).sum();
    println!("loaded {total_keys} keys across 4 shards (sizes {shard_sizes:?})\n");

    let show = |service: &DynamicService, label: &str| {
        println!("placement {label}:");
        let placement = service.placement();
        for (node, resources) in &placement.nodes {
            let names: Vec<&str> = resources.iter().map(|r| r.id.as_str()).collect();
            println!(
                "  {node}: {names:?} (weight {})",
                resources.iter().map(|r| r.size).sum::<u64>()
            );
        }
        println!(
            "  load imbalance: {:.2}, data imbalance: {:.2}\n",
            placement.load_imbalance(),
            placement.data_imbalance()
        );
    };
    show(&service, "before scale-out");

    // Scale out: two new nodes, then rebalance.
    let n3 = service.add_node().unwrap();
    let n4 = service.add_node().unwrap();
    println!("scaled out to 4 nodes (+{n3}, +{n4})");
    let plan = service
        .rebalance(Strategy::chunked_default(), &Weights { load: 1.0, data: 1.0, time: 0.05 })
        .unwrap();
    println!(
        "pufferscale plan: {} moves, {} bytes, predicted load imbalance {:.2}",
        plan.metrics.moves, plan.metrics.total_bytes_moved, plan.metrics.load_imbalance
    );
    show(&service, "after scale-out + rebalance");

    // Verify no data was lost: every shard still answers with its keys.
    let mut verified = 0u64;
    for shard in 0..4u16 {
        let name = format!("shard{shard}");
        let home = service
            .addresses()
            .into_iter()
            .find(|a| {
                service.server(a).is_some_and(|s| s.provider_names().contains(&name))
            })
            .expect("shard has a home");
        let db = DatabaseHandle::new(&client, home, 10 + shard);
        verified += db.len().unwrap();
    }
    assert_eq!(verified, total_keys);
    println!("verified all {verified} keys survived the rescale\n");

    // Scale back in: remove the two newest nodes; their shards migrate
    // back automatically.
    for addr in [n3, n4] {
        let plan = service
            .remove_node(&addr, Strategy::Rdma, &Weights::default())
            .unwrap();
        println!("removed {addr}: {} forced moves", plan.metrics.moves);
    }
    show(&service, "after scale-in");
    let mut verified = 0u64;
    for shard in 0..4u16 {
        let name = format!("shard{shard}");
        let home = service
            .addresses()
            .into_iter()
            .find(|a| {
                service.server(a).is_some_and(|s| s.provider_names().contains(&name))
            })
            .expect("shard has a home");
        let db = DatabaseHandle::new(&client, home, 10 + shard);
        verified += db.len().unwrap();
    }
    assert_eq!(verified, total_keys);
    println!("verified all {verified} keys survived the scale-in — done.");

    client.finalize();
    service.shutdown();
}
