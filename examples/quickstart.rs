//! Quickstart: a tour of the Mochi component anatomy (paper Figures 1–2)
//! and its dynamic extensions (Listings 1–5).
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The walk-through:
//! 1. boot a simulated fabric and two Margo processes (server + client);
//! 2. build the Figure-2 topology: pools X/Y/Z, ESs, providers A/B/C;
//! 3. serve a Yokan key-value provider and call it from a resource handle
//!    (Figure 1's provider / resource-handle split);
//! 4. reconfigure online: add a pool + ES, then remove them (Listing 2/5);
//! 5. query the live configuration with Jx9 (Listing 4);
//! 6. dump Listing-1-shaped monitoring statistics.

use mochi_rs::bedrock::{BedrockServer, Client, ModuleCatalog, ProcessConfig};
use mochi_rs::margo::{MargoConfig, MargoRuntime};
use mochi_rs::mercury::{Address, Fabric};
use mochi_rs::yokan::DatabaseHandle;

fn main() {
    // 1. The interconnect and the server process. Its Margo runtime uses
    //    a Figure-2-style topology described in JSON (Listing 2 shape).
    let fabric = Fabric::new();
    let margo_config = MargoConfig::from_json(
        r#"{
          "argobots": {
            "pools": [
              { "name": "PoolX", "type": "fifo_wait", "access": "mpmc" },
              { "name": "PoolY", "type": "fifo_wait", "access": "mpmc" },
              { "name": "PoolZ", "type": "fifo_wait", "access": "mpmc" }
            ],
            "xstreams": [
              { "name": "ES0", "scheduler": { "type": "basic_wait", "pools": ["PoolX", "PoolY"] } },
              { "name": "ES1", "scheduler": { "type": "basic_wait", "pools": ["PoolZ"] } }
            ]
          },
          "progress_pool": "PoolZ",
          "default_rpc_pool": "PoolX"
        }"#,
    )
    .expect("valid margo config");

    // 2. A Bedrock-managed process: libraries + providers from JSON
    //    (Listing 3 shape). Provider A and B share PoolX, C uses PoolY —
    //    exactly the mapping of Figure 2.
    let mut process = ProcessConfig { margo: margo_config, ..ProcessConfig::default() };
    process.libraries.insert("yokan".into(), "libyokan.so".into());
    process.providers.push(
        mochi_rs::bedrock::ProviderSpec::new("providerA", "yokan", 1).with_pool("PoolX"),
    );
    process.providers.push(
        mochi_rs::bedrock::ProviderSpec::new("providerB", "yokan", 2).with_pool("PoolX"),
    );
    process.providers.push(
        mochi_rs::bedrock::ProviderSpec::new("providerC", "yokan", 3).with_pool("PoolY"),
    );

    let mut catalog = ModuleCatalog::new();
    catalog.install("libyokan.so", mochi_rs::yokan::bedrock::bedrock_module());
    let data_dir = mochi_rs::util::TempDir::new("quickstart").unwrap();
    let server = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("server", 1),
        &process,
        catalog,
        data_dir.path(),
    )
    .expect("bootstrap server");
    println!("booted Bedrock process at {} with providers {:?}", server.address(), server.provider_names());

    // 3. A client process and a resource handle (Figure 1, client side).
    let client = MargoRuntime::init_default(&fabric, Address::tcp("client", 1)).unwrap();
    let db = DatabaseHandle::new(&client, server.address(), 1);
    db.put(b"mochi", b"dynamic data services").unwrap();
    println!(
        "kv roundtrip: mochi -> {:?}",
        String::from_utf8_lossy(&db.get(b"mochi").unwrap().unwrap())
    );

    // 4. Online reconfiguration through Bedrock's remote API (Listing 5).
    let handle = Client::new(&client).make_service_handle(server.address(), 0);
    handle
        .add_pool(serde_json::json!({ "name": "MyPoolX", "type": "fifo_wait" }))
        .unwrap();
    handle
        .add_xstream(serde_json::json!({
            "name": "MyESX", "scheduler": { "type": "basic_wait", "pools": ["MyPoolX"] }
        }))
        .unwrap();
    println!("added pool MyPoolX and xstream MyESX at run time");
    handle.remove_xstream("MyESX").unwrap();
    handle.remove_pool("MyPoolX").unwrap();
    println!("removed them again — the service never stopped serving");

    // 5. Query the live configuration with Jx9 (Listing 4, verbatim).
    let names = handle
        .query(
            r#"$result = [];
               foreach ($__config__.providers as $p) {
                   array_push($result, $p.name); }
               return $result;"#,
        )
        .unwrap();
    println!("jx9 provider listing: {names}");

    // 6. Monitoring statistics (Listing 1 shape), free for every service.
    let stats = server.margo().monitoring_json().unwrap();
    let rpcs = stats["rpcs"].as_object().unwrap();
    println!("monitoring captured {} distinct RPC contexts; one entry:", rpcs.len());
    if let Some((key, entry)) = rpcs.iter().next() {
        println!(
            "  {key}: name={} target peers={}",
            entry["name"],
            entry["target"].as_object().map(|t| t.len()).unwrap_or(0)
        );
    }

    client.finalize();
    server.shutdown();
    println!("done.");
}
