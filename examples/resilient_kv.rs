//! Resilience, bottom-up and top-down (paper §7):
//!
//! 1. **virtual databases** (Observation 10): clients talk to a provider
//!    that transparently replicates to N real databases;
//! 2. **Raft-replicated state** (Observation 11): a counter state machine
//!    survives leader crashes with no lost updates;
//! 3. **checkpoint + SWIM recovery** (Observations 9 & 12): a crashed
//!    service member is rebuilt from its checkpoint on a fresh node.
//!
//! ```text
//! cargo run --release --example resilient_kv
//! ```

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde_json::json;

use mochi_rs::bedrock::ProviderSpec;
use mochi_rs::core::{Cluster, DynamicService, ResilienceConfig, ResilienceManager, ServiceConfig};
use mochi_rs::margo::MargoRuntime;
use mochi_rs::mercury::{Address, Fabric};
use mochi_rs::raft::{RaftClient, RaftConfig, RaftNode, StateMachine};
use mochi_rs::util::time::wait_until;
use mochi_rs::yokan::backend::memory::MemoryDatabase;
use mochi_rs::yokan::{DatabaseHandle, VirtualDatabaseProvider, YokanProvider};

fn part1_virtual_database(fabric: &Fabric) {
    println!("== part 1: virtual (replicated) database ==");
    let rep1 = MargoRuntime::init_default(fabric, Address::tcp("rep1", 1)).unwrap();
    let rep2 = MargoRuntime::init_default(fabric, Address::tcp("rep2", 1)).unwrap();
    let front = MargoRuntime::init_default(fabric, Address::tcp("front", 1)).unwrap();
    let client = MargoRuntime::init_default(fabric, Address::tcp("c1", 1)).unwrap();
    let _p1 = YokanProvider::register(&rep1, 1, None, Arc::new(MemoryDatabase::new())).unwrap();
    let _p2 = YokanProvider::register(&rep2, 1, None, Arc::new(MemoryDatabase::new())).unwrap();
    let _v = VirtualDatabaseProvider::register(
        &front,
        9,
        None,
        vec![(rep1.address(), 1), (rep2.address(), 1)],
        Duration::from_millis(500),
    )
    .unwrap();

    // The client cannot tell this is not a plain database.
    let db = DatabaseHandle::new(&client, front.address(), 9);
    db.put(b"replicated", b"twice").unwrap();
    println!("  wrote through the virtual provider");
    rep1.finalize();
    println!(
        "  replica 1 crashed; read still answers: {:?}",
        String::from_utf8_lossy(&db.get(b"replicated").unwrap().unwrap())
    );
    rep2.finalize();
    front.finalize();
    client.finalize();
    println!();
}

/// A Raft-replicated counter: `add N` commands, linearized.
struct Counter(Arc<Mutex<i64>>);
impl StateMachine for Counter {
    fn apply(&mut self, command: &[u8]) -> Vec<u8> {
        let delta = i64::from_le_bytes(command.try_into().unwrap_or([0; 8]));
        let mut value = self.0.lock();
        *value += delta;
        value.to_le_bytes().to_vec()
    }
    fn snapshot(&self) -> Vec<u8> {
        self.0.lock().to_le_bytes().to_vec()
    }
    fn restore(&mut self, snapshot: &[u8]) {
        *self.0.lock() = i64::from_le_bytes(snapshot.try_into().unwrap_or([0; 8]));
    }
}

fn part2_raft_counter(fabric: &Fabric) {
    println!("== part 2: Raft-replicated counter ==");
    let dir = mochi_rs::util::TempDir::new("resilient-raft").unwrap();
    let addresses: Vec<Address> = (0..3).map(|i| Address::tcp(format!("raft{i}"), 1)).collect();
    let mut nodes = Vec::new();
    for (i, addr) in addresses.iter().enumerate() {
        let margo = MargoRuntime::init_default(fabric, addr.clone()).unwrap();
        let counter = Arc::new(Mutex::new(0i64));
        let node = RaftNode::start(
            &margo,
            7,
            &addresses,
            Box::new(Counter(Arc::clone(&counter))),
            dir.path().join(format!("n{i}")),
            RaftConfig::fast(),
        )
        .unwrap();
        nodes.push((margo, node, counter));
    }
    let cm = MargoRuntime::init_default(fabric, Address::tcp("raft-client", 1)).unwrap();
    let client = RaftClient::new(&cm, 7, addresses.clone());
    for delta in [5i64, 7, -2] {
        let result = client.submit(&delta.to_le_bytes()).unwrap();
        println!(
            "  add {delta}: committed value = {}",
            i64::from_le_bytes(result.try_into().unwrap())
        );
    }
    // Crash the leader; the cluster keeps counting.
    let leader = client.find_leader().unwrap();
    let idx = addresses.iter().position(|a| *a == leader).unwrap();
    println!("  crashing leader {leader}");
    nodes[idx].1.shutdown();
    nodes[idx].0.finalize();
    let result = client.submit(&100i64.to_le_bytes()).unwrap();
    println!(
        "  add 100 after failover: committed value = {}",
        i64::from_le_bytes(result.try_into().unwrap())
    );
    for (i, (margo, node, _)) in nodes.iter().enumerate() {
        if i != idx {
            node.shutdown();
            margo.finalize();
        }
    }
    cm.finalize();
    println!();
}

fn part3_checkpoint_recovery() {
    println!("== part 3: checkpoint + SWIM-triggered recovery ==");
    let cluster = Cluster::new(4);
    let service = DynamicService::deploy(&cluster, ServiceConfig::default(), 3, |i| {
        vec![ProviderSpec::new(format!("db{i}"), "yokan", 10 + i as u16)
            .with_config(json!({"backend": "lsm"}))]
    })
    .unwrap();
    let manager = ResilienceManager::attach(
        &service,
        ResilienceConfig { checkpoint_interval: Duration::from_millis(100), auto_recover: true },
    );
    let client = MargoRuntime::init_default(cluster.fabric(), Address::tcp("c3", 1)).unwrap();
    let victim = service.addresses()[2].clone();
    let db = DatabaseHandle::new(&client, victim.clone(), 12);
    for i in 0..25u32 {
        db.put(format!("k{i}").as_bytes(), b"survives-crashes").unwrap();
    }
    println!("  wrote 25 keys to the member at {victim}");
    // Wait for a checkpoint, then pull the plug.
    wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        manager.stats().checkpoints.load(std::sync::atomic::Ordering::SeqCst) >= 2
    });
    cluster.crash(&victim).unwrap();
    println!("  crashed it abruptly (no farewell; peers rely on SWIM)");
    let recovered = wait_until(Duration::from_secs(30), Duration::from_millis(20), || {
        manager.stats().recoveries.load(std::sync::atomic::Ordering::SeqCst) >= 1
            && !service.addresses().contains(&victim)
    });
    assert!(recovered, "recovery did not happen");
    let new_home = service
        .addresses()
        .into_iter()
        .find(|a| service.server(a).is_some_and(|s| s.provider_names().contains(&"db2".into())))
        .unwrap();
    println!("  SWIM detected the death; db2 restored on fresh node {new_home}");
    let db = DatabaseHandle::new(&client, new_home, 12).with_timeout(Duration::from_secs(2));
    wait_until(Duration::from_secs(10), Duration::from_millis(50), || {
        db.len().map(|n| n == 25).unwrap_or(false)
    });
    println!("  recovered database serves {} keys — no data lost", db.len().unwrap());
    manager.stop();
    service.shutdown();
    client.finalize();
}

fn main() {
    let fabric = Fabric::new();
    part1_virtual_database(&fabric);
    part2_raft_counter(&fabric);
    part3_checkpoint_recovery();
    println!("done.");
}
