//! The paper's motivating scenario (§1): a NOvA-like workflow whose steps
//! have different optimal service configurations, served better by online
//! reconfiguration than by any static compromise.
//!
//! ```text
//! cargo run --release --example hepnos_workflow
//! ```
//!
//! The configuration dimension is the one the HEPnOS autotuning study
//! ([3] in the paper) actually explores: **how many databases the service
//! spreads its data over**.
//!
//! * The *ingest* step (event storm into LSM-backed databases) favors
//!   **many shards**: each shard's compactions rewrite only its own data,
//!   so total compaction work shrinks with the shard count.
//! * The *analysis* step (globally ordered scans) favors **few shards**:
//!   every page must be scatter-gathered across all shards.
//!
//! A static deployment must pick one. A dynamic service ingests into many
//! shards, then uses online reconfiguration (start a fresh scan-tuned
//! provider, re-shard into it, stop the old ones) before analysis.
//!
//! The workload driver lives in `mochi_core::workflow::sharded`; the
//! `e11_dynamic_vs_static` bench runs the same experiment with asserts.

use mochi_rs::bedrock::{BedrockServer, ModuleCatalog, ProcessConfig, ProviderSpec};
use mochi_rs::core::workflow::sharded;
use mochi_rs::margo::MargoRuntime;
use mochi_rs::mercury::{Address, Fabric};
use mochi_rs::util::TempDir;
use mochi_rs::yokan::DatabaseHandle;

const EVENTS: usize = 4000;
const VALUE_SIZE: usize = 512;
const SCANS: usize = 12;
const PAGE: usize = 50;

fn boot_service(
    fabric: &Fabric,
    label: &str,
    shards: usize,
    dir: &TempDir,
) -> (BedrockServer, Vec<DatabaseHandle>, Vec<String>, MargoRuntime) {
    let mut catalog = ModuleCatalog::new();
    catalog.install("libyokan.so", mochi_rs::yokan::bedrock::bedrock_module());
    let mut process = ProcessConfig::default();
    process.libraries.insert("yokan".into(), "libyokan.so".into());
    let mut names = Vec::new();
    for s in 0..shards {
        let name = format!("shard{s}");
        process.providers.push(
            ProviderSpec::new(&name, "yokan", 10 + s as u16)
                .with_config(sharded::ingest_shard_config()),
        );
        names.push(name);
    }
    let server = BedrockServer::bootstrap(
        fabric,
        Address::tcp(format!("srv-{label}"), 1),
        &process,
        catalog,
        dir.path().join(label),
    )
    .unwrap();
    let client =
        MargoRuntime::init_default(fabric, Address::tcp(format!("cli-{label}"), 1)).unwrap();
    let handles = (0..shards)
        .map(|s| DatabaseHandle::new(&client, server.address(), 10 + s as u16))
        .collect();
    (server, handles, names, client)
}

fn main() {
    let fabric = Fabric::new();
    let dir = TempDir::new("hepnos").unwrap();
    println!(
        "HEPnOS-like workflow: {EVENTS} events of {VALUE_SIZE} B, then {SCANS} ordered scans\n"
    );
    println!(
        "{:<22} {:>11} {:>11} {:>11} {:>12}",
        "configuration", "ingest (s)", "reshard (s)", "analysis (s)", "makespan (s)"
    );

    let mut results: Vec<(String, f64)> = Vec::new();
    for shards in [1usize, 8] {
        let label = format!("static-{shards}-shard");
        let (server, handles, _names, client) = boot_service(&fabric, &label, shards, &dir);
        let ingest_s = sharded::ingest(&handles, EVENTS, VALUE_SIZE);
        let analysis_s = sharded::ordered_analysis(&handles, SCANS, PAGE, EVENTS);
        let makespan = ingest_s + analysis_s;
        println!(
            "{label:<22} {ingest_s:>11.3} {:>11} {analysis_s:>11.3} {makespan:>12.3}",
            "-"
        );
        results.push((label, makespan));
        server.shutdown();
        client.finalize();
    }

    // Dynamic: ingest into 8 shards, reconfigure online, analyze 1 shard.
    let (server, handles, names, client) = boot_service(&fabric, "dynamic", 8, &dir);
    let ingest_s = sharded::ingest(&handles, EVENTS, VALUE_SIZE);
    let (reshard_s, merged) =
        sharded::reshard(&server, &client, &handles, &names, "merged", 200);
    let analysis_s = sharded::ordered_analysis(std::slice::from_ref(&merged), SCANS, PAGE, EVENTS);
    let makespan = ingest_s + reshard_s + analysis_s;
    println!(
        "{:<22} {ingest_s:>11.3} {reshard_s:>11.3} {analysis_s:>11.3} {makespan:>12.3}",
        "dynamic (8 -> 1)"
    );
    server.shutdown();
    client.finalize();

    let best_static = results.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
    println!(
        "\ndynamic makespan is {:.0}% of the best static configuration",
        100.0 * makespan / best_static
    );
    println!("(each step has a different optimal shard count; only a dynamic");
    println!(" service — online provider start/stop + data movement — gets both)");
}
