//! `mochi-rs` umbrella crate.
//!
//! Re-exports the full workspace so integration tests (`tests/`) and
//! examples (`examples/`) can reach every layer through one dependency.
//! See `DESIGN.md` for the system inventory and `README.md` for a tour.

pub use mochi_argobots as argobots;
pub use mochi_bedrock as bedrock;
pub use mochi_core as core;
pub use mochi_margo as margo;
pub use mochi_mercury as mercury;
pub use mochi_pufferscale as pufferscale;
pub use mochi_raft as raft;
pub use mochi_remi as remi;
pub use mochi_ssg as ssg;
pub use mochi_util as util;
pub use mochi_warabi as warabi;
pub use mochi_yokan as yokan;
