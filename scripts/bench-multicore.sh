#!/usr/bin/env sh
# Opt-in multi-core leg of the experiment suite. The tier-1 CI box is
# single-core, so the contention-scaling claims of EXPERIMENTS.md §A4
# print unasserted there; run this on a host with >= 4 CPUs to
# regenerate the baseline-vs-striped tables with the ratio assertions
# active. Not part of scripts/ci.sh — timing-sensitive by design.
#
# Usage: scripts/bench-multicore.sh [workspace-root]
#
# Exit codes:
#   0  tables produced (and, with >= 4 CPUs, scaling assertions held)
#   30 host has fewer than 4 CPUs (refusing to pretend: the scaling
#      claims cannot manifest — rerun on a multi-core host)
#   31 the contention bench failed
#   32 the concurrent-consistency companion tests failed
set -u

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
cd "$root"

cpus="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
if [ "$cpus" -lt 4 ]; then
    echo "bench-multicore.sh: only $cpus CPU(s) — the >= 4-thread scaling" >&2
    echo "assertions cannot manifest here; run on a multi-core host." >&2
    exit 30
fi

echo "==> a04_contention ($cpus CPUs; scaling assertions active)"
cargo bench -p mochi-bench --bench a04_contention || exit 31

# Correctness companion: the striped/snapshot designs must be faster
# *and* indistinguishable from the global locks they replaced.
echo "==> concurrent_consistency tests"
cargo test -q -p mochi-yokan --test concurrent_consistency || exit 32

echo "OK"
