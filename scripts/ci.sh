#!/usr/bin/env sh
# The tier-1 gate, in order: release build, test suite, static analysis.
# This is exactly what a PR must keep green (ROADMAP.md "tier-1").
#
# Usage: scripts/ci.sh [workspace-root]
#
# Exit codes (distinct per stage, for CI triage):
#   0  everything green
#   20 workspace build failed
#   21 test suite failed
#   22 benchmark harness failed to compile
#   23 chaos soak failed (fault-injection resilience regression)
#   10+ static-analysis failures (see scripts/lint.sh)
set -u

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
cd "$root"

echo "==> cargo build --release"
cargo build --release || exit 20

# The seeded chaos soak (tests/chaos_soak.rs) runs first and on its own
# so a resilience regression triages as 23 before the full suite's 21
# swallows it. The full suite still includes it — the re-run is cheap
# and keeps `cargo test -q` self-contained.
echo "==> cargo test --test chaos_soak"
cargo test -q --test chaos_soak || exit 23

echo "==> cargo test"
cargo test -q || exit 21

# Benches are not run in CI (timing-sensitive), but they must compile:
# they carry the experiment assertions of EXPERIMENTS.md.
echo "==> cargo bench --no-run"
cargo bench -p mochi-bench --no-run || exit 22

exec "$root/scripts/lint.sh" "$root"
