#!/usr/bin/env sh
# The tier-1 gate, in order: release build, test suite, static analysis.
# This is exactly what a PR must keep green (ROADMAP.md "tier-1").
#
# Usage: scripts/ci.sh [workspace-root]
#
# Exit codes (distinct per stage, for CI triage):
#   0  everything green
#   20 workspace build failed
#   21 test suite failed
#   22 benchmark harness failed to compile
#   23 chaos soak failed (fault-injection resilience regression)
#   24 interprocedural findings (MOCHI012/013/014: deadline loss,
#      retry soundness, relaxed atomics) not covered by lint-allow.json
#   25 lint runtime budget blown (call-graph construction must stay
#      under 30s or the pre-PR gate stops being run)
#   26 write-scaling gate failed (a04_contention: striped LSM puts must
#      scale >= 2x at 4 threads without regressing single-thread p50)
#   27 a04_contention ran but emitted no target/BENCH_a04.json
#   28 findings not in lint-baseline.sarif (new lint debt; fix it or
#      regenerate the baseline deliberately with --write-baseline)
#   29 baseline lint runtime budget blown (>= 30s)
#   33 routing gate failed (a09_routing: 4-provider mixed throughput
#      must be >= 2x the single-provider baseline)
#   34 a09_routing ran but emitted no target/BENCH_a09.json
#   35 live-rebalance soak failed (zero-acked-write-loss regression
#      while a keyspace member joins/retires mid-traffic)
#   36 provider-kill chaos failed (replicated keyspace lost an acked
#      write, stopped serving quorum reads, or failed to re-converge
#      after a member was crashed mid-traffic at rf=3)
#   10+ static-analysis failures (see scripts/lint.sh)
set -u

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
cd "$root"

# Shared by every gate that only manifests with real parallelism (the
# bench gates and the provider-kill chaos stage).
cpus=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

echo "==> cargo build --release"
cargo build --release || exit 20

# The seeded chaos soak (tests/chaos_soak.rs) runs first and on its own
# so a resilience regression triages as 23 before the full suite's 21
# swallows it. The full suite still includes it — the re-run is cheap
# and keeps `cargo test -q` self-contained.
echo "==> cargo test --test chaos_soak"
cargo test -q --test chaos_soak || exit 23

# The routed-keyspace soak (crates/core/tests/routed_rebalance.rs) also
# runs on its own first: a zero-acked-write-loss regression during a
# live rebalance triages as 35 instead of disappearing into 21.
echo "==> cargo test -p mochi-core --test routed_rebalance"
cargo test -q -p mochi-core --test routed_rebalance || exit 35

# Provider-kill chaos (crates/core/tests/replicated_kill.rs, DESIGN.md
# §18): at replication_factor 3 a member process is crashed abruptly
# mid-traffic under a seeded fault plane; the replicated keyspace must
# lose zero acked writes, keep serving quorum reads through the outage,
# and re-converge every surviving replica after fail_member. Runs on
# its own so a replication regression triages as 36, and only where the
# writer/drainer/fan-out threads can actually interleave (>= 4 CPUs);
# MOCHI_SKIP_BENCH_GATE=1 skips it with the other parallelism gates.
if [ "${MOCHI_SKIP_BENCH_GATE:-0}" = "1" ] || [ "$cpus" -lt 4 ]; then
    echo "==> provider-kill chaos skipped (cpus=${cpus}, MOCHI_SKIP_BENCH_GATE=${MOCHI_SKIP_BENCH_GATE:-0})"
else
    echo "==> cargo test -p mochi-core --test replicated_kill"
    cargo test -q -p mochi-core --test replicated_kill || exit 36
fi

echo "==> cargo test"
cargo test -q || exit 21

# Benches are not run in CI (timing-sensitive), but they must compile:
# they carry the experiment assertions of EXPERIMENTS.md.
echo "==> cargo bench --no-run"
cargo bench -p mochi-bench --no-run || exit 22

# Write-scaling gate (DESIGN.md §15): a04_contention asserts >= 2x
# striped-vs-single-stripe LSM put throughput at 4 threads plus a
# single-thread p50 non-regression, and records the measured numbers in
# target/BENCH_a04.json. The one timing-sensitive exception to the
# "benches don't run in CI" rule — it only gates where contention can
# actually manifest (>= 4 CPUs) and can be skipped outright with
# MOCHI_SKIP_BENCH_GATE=1 (offline/minimal containers, shared runners).
if [ "${MOCHI_SKIP_BENCH_GATE:-0}" = "1" ] || [ "$cpus" -lt 4 ]; then
    echo "==> write-scaling gate skipped (cpus=${cpus}, MOCHI_SKIP_BENCH_GATE=${MOCHI_SKIP_BENCH_GATE:-0})"
else
    echo "==> cargo bench a04_contention (write-scaling gate)"
    rm -f target/BENCH_a04.json
    cargo bench -p mochi-bench --bench a04_contention || exit 26
    if [ ! -f target/BENCH_a04.json ]; then
        echo "ci.sh: a04_contention emitted no target/BENCH_a04.json" >&2
        exit 27
    fi
fi

# Routing gate (DESIGN.md §17): a09_routing asserts >= 2x aggregate
# mixed read/write throughput at 4 providers vs 1 through the routed
# keyspace, and records throughput + batch p50/p99 per provider count
# in BENCH_a09.json (target/ + committed repo-root copy). Same skip
# policy as the a04 gate: the fan-out cannot manifest on < 4 CPUs.
if [ "${MOCHI_SKIP_BENCH_GATE:-0}" = "1" ] || [ "$cpus" -lt 4 ]; then
    echo "==> routing gate skipped (cpus=${cpus}, MOCHI_SKIP_BENCH_GATE=${MOCHI_SKIP_BENCH_GATE:-0})"
else
    echo "==> cargo bench a09_routing (routing gate)"
    rm -f target/BENCH_a09.json
    cargo bench -p mochi-bench --bench a09_routing || exit 33
    if [ ! -f target/BENCH_a09.json ]; then
        echo "ci.sh: a09_routing emitted no target/BENCH_a09.json" >&2
        exit 34
    fi
fi

# Interprocedural gate: the workspace must carry zero unallowlisted
# MOCHI012/013/014 findings, triaged distinctly from the rest of the
# lint (scripts/lint.sh would fold them into exit 10). The run is also
# timed — the call graph is rebuilt on every PR, so a resolution blowup
# that makes the lint slow is itself a CI regression.
echo "==> mochi-lint (interprocedural gate: MOCHI012/013/014)"
mkdir -p target
interproc_start=$(date +%s)
cargo run -q -p mochi-lint -- --root "$root" --format json \
    > target/lint-interproc.json || true # non-interproc findings fall through
interproc_elapsed=$(( $(date +%s) - interproc_start ))
if grep -Eq '"rule": "MOCHI01[234]"' target/lint-interproc.json; then
    echo "ci.sh: unallowlisted interprocedural findings:" >&2
    grep -E '"rule": "MOCHI01[234]"' target/lint-interproc.json >&2
    exit 24
fi
if [ "$interproc_elapsed" -ge 30 ]; then
    echo "ci.sh: mochi-lint took ${interproc_elapsed}s (budget 30s)" >&2
    exit 25
fi
echo "    clean in ${interproc_elapsed}s (budget 30s)"
# Any other finding class falls through to the full lint below, which
# triages it with the finer-grained 10/11 codes.

# Baseline gate (DESIGN.md §16): the delta against the committed SARIF
# baseline must be empty. Unlike the absolute gates above, this one only
# fails on *new* findings — fingerprints are line-drift-proof, so pure
# refactors pass while fresh debt (even of an already-frozen class)
# does not. Timed separately: the baseline run rebuilds the call graph
# a second time and must also stay inside the 30s budget.
echo "==> mochi-lint (baseline gate: lint-baseline.sarif)"
baseline_start=$(date +%s)
cargo run -q -p mochi-lint -- --root "$root" --format sarif \
    --baseline "$root/lint-baseline.sarif" > target/lint-baseline-run.sarif
baseline_status=$?
baseline_elapsed=$(( $(date +%s) - baseline_start ))
case "$baseline_status" in
    0) ;;
    1) echo "ci.sh: findings not in lint-baseline.sarif (see above)" >&2; exit 28 ;;
    3) ;; # stale allowlist entries triage as 11 via lint.sh below
    *) echo "ci.sh: baseline lint failed (exit $baseline_status)" >&2
       exit "$baseline_status" ;;
esac
if [ "$baseline_elapsed" -ge 30 ]; then
    echo "ci.sh: baseline mochi-lint took ${baseline_elapsed}s (budget 30s)" >&2
    exit 29
fi
echo "    no new findings in ${baseline_elapsed}s (budget 30s)"

exec "$root/scripts/lint.sh" "$root"
