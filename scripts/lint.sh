#!/usr/bin/env sh
# Pre-PR gate: workspace-specific static analysis plus (when available)
# clippy and rustfmt. mochi-lint is the hard gate — lock-order cycles,
# recursive re-locks, and any panic path or blocking call not frozen in
# lint-allow.json fail the build. See DESIGN.md §9.
#
# Usage: scripts/lint.sh [workspace-root]
set -eu

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
cd "$root"

echo "==> mochi-lint"
cargo run -q -p mochi-lint -- --root "$root"

# Advisory layers: run when the toolchain pieces exist, but don't fail
# the gate on their absence (offline/minimal containers).
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> clippy"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy unavailable; skipped"
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> rustfmt (check)"
    cargo fmt --all --check
else
    echo "==> rustfmt unavailable; skipped"
fi

echo "OK"
