#!/usr/bin/env sh
# Pre-PR gate: workspace-specific static analysis plus (when available)
# clippy and rustfmt. mochi-lint is the hard gate — lock-order cycles,
# recursive re-locks, RPC contract violations, locks held across yields,
# the interprocedural deadline/retry/atomics analyses, and any panic
# path or blocking call not frozen in lint-allow.json fail the build.
# See DESIGN.md §9, §11, and §14.
#
# Usage: scripts/lint.sh [workspace-root]
#
# A machine-readable report is always written to target/lint-report.json.
#
# Exit codes (distinct per failure class, for CI triage):
#   0  clean
#   10 mochi-lint findings (MOCHI001..MOCHI009, MOCHI011..MOCHI017)
#   11 stale lint-allow.json entries (MOCHI010: frozen debt paid down but
#      not pruned)
#   12 clippy warnings
#   13 rustfmt drift
#   14 target/lint-report.json missing or empty after a "successful" run
#   2  usage / I/O error from mochi-lint itself
set -u

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
cd "$root"

echo "==> mochi-lint"
cargo run -q -p mochi-lint -- --root "$root" \
    --json-report "$root/target/lint-report.json"
status=$?
case "$status" in
    0) ;;
    1) echo "lint.sh: mochi-lint findings (see above)" >&2; exit 10 ;;
    3) echo "lint.sh: stale lint-allow.json entries" >&2; exit 11 ;;
    *) echo "lint.sh: mochi-lint failed (exit $status)" >&2; exit "$status" ;;
esac

# A clean exit with no report means the machine-readable artifact CI
# depends on silently went missing (full disk, bad mount, refactor that
# dropped the write). Fail loudly rather than let downstream stages read
# a stale report.
if [ ! -s "$root/target/lint-report.json" ]; then
    echo "lint.sh: target/lint-report.json missing or empty after lint run" >&2
    exit 14
fi

# Advisory layers: run when the toolchain pieces exist, but don't fail
# the gate on their absence (offline/minimal containers).
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> clippy"
    cargo clippy --workspace --all-targets -- -D warnings || exit 12
else
    echo "==> clippy unavailable; skipped"
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> rustfmt (check)"
    cargo fmt --all --check || exit 13
else
    echo "==> rustfmt unavailable; skipped"
fi

echo "OK"
