#!/usr/bin/env sh
# Opt-in undefined-behavior pass: `cargo miri test` over the two
# dependency-light foundation crates, mochi-wire (zero-copy frame
# encoding: the only crate that reinterprets byte buffers) and
# mochi-util (lock-free queues and the striped counters behind the
# stats plane: the only crate with hand-rolled atomics orderings).
#
# Deliberately NOT tier-1 — see EXPERIMENTS.md ("Why miri is opt-in")
# for the rationale: miri is a rustup component the pinned offline CI
# toolchain does not carry, and interpreting the full workspace under it
# is orders of magnitude slower than the native suite. Run it locally
# after touching unsafe code or an `Ordering::` argument; MOCHI014
# covers the lexical atomics shapes in CI, miri covers the semantics.
#
# Usage: scripts/miri.sh [workspace-root]
#
# Exit codes:
#   0  clean
#   40 miri unavailable on this toolchain (not a failure of the code;
#      install with: rustup +nightly component add miri)
#   41 miri found undefined behavior or a test failed under it
set -u

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
cd "$root"

if ! cargo miri --version >/dev/null 2>&1; then
    echo "miri.sh: cargo miri unavailable on this toolchain" >&2
    echo "miri.sh: install with: rustup +nightly component add miri" >&2
    exit 40
fi

# Strict provenance makes pointer-integer round-trips (the class of bug
# the wire crate could realistically have) hard errors instead of
# best-effort warnings.
echo "==> cargo miri test -p mochi-wire -p mochi-util"
MIRIFLAGS="${MIRIFLAGS:--Zmiri-strict-provenance}" \
    cargo miri test -p mochi-wire -p mochi-util || exit 41

echo "OK"
