//! E9 — virtual (replicated) databases (paper §7, Observation 10).
//!
//! Claims under test: replication is transparent to clients; write cost
//! grows roughly linearly with the replication factor N (write-all),
//! while read cost stays flat (read-one); reads survive replica loss.

use std::sync::Arc;
use std::time::Duration;

use mochi_bench::{boot, fmt_latency, measure, Table};
use mochi_margo::MargoRuntime;
use mochi_mercury::{Address, Fabric};
use mochi_yokan::backend::memory::MemoryDatabase;
use mochi_yokan::{DatabaseHandle, VirtualDatabaseProvider, YokanProvider};

fn main() {
    let fabric = Fabric::new();
    let client = boot(&fabric, "client");
    let mut table = Table::new(&["replicas", "put latency", "get latency", "read after kill"]);

    for n in [1usize, 2, 3, 5] {
        // N replica processes + a front process hosting the virtual db.
        let mut replicas: Vec<(MargoRuntime, Arc<YokanProvider>)> = Vec::new();
        for r in 0..n {
            let margo = boot(&fabric, &format!("rep-{n}-{r}"));
            let provider =
                YokanProvider::register(&margo, 1, None, Arc::new(MemoryDatabase::new()))
                    .unwrap();
            replicas.push((margo, provider));
        }
        let front = boot(&fabric, &format!("front-{n}"));
        let targets: Vec<(Address, u16)> =
            replicas.iter().map(|(m, _)| (m.address(), 1u16)).collect();
        let _virtual_provider = VirtualDatabaseProvider::register(
            &front,
            9,
            None,
            targets,
            Duration::from_millis(300),
        )
        .unwrap();
        let db = DatabaseHandle::new(&client, front.address(), 9);

        let value = vec![0xABu8; 256];
        let puts = measure(50, 1000, || {
            db.put(b"bench", &value).unwrap();
        });
        let gets = measure(50, 1000, || {
            let _ = db.get(b"bench").unwrap();
        });

        // Kill the first replica; reads must fail over.
        let read_after_kill = if n > 1 {
            replicas[0].0.finalize();
            let h = measure(5, 100, || {
                assert!(db.get(b"bench").unwrap().is_some());
            });
            fmt_latency(&h)
        } else {
            "n/a (single copy)".to_string()
        };

        table.row(&[n.to_string(), fmt_latency(&puts), fmt_latency(&gets), read_after_kill]);

        for (margo, _) in &replicas {
            if !margo.is_finalized() {
                margo.finalize();
            }
        }
        front.finalize();
    }
    table.print("E9 — virtual database: cost vs replication factor");
    println!("claims reproduced: put latency grows with N (write-all), get");
    println!("latency stays flat (read-one), and reads keep working after a");
    println!("replica dies (with a failover penalty on the first attempt).");
    client.finalize();
}
