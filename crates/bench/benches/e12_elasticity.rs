//! E12 — end-to-end elasticity (paper §6): a live service scales from
//! 2 to 4 nodes and back under continuous client load, rebalancing with
//! Pufferscale + REMI.
//!
//! Claims under test: scale-out/in completes quickly; data is never lost;
//! client traffic keeps flowing throughout (bounded disruption).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use serde_json::json;

use mochi_bedrock::ProviderSpec;
use mochi_bench::{boot, fmt_secs, Table};
use mochi_core::{Cluster, DynamicService, ServiceConfig};
use mochi_pufferscale::Weights;
use mochi_remi::Strategy;
use mochi_util::time::Stopwatch;
use mochi_yokan::DatabaseHandle;

const KEYS_PER_SHARD: usize = 300;

fn main() {
    let cluster = Cluster::new(6);
    let service = DynamicService::deploy(&cluster, ServiceConfig::default(), 2, |i| {
        vec![
            ProviderSpec::new(format!("shard{}", 2 * i), "yokan", 10 + 2 * i as u16)
                .with_config(json!({"backend": "lsm"})),
            ProviderSpec::new(format!("shard{}", 2 * i + 1), "yokan", 11 + 2 * i as u16)
                .with_config(json!({"backend": "lsm"})),
        ]
    })
    .unwrap();
    let client = boot(cluster.fabric(), "loader");

    // Load 4 shards.
    let addresses = service.addresses();
    for shard in 0..4u16 {
        let db = DatabaseHandle::new(&client, addresses[shard as usize / 2].clone(), 10 + shard);
        for k in 0..KEYS_PER_SHARD {
            db.put(format!("s{shard}/k{k:05}").as_bytes(), &[9u8; 128]).unwrap();
        }
    }
    let total_keys = 4 * KEYS_PER_SHARD as u64;

    // Continuous read traffic against shard0, wherever it lives.
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let read_errors = Arc::new(AtomicU64::new(0));
    let reader = {
        let service = Arc::clone(&service);
        let client = client.clone();
        let stop = Arc::clone(&stop);
        let reads = Arc::clone(&reads);
        let read_errors = Arc::clone(&read_errors);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let home = service.addresses().into_iter().find(|a| {
                    service
                        .server(a)
                        .is_some_and(|s| s.provider_names().contains(&"shard0".to_string()))
                });
                let Some(home) = home else { continue };
                let db = DatabaseHandle::new(&client, home, 10)
                    .with_timeout(std::time::Duration::from_millis(500));
                match db.get(b"s0/k00000") {
                    Ok(Some(_)) => {
                        reads.fetch_add(1, Ordering::SeqCst);
                    }
                    // A read hitting the window where the provider is
                    // mid-migration counts as a disruption.
                    _ => {
                        read_errors.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        })
    };

    let mut table = Table::new(&["step", "duration", "moves", "weight moved (keys)"]);
    let weights = Weights { load: 1.0, data: 1.0, time: 0.05 };

    // Scale out 2 → 4.
    let sw = Stopwatch::start();
    let n3 = service.add_node().unwrap();
    let n4 = service.add_node().unwrap();
    let add_s = sw.elapsed_secs();
    table.row(&["add 2 nodes".into(), fmt_secs(add_s), "-".into(), "-".into()]);

    let sw = Stopwatch::start();
    let plan = service.rebalance(Strategy::chunked_default(), &weights).unwrap();
    table.row(&[
        "rebalance onto 4 nodes".into(),
        fmt_secs(sw.elapsed_secs()),
        plan.metrics.moves.to_string(),
        plan.metrics.total_bytes_moved.to_string(),
    ]);

    // Scale in 4 → 2.
    let sw = Stopwatch::start();
    let plan3 = service.remove_node(&n3, Strategy::Rdma, &weights).unwrap();
    let plan4 = service.remove_node(&n4, Strategy::Rdma, &weights).unwrap();
    table.row(&[
        "remove 2 nodes (drain)".into(),
        fmt_secs(sw.elapsed_secs()),
        (plan3.metrics.moves + plan4.metrics.moves).to_string(),
        (plan3.metrics.total_bytes_moved + plan4.metrics.total_bytes_moved).to_string(),
    ]);

    stop.store(true, Ordering::SeqCst);
    reader.join().unwrap();

    // Verify all data survived.
    let mut verified = 0u64;
    for shard in 0..4u16 {
        let name = format!("shard{shard}");
        let home = service
            .addresses()
            .into_iter()
            .find(|a| service.server(a).is_some_and(|s| s.provider_names().contains(&name)))
            .expect("shard has a home");
        let db = DatabaseHandle::new(&client, home, 10 + shard);
        verified += db.len().unwrap();
    }
    table.print("E12 — elastic scale-out/in under load (2 -> 4 -> 2 nodes)");
    println!(
        "data integrity: {verified}/{total_keys} keys present after both rescales"
    );
    assert_eq!(verified, total_keys);
    println!(
        "client traffic during the whole sequence: {} successful reads, {} disrupted",
        reads.load(Ordering::SeqCst),
        read_errors.load(Ordering::SeqCst)
    );
    println!("claim reproduced: the service rescales online; data survives and");
    println!("reads continue, with disruption limited to the migration windows.");

    service.shutdown();
    client.finalize();
}
