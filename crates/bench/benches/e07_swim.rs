//! E7 — SSG/SWIM failure detection and view convergence (paper §6
//! Observation 7, §7 Observation 12).
//!
//! Claims under test: the view propagates to all members after a join;
//! a crash is detected within the bound implied by the protocol period
//! and suspicion window, at every group size; detection scales gently
//! with group size (gossip dissemination).

use std::time::{Duration, Instant};

use mochi_bench::{fmt_secs, Table};
use mochi_margo::MargoRuntime;
use mochi_mercury::{Address, Fabric};
use mochi_ssg::{SsgGroup, SwimConfig};
use mochi_util::time::wait_until;

struct Member {
    margo: MargoRuntime,
    group: std::sync::Arc<SsgGroup>,
}

fn bootstrap(fabric: &Fabric, n: usize, config: SwimConfig, tag: &str) -> Vec<Member> {
    let addresses: Vec<Address> =
        (0..n).map(|i| Address::tcp(format!("{tag}-m{i}"), 1)).collect();
    addresses
        .iter()
        .map(|addr| {
            let margo = MargoRuntime::init_default(fabric, addr.clone()).unwrap();
            let group = SsgGroup::create(&margo, 42, config, &addresses).unwrap();
            Member { margo, group }
        })
        .collect()
}

fn main() {
    let fabric = Fabric::new();
    let mut table = Table::new(&[
        "group size",
        "period",
        "detect bound",
        "crash detected (all views)",
        "join propagated",
    ]);

    for (period_ms, sizes) in [(10u64, vec![4usize, 8, 16, 32]), (50, vec![8])] {
        for n in sizes {
            let config = SwimConfig {
                period_ms,
                ping_timeout_ms: period_ms / 2,
                suspicion_periods: 3,
                ..SwimConfig::default()
            };
            let members = bootstrap(&fabric, n, config, &format!("g{n}p{period_ms}"));
            // Crash one member abruptly; time until every survivor's view
            // has dropped it.
            let victim = members.last().unwrap();
            let start = Instant::now(); // the crash instant
            victim.group.stop();
            victim.margo.finalize();
            let survivors = &members[..n - 1];
            let detected = wait_until(Duration::from_secs(60), Duration::from_millis(2), || {
                survivors.iter().all(|m| m.group.view().len() == n - 1)
            });
            assert!(detected, "crash never detected at n={n}");
            let detection = start.elapsed().as_secs_f64();

            // A new member joins; time until every view includes it.
            let newcomer_margo = MargoRuntime::init_default(
                &fabric,
                Address::tcp(format!("g{n}p{period_ms}-new"), 1),
            )
            .unwrap();
            let start = Instant::now();
            let newcomer = SsgGroup::join(
                &newcomer_margo,
                42,
                config,
                &Address::tcp(format!("g{n}p{period_ms}-m0"), 1),
            )
            .unwrap();
            let joined = wait_until(Duration::from_secs(60), Duration::from_millis(2), || {
                survivors.iter().all(|m| m.group.view().len() == n)
                    && newcomer.view().len() == n
            });
            assert!(joined, "join never propagated at n={n}");
            let join_time = start.elapsed().as_secs_f64();

            table.row(&[
                n.to_string(),
                format!("{period_ms} ms"),
                fmt_secs(config.detection_bound().as_secs_f64()),
                fmt_secs(detection),
                fmt_secs(join_time),
            ]);

            newcomer.stop();
            newcomer_margo.finalize();
            for m in survivors {
                m.group.stop();
                m.margo.finalize();
            }
        }
    }
    table.print("E7 — SWIM failure detection & view convergence");
    println!("claims reproduced: views converge after joins and crashes;");
    println!("detection latency tracks the protocol period (compare the 10 ms");
    println!("and 50 ms rows) and grows only mildly with group size, as the");
    println!("SWIM dissemination analysis predicts.");
}
