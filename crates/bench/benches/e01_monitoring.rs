//! E1 — performance introspection (paper §4, Listing 1).
//!
//! Claim under test: Margo-level monitoring is available "at no
//! engineering cost" and cheap enough to leave on. We measure echo-RPC
//! latency and KV put/get throughput with monitoring disabled, with the
//! default statistics monitor, and with statistics + 10 ms sampling, and
//! we verify the dump carries the Listing-1 structure.
//!
//! Criterion drives the micro-benchmark portion; the table summarizes.

use std::sync::Arc;

use criterion::{Criterion, SamplingMode};

use mochi_bench::{fmt_latency, fmt_rate, measure, Table};
use mochi_margo::{MargoConfig, MargoRuntime};
use mochi_mercury::{Address, Fabric};
use mochi_yokan::backend::memory::MemoryDatabase;
use mochi_yokan::{DatabaseHandle, YokanProvider};

struct Setup {
    server: MargoRuntime,
    client: MargoRuntime,
    db: DatabaseHandle,
}

fn setup(fabric: &Fabric, label: &str, monitoring: bool, sampling_ms: u64) -> Setup {
    let mut config = MargoConfig::default();
    config.monitoring.enabled = monitoring;
    config.monitoring.sampling_period_ms = sampling_ms;
    let server =
        MargoRuntime::init(fabric, Address::tcp(format!("srv-{label}"), 1), &config).unwrap();
    let client =
        MargoRuntime::init(fabric, Address::tcp(format!("cli-{label}"), 1), &config).unwrap();
    server.register_typed("echo", 0, None, |v: u64, _| Ok(v)).unwrap();
    let provider =
        YokanProvider::register(&server, 1, None, Arc::new(MemoryDatabase::new())).unwrap();
    let db = DatabaseHandle::new(&client, server.address(), 1);
    std::mem::forget(provider);
    Setup { server, client, db }
}

fn main() {
    let fabric = Fabric::new();
    let configs: Vec<(&str, bool, u64)> = vec![
        ("off", false, 0),
        ("stats", true, 0),
        ("stats+sampling", true, 10),
    ];

    let mut table = Table::new(&[
        "monitoring",
        "echo latency",
        "echo rate",
        "put rate",
        "get rate",
    ]);

    let mut criterion = Criterion::default().without_plots().sample_size(30);
    let mut group = criterion.benchmark_group("e01_monitoring_echo");
    group.sampling_mode(SamplingMode::Flat);

    for (label, monitoring, sampling) in &configs {
        let s = setup(&fabric, label, *monitoring, *sampling);
        // Criterion micro-measurement of one echo RPC.
        let server_addr = s.server.address();
        let client = s.client.clone();
        group.bench_function(*label, |b| {
            b.iter(|| {
                let _: u64 = client.forward(&server_addr, "echo", 0, &7u64).unwrap();
            })
        });
        // Table measurements.
        let echo = measure(100, 2000, || {
            let _: u64 = s.client.forward(&server_addr, "echo", 0, &7u64).unwrap();
        });
        let puts = measure(100, 2000, || {
            s.db.put(b"bench-key", b"bench-value-0123456789").unwrap();
        });
        let gets = measure(100, 2000, || {
            let _ = s.db.get(b"bench-key").unwrap();
        });
        table.row(&[
            label.to_string(),
            fmt_latency(&echo),
            fmt_rate(2000, echo.mean() * 2000.0),
            fmt_rate(2000, puts.mean() * 2000.0),
            fmt_rate(2000, gets.mean() * 2000.0),
        ]);

        // Listing-1 structure check on the monitored configs.
        if *monitoring {
            let stats = s.server.monitoring_json().unwrap();
            let rpcs = stats["rpcs"].as_object().unwrap();
            assert!(!rpcs.is_empty());
            let (key, entry) = rpcs.iter().next().unwrap();
            assert_eq!(key.split(':').count(), 4, "Listing-1 key format");
            assert!(entry["target"].is_object() || entry["origin"].is_object());
        } else {
            assert!(s.server.monitoring_json().is_none());
        }
        s.server.finalize();
        s.client.finalize();
    }
    group.finish();

    table.print("E1 — monitoring overhead (echo RPC + Yokan put/get)");
    println!("claim: statistics monitoring costs a few percent at most; the");
    println!("dump is Listing-1-shaped (verified by assertion above).");
}
