//! E11 — the headline experiment: per-step online reconfiguration beats
//! every static configuration (paper §1, the HEPnOS/NOvA motivation).
//!
//! Workload: ingest `EVENTS` fixed-size events, then run `SCANS` globally
//! ordered scans. Configuration dimension (from the HEPnOS autotuning
//! study [3]): the number of databases the data is sharded over.
//!
//! * ingest favors many shards (LSM compaction cost ∝ n²/K),
//! * ordered analysis favors one shard (scatter-gather RPCs ∝ K),
//! * the dynamic run ingests on 8 shards, then reconfigures online
//!   (start a scan-tuned provider, re-shard, stop the old providers)
//!   before analysis — paying the reconfiguration cost explicitly.

use mochi_bedrock::{BedrockServer, ModuleCatalog, ProcessConfig, ProviderSpec};
use mochi_bench::{boot, fmt_secs, Table};
use mochi_core::workflow::sharded;
use mochi_margo::MargoRuntime;
use mochi_mercury::{Address, Fabric};
use mochi_util::TempDir;
use mochi_yokan::DatabaseHandle;

const EVENTS: usize = 4000;
const VALUE_SIZE: usize = 512;
const SCANS: usize = 12;
const PAGE: usize = 50;

fn boot_service(
    fabric: &Fabric,
    label: &str,
    shards: usize,
    dir: &TempDir,
) -> (BedrockServer, Vec<DatabaseHandle>, Vec<String>, MargoRuntime) {
    let mut catalog = ModuleCatalog::new();
    catalog.install("libyokan.so", mochi_yokan::bedrock::bedrock_module());
    let mut process = ProcessConfig::default();
    process.libraries.insert("yokan".into(), "libyokan.so".into());
    let mut names = Vec::new();
    for s in 0..shards {
        let name = format!("shard{s}");
        process.providers.push(
            ProviderSpec::new(&name, "yokan", 10 + s as u16)
                .with_config(sharded::ingest_shard_config()),
        );
        names.push(name);
    }
    let server = BedrockServer::bootstrap(
        fabric,
        Address::tcp(format!("srv-{label}"), 1),
        &process,
        catalog,
        dir.path().join(label),
    )
    .unwrap();
    let client = boot(fabric, &format!("cli-{label}"));
    let handles = (0..shards)
        .map(|s| DatabaseHandle::new(&client, server.address(), 10 + s as u16))
        .collect();
    (server, handles, names, client)
}

fn main() {
    let fabric = Fabric::new();
    let dir = TempDir::new("e11").unwrap();
    println!("E11 workload: {EVENTS} events x {VALUE_SIZE} B, then {SCANS} ordered scans");

    let mut table = Table::new(&[
        "configuration",
        "ingest",
        "reconfig",
        "analysis",
        "makespan",
    ]);
    let mut best_static = f64::INFINITY;

    for shards in [1usize, 2, 8] {
        let label = format!("static-{shards}");
        let (server, handles, _names, client) = boot_service(&fabric, &label, shards, &dir);
        let ingest_s = sharded::ingest(&handles, EVENTS, VALUE_SIZE);
        let analysis_s = sharded::ordered_analysis(&handles, SCANS, PAGE, EVENTS);
        let makespan = ingest_s + analysis_s;
        best_static = best_static.min(makespan);
        table.row(&[
            label,
            fmt_secs(ingest_s),
            "-".into(),
            fmt_secs(analysis_s),
            fmt_secs(makespan),
        ]);
        server.shutdown();
        client.finalize();
    }

    let (server, handles, names, client) = boot_service(&fabric, "dynamic", 8, &dir);
    let ingest_s = sharded::ingest(&handles, EVENTS, VALUE_SIZE);
    let (reconfig_s, merged) =
        sharded::reshard(&server, &client, &handles, &names, "merged", 200);
    let analysis_s = sharded::ordered_analysis(
        std::slice::from_ref(&merged),
        SCANS,
        PAGE,
        EVENTS,
    );
    let makespan = ingest_s + reconfig_s + analysis_s;
    table.row(&[
        "dynamic (8 -> 1)".into(),
        fmt_secs(ingest_s),
        fmt_secs(reconfig_s),
        fmt_secs(analysis_s),
        fmt_secs(makespan),
    ]);
    server.shutdown();
    client.finalize();

    table.print("E11 — per-step reconfiguration vs static configurations");
    println!(
        "dynamic makespan = {:.0}% of the best static configuration",
        100.0 * makespan / best_static
    );
    assert!(
        makespan < best_static,
        "dynamic should beat every static configuration \
         (dynamic {makespan:.3}s vs best static {best_static:.3}s)"
    );
    println!("claim reproduced: each step has a different optimal configuration;");
    println!("a service that reconfigures online outperforms every static one,");
    println!("even counting the cost of the reconfiguration itself.");
}
