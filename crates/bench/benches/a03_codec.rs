//! Ablation A3 — JSON vs mochi-wire argument codec.
//!
//! E1's echo rate is bounded by per-call argument encoding: the seed
//! codec serialized every RPC argument as JSON, which inflates byte
//! blobs ~4x (a JSON number array) and burns cycles formatting and
//! parsing text. This ablation isolates the codec swap behind the E1
//! numbers: encode/decode latency and bytes-on-wire for the three
//! payload shapes the stack actually ships — small control arguments
//! (yokan/warabi headers), a 64-entry string map (Bedrock-style
//! config-ish arguments), and a 4 KiB binary blob (inline data-plane
//! payloads below the bulk threshold).
//!
//! No network, no runtime: pure codec cost.

use std::collections::BTreeMap;
use std::hint::black_box;

use mochi_bench::{fmt_secs, measure, Table};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

const WARMUP: usize = 2_000;
const ITERATIONS: usize = 20_000;

/// Shaped like the inline-path headers (yokan `KeyHeader`, warabi
/// `WriteHeader`): a short key, an offset, a length, a flag.
#[derive(Serialize, Deserialize)]
struct ControlArgs {
    key: Vec<u8>,
    offset: u64,
    len: u32,
    flag: bool,
}

#[derive(Serialize, Deserialize)]
struct BlobArgs {
    id: u64,
    data: Vec<u8>,
}

struct CodecRun {
    bytes: usize,
    encode_p50: f64,
    decode_p50: f64,
}

fn run_codec<T>(
    value: &T,
    encode: impl Fn(&T) -> Vec<u8>,
    decode: impl Fn(&[u8]) -> T,
) -> CodecRun
where
    T: Serialize + DeserializeOwned,
{
    let encoded = encode(value);
    let enc = measure(WARMUP, ITERATIONS, || {
        black_box(encode(black_box(value)));
    });
    let dec = measure(WARMUP, ITERATIONS, || {
        black_box(decode(black_box(&encoded)));
    });
    CodecRun { bytes: encoded.len(), encode_p50: enc.quantile(0.5), decode_p50: dec.quantile(0.5) }
}

fn compare<T>(table: &mut Table, workload: &str, value: &T) -> (CodecRun, CodecRun)
where
    T: Serialize + DeserializeOwned,
{
    let json = run_codec(
        value,
        |v| serde_json::to_vec(v).expect("json encode"),
        |b| serde_json::from_slice(b).expect("json decode"),
    );
    let wire = run_codec(
        value,
        |v| mochi_wire::to_vec(v).expect("wire encode"),
        |b| mochi_wire::from_slice(b).expect("wire decode"),
    );
    for (codec, run) in [("json", &json), ("wire", &wire)] {
        table.row(&[
            workload.to_string(),
            codec.to_string(),
            run.bytes.to_string(),
            fmt_secs(run.encode_p50),
            fmt_secs(run.decode_p50),
        ]);
    }
    (json, wire)
}

fn main() {
    let mut table = Table::new(&["workload", "codec", "bytes", "encode p50", "decode p50"]);

    let control = ControlArgs { key: b"event/00001234".to_vec(), offset: 4096, len: 512, flag: true };
    let (json_control, wire_control) = compare(&mut table, "control args", &control);

    let map: BTreeMap<String, u64> = (0..64).map(|i| (format!("shard_{i:03}"), i * 7)).collect();
    let (json_map, wire_map) = compare(&mut table, "64-entry map", &map);

    let blob = BlobArgs { id: 42, data: (0..4096u32).map(|i| (i % 251) as u8).collect() };
    let (json_blob, wire_blob) = compare(&mut table, "4 KiB blob", &blob);

    table.print(&format!(
        "A3 — argument codec ablation (p50 of {ITERATIONS} iterations, no network)"
    ));

    // The two claims E1 leans on, checked every run.
    assert!(
        wire_blob.bytes * 2 <= json_blob.bytes,
        "wire blob {} B not >=2x smaller than json {} B",
        wire_blob.bytes,
        json_blob.bytes
    );
    assert!(
        wire_control.encode_p50 + wire_control.decode_p50
            < json_control.encode_p50 + json_control.decode_p50,
        "wire control-args round trip not faster than json"
    );
    assert!(wire_map.bytes < json_map.bytes);

    println!("shape: wire stays within a tag+varint of raw payload size");
    println!(
        "(blob: {} B vs {} B json, {:.1}x) and skips text formatting on the",
        wire_blob.bytes,
        json_blob.bytes,
        json_blob.bytes as f64 / wire_blob.bytes as f64
    );
    println!("hot path — the per-call win multiplied by every E1 echo.");
}
