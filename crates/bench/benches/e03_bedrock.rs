//! E3 — Bedrock provider lifecycle and consistent cross-process changes
//! (paper §5, Observation 3, Listings 3 & 5).
//!
//! Claims under test: providers start/stop online quickly; concurrent
//! conflicting transactions (the c1/c2 example) never both succeed and
//! never leave the dangling-dependency state p1-without-p2.

use std::sync::Arc;

use mochi_bedrock::module::testkit::TestModule;
use mochi_bedrock::{
    apply_transaction, BedrockServer, ModuleCatalog, ProcessConfig, ProviderSpec, TxnOp,
};
use mochi_bench::{boot, fmt_latency, measure, Table};
use mochi_mercury::{Address, Fabric};
use mochi_util::TempDir;

fn main() {
    let fabric = Fabric::new();
    let dir = TempDir::new("e03").unwrap();
    let mut catalog = ModuleCatalog::new();
    catalog.install("liba.so", Arc::new(TestModule { type_name: "A".into() }));
    catalog.install("libb.so", Arc::new(TestModule { type_name: "B".into() }));

    let mut config = ProcessConfig::default();
    config.libraries.insert("A".into(), "liba.so".into());
    config.libraries.insert("B".into(), "libb.so".into());
    let n1 = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n1", 1),
        &config,
        catalog.clone(),
        dir.path().join("n1"),
    )
    .unwrap();
    let n2 = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n2", 1),
        &config,
        catalog,
        dir.path().join("n2"),
    )
    .unwrap();
    let client = boot(&fabric, "client");
    let handle = mochi_bedrock::Client::new(&client).make_service_handle(n1.address(), 0);

    // --- Provider lifecycle latencies (remote, via Listing-5 API) ------
    let mut i = 0u16;
    let start = measure(5, 200, || {
        i += 1;
        handle.start_provider(&ProviderSpec::new(format!("prov{i}"), "A", 100 + i)).unwrap();
    });
    let mut j = 0u16;
    let stop = measure(5, 200, || {
        j += 1;
        handle.stop_provider(&format!("prov{j}")).unwrap();
    });
    for k in 201..=205 {
        let _ = handle.stop_provider(&format!("prov{k}"));
    }
    let get_config = measure(5, 200, || {
        let _ = handle.get_config().unwrap();
    });
    let mut table = Table::new(&["operation", "latency"]);
    table.row(&["startProvider (remote)".into(), fmt_latency(&start)]);
    table.row(&["stopProvider (remote)".into(), fmt_latency(&stop)]);
    table.row(&["getConfig (remote)".into(), fmt_latency(&get_config)]);
    table.print("E3a — Bedrock provider lifecycle (Listing 5 API)");

    // --- The c1/c2 consistency race, repeated --------------------------
    const ROUNDS: usize = 30;
    let mut c1_wins = 0usize;
    let mut c2_wins = 0usize;
    let mut both = 0usize;
    let mut inconsistent = 0usize;
    for round in 0..ROUNDS {
        let p2_name = format!("p2-{round}");
        let p1_name = format!("p1-{round}");
        // Create p2 on n2.
        let h2 = mochi_bedrock::Client::new(&client).make_service_handle(n2.address(), 0);
        h2.start_provider(&ProviderSpec::new(&p2_name, "A", 500)).unwrap();

        // c1: create p1 on n1 depending on p2@n2; c2: destroy p2 on n2.
        let spec = ProviderSpec::new(&p1_name, "B", 501)
            .with_dependency("dep", format!("{p2_name}@{}", n2.address()));
        // Alternate a small head start so both interleavings occur.
        let stagger = std::time::Duration::from_micros(300);
        let c1 = {
            let client = client.clone();
            let n1_addr = n1.address();
            let delay = if round % 2 == 0 { std::time::Duration::ZERO } else { stagger };
            std::thread::spawn(move || {
                std::thread::sleep(delay);
                apply_transaction(&client, 0, vec![(n1_addr, TxnOp::StartProvider { spec })])
            })
        };
        let c2 = {
            let client = client.clone();
            let n2_addr = n2.address();
            let name = p2_name.clone();
            let delay = if round % 2 == 1 { std::time::Duration::ZERO } else { stagger };
            std::thread::spawn(move || {
                std::thread::sleep(delay);
                apply_transaction(&client, 0, vec![(n2_addr, TxnOp::StopProvider { name })])
            })
        };
        let r1 = c1.join().unwrap().is_ok();
        let r2 = c2.join().unwrap().is_ok();
        let p1_exists = n1.provider_names().contains(&p1_name);
        let p2_exists = n2.provider_names().contains(&p2_name);
        match (p1_exists, p2_exists) {
            (true, true) => c1_wins += 1,
            (false, false) => c2_wins += 1,
            (false, true) => {
                // Neither txn took effect (both aborted): legal, retry-able.
                if r1 || r2 {
                    inconsistent += 1;
                } else {
                    both += 1; // "both aborted" bucket
                }
            }
            (true, false) => inconsistent += 1, // the forbidden state
        }
        // Cleanup for the next round.
        let _ = n1.stop_provider(&p1_name);
        let _ = h2.stop_provider(&p2_name);
    }
    let mut table = Table::new(&["outcome", "count"]);
    table.row(&["c1 wins (p1 and p2 exist)".into(), c1_wins.to_string()]);
    table.row(&["c2 wins (neither exists)".into(), c2_wins.to_string()]);
    table.row(&["both aborted (p2 survives, no p1)".into(), both.to_string()]);
    table.row(&["FORBIDDEN p1-without-p2".into(), inconsistent.to_string()]);
    table.print(&format!("E3b — c1/c2 transaction race, {ROUNDS} rounds"));
    assert_eq!(inconsistent, 0, "2PC must never leave a dangling dependency");
    println!("claim: \"either c1's or c2's request will succeed, but not both\" —");
    println!("the dangling state never occurred across {ROUNDS} races.");

    n1.shutdown();
    n2.shutdown();
    client.finalize();
}
