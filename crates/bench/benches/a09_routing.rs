//! A9 — routed keyspace scaling: 1 vs 2 vs 4 providers.
//!
//! Claim under test: `RoutedKv`'s client-side consistent-hash routing
//! with concurrent scatter-gather multi-ops turns per-provider caps into
//! aggregate throughput — a mixed read/write workload over 4 providers
//! sustains >= 2x the single-provider rate, because each destination leg
//! is an independent RPC pipeline into an independent process.
//!
//! Two legs:
//!   1. Mixed throughput: 8 client threads issue interleaved
//!      `put_multi`/`get_multi` batches against a routed keyspace of
//!      1, 2, then 4 Yokan providers (one per service node). Reported
//!      as aggregate key-ops/s per provider count.
//!   2. Multi-op latency: single-thread `put_multi`/`get_multi` batch
//!      p50/p99 per provider count — fan-out must buy throughput
//!      without inflating the individual batch.
//!
//! The >= 2x ratio assertion only fires when the host exposes >= 4 CPUs
//! (below that the fan-out legs and the provider processes time-slice a
//! shared core and the scaling cannot manifest); the numbers still
//! print and land in the JSON with `"asserted": false`.
//!
//! Emits `BENCH_a09.json` twice: under `target/` (consumed by the
//! `scripts/ci.sh` routing gate) and at the repo root, where it is
//! committed so the perf trajectory survives `cargo clean` and rides
//! along with the PR that changed the routing layer.

use std::path::Path;
use std::sync::Barrier;

use mochi_bench::{fmt_latency, fmt_rate, measure, Table};
use mochi_core::routed::{RoutedConfig, RoutedKv};
use mochi_core::{Cluster, DynamicService, ServiceConfig};
use mochi_margo::MargoRuntime;
use mochi_mercury::Address;
use serde_json::json;

const KEYSPACE: &str = "a09";
const PROVIDER_COUNTS: [usize; 3] = [1, 2, 4];
const THREADS: usize = 8;
const ROUNDS_PER_THREAD: usize = 150;
/// Keys per `put_multi`/`get_multi` batch.
const BATCH: usize = 16;
/// Distinct keys per thread (gets always hit preloaded keys).
const KEYS_PER_THREAD: usize = 512;

fn key_for(thread: usize, i: usize) -> Vec<u8> {
    format!("a09-{thread:02}-{:04}", i % KEYS_PER_THREAD).into_bytes()
}

/// One routed keyspace over `providers` Yokan providers, one per
/// service node, plus the client runtime issuing the workload.
struct Deployment {
    service: std::sync::Arc<DynamicService>,
    client: MargoRuntime,
    routed: RoutedKv,
}

impl Deployment {
    fn new(providers: usize) -> Self {
        let cluster = Cluster::new(providers);
        let service = DynamicService::deploy(&cluster, ServiceConfig::default(), providers, |i| {
            vec![mochi_bedrock::ProviderSpec::new(format!("kv{i}"), "yokan", 10 + i as u16)
                .with_config(json!({"backend": "lsm"}))
                .with_tag(format!("keyspace:{KEYSPACE}"))]
        })
        .expect("deploy");
        mochi_bench::await_or_panic("service view", || {
            service.view().is_some_and(|v| v.len() == providers)
        });
        let client = MargoRuntime::init_default(
            cluster.fabric(),
            Address::tcp(format!("a09-cli-{providers}"), 1),
        )
        .expect("client runtime");
        let routed = RoutedKv::for_keyspace(&service, &client, KEYSPACE, RoutedConfig::default())
            .expect("routed keyspace");
        assert_eq!(routed.members().len(), providers);
        Self { service, client, routed }
    }

    /// Preloads every key the mixed workload will read.
    fn preload(&self) {
        for t in 0..THREADS {
            let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..KEYS_PER_THREAD)
                .map(|i| (key_for(t, i), b"a09-preload-value-0123456789".to_vec()))
                .collect();
            let refs: Vec<(&[u8], &[u8])> =
                pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
            for slot in self.routed.put_multi(&refs) {
                slot.expect("preload put");
            }
        }
    }

    fn teardown(self) {
        self.service.shutdown();
        self.client.finalize();
    }
}

/// Runs `THREADS` workers in lockstep, each performing
/// `ROUNDS_PER_THREAD` mixed rounds (one `put_multi` + one `get_multi`
/// of `BATCH` keys), and returns aggregate key-ops/s.
fn mixed_throughput(routed: &RoutedKv) -> f64 {
    let barrier = Barrier::new(THREADS + 1);
    let start = std::thread::scope(|scope| {
        for t in 0..THREADS {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS_PER_THREAD {
                    let base = round * BATCH;
                    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..BATCH)
                        .map(|j| (key_for(t, base + j), b"a09-mixed-value-0123456789".to_vec()))
                        .collect();
                    let refs: Vec<(&[u8], &[u8])> =
                        pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
                    for slot in routed.put_multi(&refs) {
                        slot.expect("mixed put");
                    }
                    // Read a disjoint window so the gets are not served
                    // by a batch the same round just wrote.
                    let keys: Vec<Vec<u8>> =
                        (0..BATCH).map(|j| key_for(t, base + KEYS_PER_THREAD / 2 + j)).collect();
                    let key_refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
                    for slot in routed.get_multi(&key_refs) {
                        assert!(slot.expect("mixed get").is_some(), "preloaded key missing");
                    }
                }
            });
        }
        barrier.wait();
        std::time::Instant::now()
    });
    let elapsed = start.elapsed().as_secs_f64();
    (THREADS * ROUNDS_PER_THREAD * 2 * BATCH) as f64 / elapsed
}

fn main() {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let parallel = cpus >= 4;
    println!("host parallelism: {cpus} (ratio assertion {})", if parallel { "on" } else { "off" });

    let mut table =
        Table::new(&["providers", "mixed throughput", "put_multi latency", "get_multi latency"]);
    let mut scaling = Vec::new();
    let mut rate_at = [0.0f64; PROVIDER_COUNTS.len()];

    for (slot, &providers) in PROVIDER_COUNTS.iter().enumerate() {
        let deployment = Deployment::new(providers);
        deployment.preload();

        let rate = mixed_throughput(&deployment.routed);
        rate_at[slot] = rate;

        // Single-thread batch latency on the warmed keyspace.
        let mut round = 0usize;
        let put_hist = measure(20, 200, || {
            let base = round * BATCH;
            round += 1;
            let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..BATCH)
                .map(|j| (key_for(0, base + j), b"a09-latency-value".to_vec()))
                .collect();
            let refs: Vec<(&[u8], &[u8])> =
                pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
            for slot in deployment.routed.put_multi(&refs) {
                slot.expect("latency put");
            }
        });
        let mut round = 0usize;
        let get_hist = measure(20, 200, || {
            let base = round * BATCH;
            round += 1;
            let keys: Vec<Vec<u8>> = (0..BATCH).map(|j| key_for(0, base + j)).collect();
            let key_refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
            for slot in deployment.routed.get_multi(&key_refs) {
                slot.expect("latency get");
            }
        });

        let total_ops = (THREADS * ROUNDS_PER_THREAD * 2 * BATCH) as u64;
        table.row(&[
            providers.to_string(),
            fmt_rate(total_ops, total_ops as f64 / rate),
            fmt_latency(&put_hist),
            fmt_latency(&get_hist),
        ]);
        scaling.push(json!({
            "providers": providers,
            "mixed_key_ops_per_s": rate,
            "put_multi_p50_s": put_hist.quantile(0.5),
            "put_multi_p99_s": put_hist.quantile(0.99),
            "get_multi_p50_s": get_hist.quantile(0.5),
            "get_multi_p99_s": get_hist.quantile(0.99),
        }));

        deployment.teardown();
    }

    table.print("A9 — routed keyspace: mixed read/write scaling by provider count");

    let ratio = rate_at[PROVIDER_COUNTS.len() - 1] / rate_at[0];
    if parallel {
        assert!(
            ratio >= 2.0,
            "4-provider mixed throughput should be >= 2x the single-provider \
             baseline (measured {ratio:.2}x)"
        );
        println!("4-vs-1 provider mixed throughput: {ratio:.2}x (asserted >= 2x)");
    } else {
        println!(
            "4-vs-1 provider mixed throughput: {ratio:.2}x (host has < 4 CPUs; not asserted)"
        );
    }

    // Machine-readable record: once under target/ for the ci.sh routing
    // gate, once at the repo root where it is committed so the perf
    // trajectory survives `cargo clean`.
    let report = json!({
        "bench": "a09_routing",
        "measured": true,
        "host_parallelism": cpus,
        "asserted": parallel,
        "threads": THREADS,
        "batch": BATCH,
        "mixed_scaling": scaling,
        "ratio_4_vs_1_providers": ratio,
    });
    let rendered = serde_json::to_string_pretty(&report).expect("render report");
    for out in [
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_a09.json"),
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_a09.json"),
    ] {
        std::fs::create_dir_all(out.parent().expect("parent")).expect("create dir");
        std::fs::write(&out, &rendered).expect("write report");
        println!("wrote {}", out.display());
    }

    println!("claim: consistent-hash routing aggregates independent provider");
    println!("pipelines; batch latency stays flat while throughput scales.");
}
