//! E8 — checkpoint/restore through the parallel file system (paper §7,
//! Observation 9).
//!
//! Claims under test: checkpoint and restore costs scale with data size;
//! after a crash, the loss is bounded by the writes since the last
//! checkpoint ("the component at worst will lose the modifications done
//! since its last checkpoint").

use serde_json::json;

use mochi_bedrock::{BedrockServer, ModuleCatalog, ProcessConfig, ProviderSpec};
use mochi_bench::{boot, fmt_secs, Table};
use mochi_mercury::{Address, Fabric};
use mochi_util::time::Stopwatch;
use mochi_util::TempDir;
use mochi_yokan::DatabaseHandle;

fn catalog() -> ModuleCatalog {
    let mut catalog = ModuleCatalog::new();
    catalog.install("libyokan.so", mochi_yokan::bedrock::bedrock_module());
    catalog
}

fn main() {
    let fabric = Fabric::new();
    let dir = TempDir::new("e08").unwrap();
    let mut config = ProcessConfig::default();
    config.libraries.insert("yokan".into(), "libyokan.so".into());
    config
        .providers
        .push(ProviderSpec::new("db", "yokan", 1).with_config(json!({"backend": "map"})));
    let server = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n1", 1),
        &config,
        catalog(),
        dir.path().join("n1"),
    )
    .unwrap();
    let client = boot(&fabric, "client");
    let db = DatabaseHandle::new(&client, server.address(), 1);

    // --- Cost vs data size --------------------------------------------
    let mut table = Table::new(&["keys", "data", "checkpoint", "restore"]);
    let value = vec![0xCCu8; 256];
    let mut total = 0usize;
    for target in [1_000usize, 10_000, 50_000] {
        while total < target {
            let pairs: Vec<(Vec<u8>, Vec<u8>)> = (total..(total + 500).min(target))
                .map(|i| (format!("key{i:08}").into_bytes(), value.clone()))
                .collect();
            let refs: Vec<(&[u8], &[u8])> =
                pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
            db.put_multi(&refs).unwrap();
            total = (total + 500).min(target);
        }
        let ckpt_dir = dir.path().join(format!("pfs/ckpt-{target}"));
        let sw = Stopwatch::start();
        server.checkpoint_provider("db", ckpt_dir.to_str().unwrap()).unwrap();
        let checkpoint_s = sw.elapsed_secs();

        db.clear().unwrap();
        let sw = Stopwatch::start();
        server.restore_provider("db", ckpt_dir.to_str().unwrap()).unwrap();
        let restore_s = sw.elapsed_secs();
        assert_eq!(db.len().unwrap() as usize, target);

        table.row(&[
            target.to_string(),
            mochi_util::bytesize::format_bytes((target * (value.len() + 11)) as u64),
            fmt_secs(checkpoint_s),
            fmt_secs(restore_s),
        ]);
    }
    table.print("E8a — checkpoint/restore cost vs data size (Yokan → PFS dir)");

    // --- Loss bound ------------------------------------------------------
    // Write W0 keys, checkpoint, write W1 more, "crash" (clear), restore:
    // exactly the W1 post-checkpoint writes are lost, never more.
    db.clear().unwrap();
    let w0 = 2_000usize;
    let w1 = 700usize;
    for i in 0..w0 {
        db.put(format!("pre{i:06}").as_bytes(), b"v").unwrap();
    }
    let ckpt_dir = dir.path().join("pfs/loss-bound");
    server.checkpoint_provider("db", ckpt_dir.to_str().unwrap()).unwrap();
    for i in 0..w1 {
        db.put(format!("post{i:06}").as_bytes(), b"v").unwrap();
    }
    db.clear().unwrap(); // the crash: all live state gone
    server.restore_provider("db", ckpt_dir.to_str().unwrap()).unwrap();
    let survived = db.len().unwrap() as usize;
    let mut table = Table::new(&["writes before ckpt", "writes after ckpt", "survived", "lost"]);
    table.row(&[
        w0.to_string(),
        w1.to_string(),
        survived.to_string(),
        (w0 + w1 - survived).to_string(),
    ]);
    table.print("E8b — loss bound after crash + restore");
    assert_eq!(survived, w0, "exactly the post-checkpoint writes are lost");
    println!("claim reproduced: the loss equals the writes since the last");
    println!("checkpoint — no more, no less.");

    server.shutdown();
    client.finalize();
}
