//! A4 — contention ablation: striped backends vs. global locks.
//!
//! Claim under test: removing the three global locks from the RPC data
//! plane (hash-striped memory shards, snapshot-read LSM, striped
//! statistics) turns flat or negative thread scaling into near-linear
//! scaling, without regressing the single-thread path.
//!
//! Four legs:
//!   1. Memory backend put/get at 1/2/4/8 threads, 16 shards vs. the
//!      historical single-lock layout (`with_shards(1)`).
//!   2. LSM gets at 1/2/4/8 threads, snapshot reads vs. a bench-local
//!      global-mutex wrapper reproducing the old "every op takes the
//!      writer lock" design; plus a single-thread get p50 check.
//!   3. LSM puts at 1/2/4/8 threads, 8 stripes (per-stripe WALs +
//!      background flush) vs. a single stripe — the DESIGN.md §15 write
//!      path. Emits `BENCH_a04.json` with throughput and put p50/p99,
//!      under `target/` for the CI gate (`scripts/ci.sh`) and at the
//!      repo root where it is committed (perf-trajectory persistence).
//!   4. Echo RPCs through two monitored Margo runtimes, confirming the
//!      striped statistics monitor still emits Listing-1-shaped dumps.
//!
//! The ratio assertions only fire when the host exposes >= 4 CPUs;
//! on smaller machines the tables still print but contention cannot
//! manifest, so the numbers are reported unasserted (and recorded as
//! `"asserted": false` in the JSON).

use std::path::Path;
use std::sync::{Arc, Barrier, Mutex};

use mochi_bench::{fmt_rate, measure, Table};
use mochi_margo::{MargoConfig, MargoRuntime};
use mochi_mercury::{Address, Fabric};
use mochi_util::TempDir;
use mochi_yokan::backend::lsm::{BackgroundExecutor, LsmConfig, LsmDatabase};
use mochi_yokan::backend::memory::MemoryDatabase;
use mochi_yokan::backend::Database;
use serde_json::json;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const OPS_PER_THREAD: usize = 20_000;
const LSM_OPS_PER_THREAD: usize = 5_000;

/// The pre-striping LSM design: one global mutex in front of every
/// operation. Kept here (not in the library) purely as a baseline.
struct GlobalLocked {
    inner: Mutex<LsmDatabase>,
}

impl GlobalLocked {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.inner.lock().unwrap().get(key).unwrap()
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        self.inner.lock().unwrap().put(key, value).unwrap();
    }
}

/// Runs `threads` workers in lockstep, each performing `ops` calls of
/// `op(thread_index, op_index)`, and returns aggregate ops/second.
fn run_threads<F>(threads: usize, ops: usize, op: F) -> f64
where
    F: Fn(usize, usize) + Send + Sync,
{
    let barrier = Barrier::new(threads + 1);
    // thread::scope joins every worker before returning, so the elapsed
    // time around the scope call (started once all workers are at the
    // barrier) covers exactly the measured operations.
    let start = std::thread::scope(|scope| {
        for t in 0..threads {
            let barrier = &barrier;
            let op = &op;
            scope.spawn(move || {
                barrier.wait();
                for i in 0..ops {
                    op(t, i);
                }
            });
        }
        barrier.wait();
        std::time::Instant::now()
    });
    let elapsed = start.elapsed().as_secs_f64();
    (threads * ops) as f64 / elapsed
}

fn key_for(thread: usize, i: usize) -> Vec<u8> {
    format!("k-{thread:02}-{:05}", i % 512).into_bytes()
}

fn bench_memory(parallel: bool) {
    let mut table = Table::new(&["threads", "put 1-shard", "put 16-shard", "get 1-shard", "get 16-shard"]);
    let mut put_ratio_at_4 = 0.0;
    let mut get_ratio_at_4 = 0.0;

    for &threads in &THREAD_COUNTS {
        let global = MemoryDatabase::with_shards(1);
        let striped = MemoryDatabase::with_shards(16);
        for db in [&global, &striped] {
            for t in 0..threads {
                for i in 0..512 {
                    db.put(&key_for(t, i), b"prefill-value").unwrap();
                }
            }
        }

        let put_global = run_threads(threads, OPS_PER_THREAD, |t, i| {
            global.put(&key_for(t, i), b"contention-bench-value-0123456789").unwrap();
        });
        let put_striped = run_threads(threads, OPS_PER_THREAD, |t, i| {
            striped.put(&key_for(t, i), b"contention-bench-value-0123456789").unwrap();
        });
        let get_global = run_threads(threads, OPS_PER_THREAD, |t, i| {
            let _ = global.get(&key_for(t, i)).unwrap();
        });
        let get_striped = run_threads(threads, OPS_PER_THREAD, |t, i| {
            let _ = striped.get(&key_for(t, i)).unwrap();
        });

        if threads == 4 {
            put_ratio_at_4 = put_striped / put_global;
            get_ratio_at_4 = get_striped / get_global;
        }

        table.row(&[
            threads.to_string(),
            fmt_rate((OPS_PER_THREAD * threads) as u64, (OPS_PER_THREAD * threads) as f64 / put_global),
            fmt_rate((OPS_PER_THREAD * threads) as u64, (OPS_PER_THREAD * threads) as f64 / put_striped),
            fmt_rate((OPS_PER_THREAD * threads) as u64, (OPS_PER_THREAD * threads) as f64 / get_global),
            fmt_rate((OPS_PER_THREAD * threads) as u64, (OPS_PER_THREAD * threads) as f64 / get_striped),
        ]);
    }

    table.print("A4 — memory backend throughput: 1 shard (global lock) vs 16 shards");

    if parallel {
        assert!(
            put_ratio_at_4 >= 2.0,
            "striped puts should be >= 2x the single-shard baseline at 4 threads \
             (measured {put_ratio_at_4:.2}x)"
        );
        assert!(
            get_ratio_at_4 >= 2.0,
            "striped gets should be >= 2x the single-shard baseline at 4 threads \
             (measured {get_ratio_at_4:.2}x)"
        );
        println!(
            "4-thread striped/global ratio: put {put_ratio_at_4:.2}x, get {get_ratio_at_4:.2}x (asserted >= 2x)"
        );
    } else {
        println!(
            "4-thread striped/global ratio: put {put_ratio_at_4:.2}x, get {get_ratio_at_4:.2}x \
             (host has < 4 CPUs; not asserted)"
        );
    }
}

fn bench_lsm(parallel: bool) {
    let dir_snapshot = TempDir::new("a04-lsm-snapshot").unwrap();
    let dir_global = TempDir::new("a04-lsm-global").unwrap();
    let config = LsmConfig { memtable_bytes: 64 * 1024, max_tables: 4, ..LsmConfig::default() };
    let snapshot_db = LsmDatabase::open(dir_snapshot.path(), config).unwrap();
    let global_db = GlobalLocked {
        // One stripe under the mutex: the pre-striping design had one
        // WAL and one memtable, so the baseline reproduces that too.
        inner: Mutex::new(
            LsmDatabase::open(dir_global.path(), LsmConfig { stripes: 1, ..config }).unwrap(),
        ),
    };

    // Prefill through several flush cycles so gets touch SSTables, not
    // just the active memtable.
    for t in 0..8 {
        for i in 0..512 {
            let key = key_for(t, i);
            snapshot_db.put(&key, b"lsm-prefill-value-0123456789").unwrap();
            global_db.put(&key, b"lsm-prefill-value-0123456789");
        }
    }
    snapshot_db.flush().unwrap();
    global_db.inner.lock().unwrap().flush().unwrap();

    // Single-thread p50: snapshot reads must not regress vs the global
    // mutex (both are uncontended here; snapshot adds one Arc clone).
    let p50_snapshot = measure(500, 5_000, || {
        let _ = snapshot_db.get(&key_for(0, 7)).unwrap();
    })
    .quantile(0.5);
    let p50_global = measure(500, 5_000, || {
        let _ = global_db.get(&key_for(0, 7));
    })
    .quantile(0.5);

    let mut table = Table::new(&["threads", "get global-mutex", "get snapshot-read"]);
    let mut ratio_at_4 = 0.0;
    for &threads in &THREAD_COUNTS {
        let rate_global = run_threads(threads, LSM_OPS_PER_THREAD, |t, i| {
            let _ = global_db.get(&key_for(t % 8, i));
        });
        let rate_snapshot = run_threads(threads, LSM_OPS_PER_THREAD, |t, i| {
            let _ = snapshot_db.get(&key_for(t % 8, i)).unwrap();
        });
        if threads == 4 {
            ratio_at_4 = rate_snapshot / rate_global;
        }
        table.row(&[
            threads.to_string(),
            fmt_rate((LSM_OPS_PER_THREAD * threads) as u64, (LSM_OPS_PER_THREAD * threads) as f64 / rate_global),
            fmt_rate((LSM_OPS_PER_THREAD * threads) as u64, (LSM_OPS_PER_THREAD * threads) as f64 / rate_snapshot),
        ]);
    }
    table.print("A4 — LSM get throughput: global mutex vs snapshot reads");

    // Allow 50% headroom on the single-thread comparison: both paths
    // are sub-microsecond and timer noise dominates below that.
    assert!(
        p50_snapshot <= p50_global * 1.5,
        "snapshot-read get p50 ({p50_snapshot:.3e}s) must not regress past 1.5x the \
         global-mutex baseline ({p50_global:.3e}s) single-threaded"
    );
    println!(
        "single-thread get p50: snapshot {p50_snapshot:.3e}s vs global-mutex {p50_global:.3e}s \
         (asserted <= 1.5x)"
    );
    if parallel {
        println!("4-thread snapshot/global ratio: {ratio_at_4:.2}x");
    } else {
        println!("4-thread snapshot/global ratio: {ratio_at_4:.2}x (host has < 4 CPUs)");
    }
}

/// Per-flush thread executor: moves flush/compaction off the writer the
/// same way the Bedrock module's Argobots pool does, without needing a
/// runtime in a backend-only bench.
fn thread_executor() -> BackgroundExecutor {
    Arc::new(|task| {
        std::thread::spawn(task);
    })
}

fn write_db(dir: &Path, stripes: usize) -> LsmDatabase {
    let config = LsmConfig {
        memtable_bytes: 64 * 1024,
        max_tables: 4,
        stripes,
        ..LsmConfig::default()
    };
    let db = LsmDatabase::open(dir, config).unwrap();
    db.set_background_executor(thread_executor());
    db
}

/// Leg 3: the §15 parallel write path. Returns the JSON fragment for
/// `target/BENCH_a04.json`.
fn bench_lsm_writes(parallel: bool) -> serde_json::Value {
    const VALUE: &[u8] = b"write-scaling-bench-value-0123456789abcdef";

    // Single-thread put latency first, on fresh databases, so the
    // distribution is not polluted by the scaling runs' compaction debt.
    let p50_p99 = |stripes: usize| {
        let dir = TempDir::new("a04-lsm-write-lat").unwrap();
        let db = write_db(dir.path(), stripes);
        let mut i = 0u64;
        let hist = measure(500, 5_000, || {
            db.put(format!("lat-{i:08}").as_bytes(), VALUE).unwrap();
            i += 1;
        });
        (hist.quantile(0.5), hist.quantile(0.99))
    };
    let (p50_single, p99_single) = p50_p99(1);
    let (p50_striped, p99_striped) = p50_p99(8);

    let mut table = Table::new(&["threads", "put 1-stripe", "put 8-stripe"]);
    let mut scaling = Vec::new();
    let mut ratio_at_4 = 0.0;
    for &threads in &THREAD_COUNTS {
        // Fresh databases per thread count: write benches accumulate
        // tables, and carried-over compaction debt would bias later rows.
        let dir_single = TempDir::new("a04-lsm-write-single").unwrap();
        let dir_striped = TempDir::new("a04-lsm-write-striped").unwrap();
        let single = write_db(dir_single.path(), 1);
        let striped = write_db(dir_striped.path(), 8);

        let rate_single = run_threads(threads, LSM_OPS_PER_THREAD, |t, i| {
            single.put(format!("w{t}-{i:08}").as_bytes(), VALUE).unwrap();
        });
        let rate_striped = run_threads(threads, LSM_OPS_PER_THREAD, |t, i| {
            striped.put(format!("w{t}-{i:08}").as_bytes(), VALUE).unwrap();
        });
        if threads == 4 {
            ratio_at_4 = rate_striped / rate_single;
        }
        let ops = (LSM_OPS_PER_THREAD * threads) as u64;
        table.row(&[
            threads.to_string(),
            fmt_rate(ops, ops as f64 / rate_single),
            fmt_rate(ops, ops as f64 / rate_striped),
        ]);
        scaling.push(json!({
            "threads": threads,
            "single_stripe_ops_per_s": rate_single,
            "striped_ops_per_s": rate_striped,
        }));
        // Flush before dropping so background work quiesces inside the
        // TempDir's lifetime.
        single.flush().unwrap();
        striped.flush().unwrap();
    }
    table.print("A4 — LSM put throughput: 1 stripe vs 8 stripes (background flush)");

    assert!(
        p50_striped <= p50_single * 1.5,
        "striped put p50 ({p50_striped:.3e}s) must not regress past 1.5x the \
         single-stripe baseline ({p50_single:.3e}s) single-threaded"
    );
    println!(
        "single-thread put p50: striped {p50_striped:.3e}s vs single-stripe {p50_single:.3e}s \
         (asserted <= 1.5x); p99 {p99_striped:.3e}s vs {p99_single:.3e}s"
    );
    if parallel {
        assert!(
            ratio_at_4 >= 2.0,
            "striped puts should be >= 2x the single-stripe baseline at 4 threads \
             (measured {ratio_at_4:.2}x)"
        );
        println!("4-thread striped/single-stripe put ratio: {ratio_at_4:.2}x (asserted >= 2x)");
    } else {
        println!(
            "4-thread striped/single-stripe put ratio: {ratio_at_4:.2}x \
             (host has < 4 CPUs; not asserted)"
        );
    }

    json!({
        "write_scaling": scaling,
        "ratio_at_4_threads": ratio_at_4,
        "put_p50_s": { "single_stripe": p50_single, "striped": p50_striped },
        "put_p99_s": { "single_stripe": p99_single, "striped": p99_striped },
    })
}

fn bench_echo() {
    let fabric = Fabric::new();
    let mut config = MargoConfig::default();
    config.monitoring.enabled = true;
    let server = MargoRuntime::init(&fabric, Address::tcp("a04-srv", 1), &config).unwrap();
    let client = MargoRuntime::init(&fabric, Address::tcp("a04-cli", 1), &config).unwrap();
    server.register_typed("echo", 0, None, |v: u64, _| Ok(v)).unwrap();
    let server_addr = server.address();

    let echo = measure(100, 2_000, || {
        let _: u64 = client.forward(&server_addr, "echo", 0, &7u64).unwrap();
    });
    println!(
        "echo through striped statistics monitor: {} (p50 {:.3e}s)",
        fmt_rate(2_000, echo.mean() * 2_000.0),
        echo.quantile(0.5)
    );

    // Listing-1 shape must survive the striped-accumulator merge.
    let stats = server.monitoring_json().unwrap();
    let rpcs = stats["rpcs"].as_object().unwrap();
    assert!(!rpcs.is_empty(), "monitor recorded no RPCs");
    let (key, entry) = rpcs.iter().next().unwrap();
    assert_eq!(key.split(':').count(), 4, "Listing-1 key format");
    let target = entry["target"].as_object().expect("echo target stats present");
    let (_, peer) = target.iter().next().expect("one peer recorded");
    let duration = peer["ult"]["duration"].as_object().expect("duration stream");
    for field in ["num", "avg", "min", "max", "var", "sum"] {
        assert!(duration.contains_key(field), "duration stream carries {field}");
    }
    assert_eq!(duration["num"].as_u64().unwrap(), 2_100, "all echo handler runs counted");

    server.finalize();
    client.finalize();
}

fn main() {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let parallel = cpus >= 4;
    println!("host parallelism: {cpus} (ratio assertions {})", if parallel { "on" } else { "off" });

    bench_memory(parallel);
    bench_lsm(parallel);
    let writes = bench_lsm_writes(parallel);
    bench_echo();

    // Machine-readable record: once under target/ for the ci.sh bench
    // gate, once at the repo root where it is committed so the perf
    // trajectory survives `cargo clean`.
    let report = json!({
        "bench": "a04_contention",
        "measured": true,
        "host_parallelism": cpus,
        "asserted": parallel,
        "lsm_writes": writes,
    });
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    for out in [
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_a04.json"),
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_a04.json"),
    ] {
        std::fs::create_dir_all(out.parent().unwrap()).unwrap();
        std::fs::write(&out, &rendered).unwrap();
        println!("wrote {}", out.display());
    }

    println!("claim: striping removes data-plane lock contention; single-thread");
    println!("latency and the Listing-1 monitoring contract are unchanged.");
}
