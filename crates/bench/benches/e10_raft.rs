//! E10 — Mochi-RAFT consensus (paper §7, Observation 11).
//!
//! Claims under test: replicated state machines stay consistent; commit
//! throughput degrades as the cluster grows (more acknowledgements per
//! entry); leader failover completes within a small multiple of the
//! election timeout.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use mochi_bench::{boot, fmt_latency, fmt_rate, fmt_secs, measure, Table};
use mochi_mercury::{Address, Fabric};
use mochi_raft::types::LogMachine;
use mochi_raft::{RaftClient, RaftConfig, RaftNode, StateMachine};
use mochi_util::time::wait_until;
use mochi_util::TempDir;

struct SharedMachine(Arc<Mutex<LogMachine>>);
impl StateMachine for SharedMachine {
    fn apply(&mut self, c: &[u8]) -> Vec<u8> {
        self.0.lock().apply(c)
    }
    fn snapshot(&self) -> Vec<u8> {
        self.0.lock().snapshot()
    }
    fn restore(&mut self, s: &[u8]) {
        self.0.lock().restore(s)
    }
}

fn main() {
    let mut table =
        Table::new(&["cluster size", "submit latency", "throughput", "failover time"]);

    for n in [1usize, 3, 5] {
        let fabric = Fabric::new();
        let dir = TempDir::new(&format!("e10-{n}")).unwrap();
        let addresses: Vec<Address> =
            (0..n).map(|i| Address::tcp(format!("r{i}"), 1)).collect();
        let config = RaftConfig::fast();
        let nodes: Vec<_> = addresses
            .iter()
            .enumerate()
            .map(|(i, addr)| {
                let margo = boot(&fabric, addr.host());
                let machine = Arc::new(Mutex::new(LogMachine::default()));
                let node = RaftNode::start(
                    &margo,
                    7,
                    &addresses,
                    Box::new(SharedMachine(Arc::clone(&machine))),
                    dir.path().join(format!("n{i}")),
                    config,
                )
                .unwrap();
                (margo, node, machine)
            })
            .collect();
        let client_margo = boot(&fabric, "client");
        let client = RaftClient::new(&client_margo, 7, addresses.clone())
            .with_rpc_timeout(Duration::from_millis(300));
        // Wait for a leader.
        assert!(wait_until(Duration::from_secs(30), Duration::from_millis(5), || {
            nodes.iter().any(|(_, node, _)| node.is_leader())
        }));

        const OPS: usize = 400;
        let latency = measure(20, OPS, || {
            client.submit(b"command").unwrap();
        });

        // Failover: kill the leader, time until a new commit succeeds.
        let failover = if n >= 3 {
            let leader = client.find_leader().unwrap();
            let idx = addresses.iter().position(|a| *a == leader).unwrap();
            let start = Instant::now();
            nodes[idx].1.shutdown();
            nodes[idx].0.finalize();
            client.submit(b"after-failover").unwrap();
            fmt_secs(start.elapsed().as_secs_f64())
        } else {
            "n/a".to_string()
        };

        table.row(&[
            n.to_string(),
            fmt_latency(&latency),
            fmt_rate(OPS as u64, latency.mean() * OPS as f64),
            failover,
        ]);

        // Consistency check across survivors.
        let applied: Vec<usize> = nodes
            .iter()
            .filter(|(m, _, _)| !m.is_finalized())
            .map(|(_, _, machine)| machine.lock().applied.len())
            .collect();
        if let (Some(max), Some(min)) = (applied.iter().max(), applied.iter().min()) {
            assert!(
                max - min <= 2,
                "replicas out of sync beyond in-flight window: {applied:?}"
            );
        }
        for (margo, node, _) in &nodes {
            if !margo.is_finalized() {
                node.shutdown();
                margo.finalize();
            }
        }
        client_margo.finalize();
    }
    table.print("E10 — Raft: cost of consensus vs cluster size, and failover");
    println!("claims reproduced: throughput falls as the cluster grows (each");
    println!("commit needs a majority round); failover = client attempt timeout");
    println!("(300 ms) + election (50-100 ms timeouts) + retry; replicas apply");
    println!("identical command sequences.");
}
