//! E6 — Pufferscale rebalancing trade-offs (paper §6, Observation 6).
//!
//! Claim under test: the heuristics trade off load balance, data balance,
//! and rebalancing time through their weights — emphasizing one objective
//! degrades the others (the trade-off frontier of the Pufferscale paper).

use mochi_bench::Table;
use mochi_pufferscale::{plan_rebalance, Placement, Resource, Weights};
use mochi_util::SeededRng;

/// A skewed initial placement: 4 nodes, 60 resources with Zipf-ish loads
/// and mixed sizes, deliberately clumped; targets: 6 nodes (scale-out).
fn scenario(rng: &mut SeededRng) -> (Placement, Vec<String>) {
    let source_nodes: Vec<String> = (0..4).map(|i| format!("n{i}")).collect();
    let mut placement = Placement::empty(&source_nodes);
    for i in 0..60 {
        // Clump: most resources start on n0/n1.
        let node = if i % 10 < 6 { 0 } else { 1 + i % 3 };
        let load = 1.0 + 99.0 / (1.0 + rng.zipf(20, 1.1) as f64);
        let size = 1_000_000 + rng.range(0, 50_000_000) as u64;
        placement.nodes.get_mut(&format!("n{node}")).unwrap().push(Resource {
            id: format!("r{i}"),
            load,
            size,
        });
    }
    let targets: Vec<String> = (0..6).map(|i| format!("n{i}")).collect();
    (placement, targets)
}

fn main() {
    let mut rng = SeededRng::new(0x06);
    let (placement, targets) = scenario(&mut rng);
    println!(
        "initial: {} resources, {} bytes, load imbalance {:.2}, data imbalance {:.2}",
        placement.nodes.values().map(Vec::len).sum::<usize>(),
        placement.total_size(),
        placement.load_imbalance(),
        placement.data_imbalance()
    );

    let sweeps: Vec<(&str, Weights)> = vec![
        ("load-only", Weights { load: 1.0, data: 0.0, time: 0.0 }),
        ("data-only", Weights { load: 0.0, data: 1.0, time: 0.0 }),
        ("time-only", Weights { load: 0.01, data: 0.01, time: 10.0 }),
        ("balanced", Weights { load: 1.0, data: 1.0, time: 1.0 }),
        ("balance>>time", Weights { load: 1.0, data: 1.0, time: 0.01 }),
        ("time>>balance", Weights { load: 0.1, data: 0.1, time: 5.0 }),
    ];

    let mut table = Table::new(&[
        "weights (L/D/T)",
        "load imb.",
        "data imb.",
        "moves",
        "bytes moved",
        "max into node",
    ]);

    // Baseline: random placement of every resource (what a naive
    // rescaling would do) — moves nearly everything and balances only by
    // luck; the Pufferscale paper's point of comparison.
    {
        let mut rng2 = SeededRng::new(0x6b);
        let mut random = Placement::empty(&targets);
        let mut moved_bytes = 0u64;
        let mut moves = 0usize;
        let mut incoming: std::collections::BTreeMap<&str, u64> =
            targets.iter().map(|t| (t.as_str(), 0)).collect();
        for (node, resources) in &placement.nodes {
            for resource in resources {
                let dest = &targets[rng2.range(0, targets.len())];
                if dest != node {
                    moves += 1;
                    moved_bytes += resource.size;
                    *incoming.get_mut(dest.as_str()).unwrap() += resource.size;
                }
                random.nodes.get_mut(dest).unwrap().push(resource.clone());
            }
        }
        table.row(&[
            "BASELINE random".into(),
            format!("{:.3}", random.load_imbalance()),
            format!("{:.3}", random.data_imbalance()),
            moves.to_string(),
            mochi_util::bytesize::format_bytes(moved_bytes),
            mochi_util::bytesize::format_bytes(incoming.values().copied().max().unwrap_or(0)),
        ]);
    }

    let mut rows: Vec<(f64, u64)> = Vec::new();
    for (label, weights) in &sweeps {
        let plan = plan_rebalance(&placement, &targets, weights);
        table.row(&[
            format!("{label} ({}/{}/{})", weights.load, weights.data, weights.time),
            format!("{:.3}", plan.metrics.load_imbalance),
            format!("{:.3}", plan.metrics.data_imbalance),
            plan.metrics.moves.to_string(),
            mochi_util::bytesize::format_bytes(plan.metrics.total_bytes_moved),
            mochi_util::bytesize::format_bytes(plan.metrics.max_bytes_into_one_node),
        ]);
        rows.push((plan.metrics.load_imbalance, plan.metrics.total_bytes_moved));
    }
    table.print("E6 — rebalancing objective trade-off (4 → 6 nodes)");

    // Shape assertions: balance-focused weights move more data and end
    // more balanced than time-focused weights.
    let balance_focused = &rows[4]; // balance>>time
    let time_focused = &rows[5]; // time>>balance
    assert!(
        balance_focused.1 >= time_focused.1,
        "balance-focused plans should move at least as much data"
    );
    assert!(
        balance_focused.0 <= time_focused.0 + 1e-9,
        "balance-focused plans should end at least as balanced"
    );
    println!("claim reproduced: weighting rebalancing time suppresses data");
    println!("movement at the cost of residual imbalance, and vice versa —");
    println!("the three objectives genuinely trade off.");
}
