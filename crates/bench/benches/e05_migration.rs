//! E5 — REMI migration strategies (paper §6, Observation 4).
//!
//! Claim under test: "[mmap+RDMA] is more efficient for large files.
//! [Chunked RPC] is more efficient when sending multiple small files,
//! since they can be packed together into larger chunks and the transfer
//! of chunks can be pipelined." We sweep filesets from one large file to
//! thousands of tiny ones (constant total bytes) under an HPC-like
//! network model and locate the crossover.

use mochi_bench::{boot, fmt_bandwidth, fmt_secs, Table};
use mochi_mercury::{Fabric, LinkParams, NetworkModel};
use mochi_remi::{FileSet, MigrationOptions, RemiClient, RemiProvider, Strategy};
use mochi_util::{SeededRng, TempDir};

const TOTAL_BYTES: usize = 32 << 20; // 32 MiB per fileset

fn make_fileset(dir: &std::path::Path, files: usize, rng: &mut SeededRng) -> FileSet {
    let per_file = TOTAL_BYTES / files;
    let mut buf = vec![0u8; per_file];
    for i in 0..files {
        let path = dir.join(format!("f{i:05}.dat"));
        rng.fill_bytes(&mut buf);
        std::fs::write(path, &buf).unwrap();
    }
    FileSet::scan(dir).unwrap()
}

fn main() {
    // Inter-node parameters with a realistic per-transfer setup cost:
    // RDMA pays it per *file* (memory registration + handshake), the
    // chunked strategy per *chunk* — which is exactly the asymmetry the
    // paper's Observation 4 describes.
    let model = NetworkModel {
        inter_node: LinkParams { latency_us: 50.0, bandwidth_gib_s: 12.5, jitter_frac: 0.0 },
        ..NetworkModel::hpc()
    };
    let fabric = Fabric::with_model(model);
    let source = boot(&fabric, "src");
    let dest = boot(&fabric, "dst");
    let dest_root = TempDir::new("e05-dst").unwrap();
    let _provider = RemiProvider::register(&dest, 1, dest_root.path(), None).unwrap();
    let client = RemiClient::new(&source);
    let mut rng = SeededRng::new(0x05);

    let mut table = Table::new(&[
        "files x size",
        "RDMA",
        "RDMA bw",
        "chunked",
        "chunked bw",
        "winner",
    ]);
    let cases = [1usize, 8, 64, 512, 4096, 8192];
    let mut crossover: Option<usize> = None;
    for (case, files) in cases.iter().enumerate() {
        let src_dir = TempDir::new(&format!("e05-src-{files}")).unwrap();
        let fileset = make_fileset(src_dir.path(), *files, &mut rng);
        let mut results = Vec::new();
        for (label, strategy) in [
            ("rdma", Strategy::Rdma),
            ("chunked", Strategy::ChunkedRpc { chunk_size: 1 << 20, window: 8 }),
        ] {
            let options = MigrationOptions {
                dest_subdir: Some(format!("{label}-{files}")),
                remove_source: false,
                ..Default::default()
            };
            let report =
                client.migrate(&dest.address(), 1, &fileset, strategy, &options).unwrap();
            assert_eq!(report.bytes as usize, TOTAL_BYTES);
            results.push(report.duration_s);
        }
        let per_file = TOTAL_BYTES / files;
        // Within 5% counts as a tie (disk/noise floor dominates there).
        let winner = if results[0] < results[1] * 0.95 {
            "RDMA"
        } else if results[1] < results[0] * 0.95 {
            "chunked"
        } else {
            "~tie"
        };
        if winner == "chunked" && crossover.is_none() {
            crossover = Some(*files);
        }
        table.row(&[
            format!("{files} x {}", mochi_util::bytesize::format_bytes(per_file as u64)),
            fmt_secs(results[0]),
            fmt_bandwidth(TOTAL_BYTES as u64, results[0]),
            fmt_secs(results[1]),
            fmt_bandwidth(TOTAL_BYTES as u64, results[1]),
            winner.to_string(),
        ]);
        let _ = case;
    }
    table.print(&format!(
        "E5 — REMI migration: RDMA vs pipelined chunked RPC ({} total)",
        mochi_util::bytesize::format_bytes(TOTAL_BYTES as u64)
    ));
    match crossover {
        Some(files) => println!(
            "claim reproduced: RDMA wins for large files; the chunked strategy\n\
             takes over at ≈{files} files ({} each).",
            mochi_util::bytesize::format_bytes((TOTAL_BYTES / files) as u64)
        ),
        None => println!("no crossover in this sweep — see EXPERIMENTS.md discussion."),
    }

    source.finalize();
    dest.finalize();
}
