//! E2 — online reconfiguration of the Margo runtime (paper §5, Obs. 2,
//! Listing 2).
//!
//! Claims under test: pools and execution streams can be added/removed in
//! a *running* process; the operations are fast; traffic served
//! concurrently with a reconfiguration storm suffers no failures and
//! bounded slowdown.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mochi_bench::{boot, fmt_latency, fmt_rate, fmt_secs, measure, Table};
use mochi_mercury::Fabric;

fn main() {
    let fabric = Fabric::new();
    let server = boot(&fabric, "server");
    let client = boot(&fabric, "client");
    server.register_typed("echo", 0, None, |v: u64, _| Ok(v)).unwrap();
    let server_addr = server.address();

    // --- Reconfiguration primitive latencies ---------------------------
    let mut n = 0u64;
    let add_pool = measure(10, 200, || {
        n += 1;
        server.add_pool_from_json(&format!(r#"{{"name": "p{n}"}}"#)).unwrap();
    });
    let mut m = 0u64;
    let add_xstream = measure(10, 200, || {
        m += 1;
        server
            .add_xstream_from_json(&format!(
                r#"{{"name": "es{m}", "scheduler": {{"pools": ["p{m}"]}}}}"#
            ))
            .unwrap();
    });
    let mut r = 0u64;
    let remove_xstream = measure(10, 200, || {
        r += 1;
        server.remove_xstream(&format!("es{r}")).unwrap();
    });
    let mut q = 0u64;
    let remove_pool = measure(10, 200, || {
        q += 1;
        server.remove_pool(&format!("p{q}")).unwrap();
    });
    // Drain warmup leftovers.
    for i in 201..=210 {
        let _ = server.remove_xstream(&format!("es{i}"));
        let _ = server.remove_pool(&format!("p{i}"));
    }

    let mut table = Table::new(&["operation", "latency", "throughput"]);
    for (name, h) in [
        ("margo_add_pool_from_json", &add_pool),
        ("add_xstream (spawns ES)", &add_xstream),
        ("remove_xstream (joins ES)", &remove_xstream),
        ("remove_pool", &remove_pool),
    ] {
        table.row(&[name.to_string(), fmt_latency(h), fmt_rate(200, h.mean() * 200.0)]);
    }
    table.print("E2a — online reconfiguration primitives");

    // --- Service continuity during a reconfiguration storm -------------
    let baseline = measure(200, 3000, || {
        let _: u64 = client.forward(&server_addr, "echo", 0, &1u64).unwrap();
    });

    let stop = Arc::new(AtomicBool::new(false));
    let reconfig_thread = {
        let server = server.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::SeqCst) {
                i += 1;
                server.add_pool_from_json(&format!(r#"{{"name": "storm{i}"}}"#)).unwrap();
                server
                    .add_xstream_from_json(&format!(
                        r#"{{"name": "storm-es{i}", "scheduler": {{"pools": ["storm{i}"]}}}}"#
                    ))
                    .unwrap();
                server.remove_xstream(&format!("storm-es{i}")).unwrap();
                server.remove_pool(&format!("storm{i}")).unwrap();
            }
            i
        })
    };
    let during = measure(200, 3000, || {
        let _: u64 = client.forward(&server_addr, "echo", 0, &1u64).unwrap();
    });
    stop.store(true, Ordering::SeqCst);
    let cycles = reconfig_thread.join().unwrap();

    let mut table = Table::new(&["condition", "echo latency", "mean"]);
    table.row(&["baseline".into(), fmt_latency(&baseline), fmt_secs(baseline.mean())]);
    table.row(&[
        format!("during reconfig storm ({cycles} cycles)"),
        fmt_latency(&during),
        fmt_secs(during.mean()),
    ]);
    table.print("E2b — RPC service continuity during reconfiguration");
    println!("claim: all 3000 RPCs issued during the storm succeeded (each call");
    println!("unwraps), with bounded slowdown — configuration changes are");
    println!("enacted without taking the service offline.");

    server.finalize();
    client.finalize();
}
