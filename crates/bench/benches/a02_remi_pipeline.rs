//! Ablation A2 — REMI chunk pipelining (paper §6, Observation 4).
//!
//! The paper credits the chunked strategy's small-file efficiency to two
//! mechanisms: packing ("they can be packed together into larger chunks")
//! and pipelining ("the transfer of chunks can be pipelined"). This
//! ablation isolates them: a fixed many-small-files workload swept over
//! chunk size (packing) and window depth (pipelining).

use mochi_bench::{boot, fmt_bandwidth, fmt_secs, Table};
use mochi_mercury::{Fabric, LinkParams, NetworkModel};
use mochi_remi::{FileSet, MigrationOptions, RemiClient, RemiProvider, Strategy};
use mochi_util::{SeededRng, TempDir};

const FILES: usize = 2048;
const FILE_SIZE: usize = 8 << 10; // 8 KiB x 2048 = 16 MiB

fn main() {
    let model = NetworkModel {
        inter_node: LinkParams { latency_us: 50.0, bandwidth_gib_s: 12.5, jitter_frac: 0.0 },
        ..NetworkModel::hpc()
    };
    let fabric = Fabric::with_model(model);
    let source = boot(&fabric, "src");
    let dest = boot(&fabric, "dst");
    let dest_root = TempDir::new("a02-dst").unwrap();
    let _provider = RemiProvider::register(&dest, 1, dest_root.path(), None).unwrap();
    let client = RemiClient::new(&source);

    let src_dir = TempDir::new("a02-src").unwrap();
    let mut rng = SeededRng::new(0xa02);
    let mut buf = vec![0u8; FILE_SIZE];
    for i in 0..FILES {
        rng.fill_bytes(&mut buf);
        std::fs::write(src_dir.path().join(format!("f{i:05}.dat")), &buf).unwrap();
    }
    let fileset = FileSet::scan(src_dir.path()).unwrap();
    let total = fileset.total_bytes();

    let mut table = Table::new(&["chunk size", "window", "duration", "bandwidth", "chunks"]);
    let mut case = 0usize;
    for chunk_size in [64usize << 10, 1 << 20, 4 << 20] {
        for window in [1usize, 2, 8, 32] {
            case += 1;
            let options = MigrationOptions {
                dest_subdir: Some(format!("case-{case}")),
                remove_source: false,
                ..Default::default()
            };
            let report = client
                .migrate(
                    &dest.address(),
                    1,
                    &fileset,
                    Strategy::ChunkedRpc { chunk_size, window },
                    &options,
                )
                .unwrap();
            assert_eq!(report.bytes, total);
            table.row(&[
                mochi_util::bytesize::format_bytes(chunk_size as u64),
                window.to_string(),
                fmt_secs(report.duration_s),
                fmt_bandwidth(total, report.duration_s),
                report.chunks.to_string(),
            ]);
        }
    }
    table.print(&format!(
        "A2 — chunked migration ablation ({FILES} files x {} = {})",
        mochi_util::bytesize::format_bytes(FILE_SIZE as u64),
        mochi_util::bytesize::format_bytes(total)
    ));
    println!("shape: larger chunks amortize the per-RPC cost (packing) — the");
    println!("dominant effect. Window depth (pipelining) overlaps transfer with");
    println!("file reads; on this single-core host the overlap it can buy is");
    println!("limited, so its effect is visible mainly at small chunk sizes.");

    source.finalize();
    dest.finalize();
}
