//! Ablation A1 — LSM tuning behind experiment E11.
//!
//! DESIGN.md §7 claims the ingest/analysis trade-off of E11 rests on two
//! component-level facts:
//!   (a) small memtables + eager compaction make ingestion pay a
//!       maintenance cost that grows superlinearly with per-shard data;
//!   (b) scan cost depends on the number of live SSTables, which the
//!       same tuning controls.
//! This ablation sweeps the two knobs in isolation (no network) to show
//! each effect, justifying both the "ingest-tuned" and "scan-tuned"
//! configurations used by E11 and the `hepnos_workflow` example.
//!
//! A third knob arrived with the striped write path (DESIGN.md §15): the
//! stripe count. The second table sweeps stripes × writer threads to show
//! where parallel ingest stops paying — the gating numbers live in
//! `a04_contention`, this table is the tuning-oriented view.

use std::sync::{Arc, Barrier};

use mochi_bench::{fmt_rate, fmt_secs, Table};
use mochi_util::time::Stopwatch;
use mochi_util::TempDir;
use mochi_yokan::backend::lsm::{LsmConfig, LsmDatabase};
use mochi_yokan::Database;

const KEYS: usize = 4000;
const VALUE: usize = 512;

fn main() {
    let mut table = Table::new(&[
        "memtable",
        "max_tables",
        "ingest",
        "tables after",
        "full scan",
    ]);
    for (memtable_bytes, max_tables) in [
        (4 << 10, 2usize),
        (16 << 10, 3),
        (64 << 10, 4),
        (256 << 10, 4),
        (64 << 20, 8), // scan-tuned: never flushes at this scale
    ] {
        let dir = TempDir::new("a01").unwrap();
        // One stripe: this sweep isolates the memtable/compaction knobs,
        // so stripe parallelism must not blur the picture.
        let config = LsmConfig { memtable_bytes, max_tables, stripes: 1, ..LsmConfig::default() };
        let db = LsmDatabase::open(dir.path(), config).unwrap();
        let value = vec![0xAAu8; VALUE];
        let sw = Stopwatch::start();
        for i in 0..KEYS {
            db.put(format!("event/{i:08}").as_bytes(), &value).unwrap();
        }
        let ingest = sw.elapsed_secs();
        let tables = db.table_count();

        let sw = Stopwatch::start();
        let mut cursor: Option<Vec<u8>> = None;
        let mut seen = 0usize;
        loop {
            let keys = db.list_keys(b"event/", cursor.as_deref(), 64).unwrap();
            if keys.is_empty() {
                break;
            }
            for key in &keys {
                if db.get(key).unwrap().is_some() {
                    seen += 1;
                }
            }
            cursor = keys.last().cloned();
        }
        assert_eq!(seen, KEYS);
        let scan = sw.elapsed_secs();

        table.row(&[
            mochi_util::bytesize::format_bytes(memtable_bytes as u64),
            max_tables.to_string(),
            fmt_secs(ingest),
            tables.to_string(),
            fmt_secs(scan),
        ]);
    }
    table.print(&format!(
        "A1 — LSM tuning ablation ({KEYS} keys x {VALUE} B, single backend, no network)"
    ));
    println!("shape: small memtables inflate ingest (flush+compaction churn)");
    println!("while large memtables avoid it — the asymmetry E11's dynamic");
    println!("reconfiguration exploits per step.");
    println!();

    stripe_sweep();
}

/// Stripes × writer threads: parallel ingest throughput (puts/s).
fn stripe_sweep() {
    let thread_counts = [1usize, 2, 4, 8];
    let mut table = Table::new(&["stripes", "1 thr", "2 thr", "4 thr", "8 thr"]);
    for stripes in [1usize, 2, 4, 8] {
        let mut row = vec![stripes.to_string()];
        for &threads in &thread_counts {
            let dir = TempDir::new("a01-stripes").unwrap();
            let config =
                LsmConfig { memtable_bytes: 64 << 10, max_tables: 4, stripes, ..LsmConfig::default() };
            let db = Arc::new(LsmDatabase::open(dir.path(), config).unwrap());
            let per_thread = KEYS / threads;
            let barrier = Arc::new(Barrier::new(threads + 1));
            let workers: Vec<_> = (0..threads)
                .map(|t| {
                    let db = Arc::clone(&db);
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        let value = vec![0x55u8; VALUE];
                        barrier.wait();
                        for i in 0..per_thread {
                            db.put(format!("w{t}/{i:08}").as_bytes(), &value).unwrap();
                        }
                    })
                })
                .collect();
            barrier.wait();
            let sw = Stopwatch::start();
            for worker in workers {
                worker.join().unwrap();
            }
            let elapsed = sw.elapsed_secs();
            row.push(fmt_rate((per_thread * threads) as u64, elapsed));
        }
        table.row(&row);
    }
    table.print(&format!(
        "A1b — striped ingest ({KEYS} puts x {VALUE} B total, threads pinned to disjoint key ranges)"
    ));
    println!("shape: one stripe serializes every writer on one WAL; stripe");
    println!("counts at or above the thread count let ingest scale until the");
    println!("flush path (shared disk) becomes the limit.");
}
