//! E4 — Jx9 configuration queries (paper §5, Listing 4).
//!
//! Claim under test: Jx9 queries against the live configuration are cheap
//! enough for interactive diagnosis, scaling linearly with configuration
//! size.

use mochi_bedrock::jx9;
use mochi_bench::{fmt_latency, measure, Table};
use serde_json::json;

fn synthetic_config(providers: usize) -> serde_json::Value {
    let list: Vec<serde_json::Value> = (0..providers)
        .map(|i| {
            json!({
                "name": format!("provider{i}"),
                "type": if i % 3 == 0 { "yokan" } else { "warabi" },
                "provider_id": i,
                "pool": format!("pool{}", i % 4),
            })
        })
        .collect();
    json!({ "providers": list, "margo": { "argobots": { "pools": [] } } })
}

const LISTING_4: &str = r#"
    $result = [];
    foreach ($__config__.providers as $p) {
        array_push($result, $p.name); }
    return $result;
"#;

const FILTER_QUERY: &str = r#"
    $out = [];
    foreach ($__config__.providers as $p) {
        if ($p.type == "yokan") { array_push($out, $p.name); } }
    return $out;
"#;

const AGGREGATE_QUERY: &str = r#"
    $by_pool = {};
    foreach ($__config__.providers as $p) {
        $n = $by_pool[$p.pool];
        if ($n == null) { $n = 0; }
        $by_pool[$p.pool] = $n + 1; }
    return $by_pool;
"#;

fn main() {
    let mut table = Table::new(&["providers", "Listing 4", "filter", "aggregate"]);
    for providers in [1usize, 10, 100, 1000] {
        let config = synthetic_config(providers);
        let listing4 = measure(5, 100, || {
            let result = jx9::eval(LISTING_4, &config).unwrap();
            assert_eq!(result.as_array().unwrap().len(), providers);
        });
        let filter = measure(5, 100, || {
            jx9::eval(FILTER_QUERY, &config).unwrap();
        });
        let aggregate = measure(5, 100, || {
            jx9::eval(AGGREGATE_QUERY, &config).unwrap();
        });
        table.row(&[
            providers.to_string(),
            fmt_latency(&listing4),
            fmt_latency(&filter),
            fmt_latency(&aggregate),
        ]);
    }
    table.print("E4 — Jx9 query latency vs configuration size");
    println!("claim: interactive-speed configuration queries; cost grows");
    println!("linearly with the number of providers in the document.");
}
