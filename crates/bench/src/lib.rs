//! Shared helpers for the experiment harness (`benches/e*.rs`).
//!
//! Every experiment in DESIGN.md §5 has one bench target that regenerates
//! its table. These helpers keep the output format uniform so
//! EXPERIMENTS.md can quote the tables directly.

use std::time::Duration;

use mochi_margo::MargoRuntime;
use mochi_mercury::{Address, Fabric};
use mochi_util::Histogram;

/// Prints a markdown-style table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders to stdout.
    pub fn print(&self, title: &str) {
        println!("\n### {title}\n");
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            println!("| {} |", padded.join(" | "));
        };
        render(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            render(row);
        }
        println!();
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Formats a throughput (ops/s).
pub fn fmt_rate(ops: u64, seconds: f64) -> String {
    if seconds <= 0.0 {
        return "inf".into();
    }
    let rate = ops as f64 / seconds;
    if rate > 1e6 {
        format!("{:.2} Mop/s", rate / 1e6)
    } else if rate > 1e3 {
        format!("{:.1} kop/s", rate / 1e3)
    } else {
        format!("{rate:.1} op/s")
    }
}

/// Formats bytes/second.
pub fn fmt_bandwidth(bytes: u64, seconds: f64) -> String {
    if seconds <= 0.0 {
        return "inf".into();
    }
    let rate = bytes as f64 / seconds;
    if rate > 1e9 {
        format!("{:.2} GB/s", rate / 1e9)
    } else if rate > 1e6 {
        format!("{:.1} MB/s", rate / 1e6)
    } else {
        format!("{:.1} kB/s", rate / 1e3)
    }
}

/// Latency summary string from a histogram.
pub fn fmt_latency(h: &Histogram) -> String {
    format!(
        "p50={} p95={} p99={}",
        fmt_secs(h.quantile(0.5)),
        fmt_secs(h.quantile(0.95)),
        fmt_secs(h.quantile(0.99))
    )
}

/// Boots a plain Margo process on `fabric` (benchmark boilerplate).
pub fn boot(fabric: &Fabric, host: &str) -> MargoRuntime {
    MargoRuntime::init_default(fabric, Address::tcp(host, 1)).expect("margo init")
}

/// Measures `iterations` calls of `op`, returning a latency histogram
/// (seconds) after `warmup` unmeasured calls.
pub fn measure(warmup: usize, iterations: usize, mut op: impl FnMut()) -> Histogram {
    for _ in 0..warmup {
        op();
    }
    let mut histogram = Histogram::new();
    for _ in 0..iterations {
        let start = std::time::Instant::now();
        op();
        histogram.record(start.elapsed().as_secs_f64());
    }
    histogram
}

/// Waits with a generous deadline, panicking with `what` on timeout.
pub fn await_or_panic(what: &str, condition: impl FnMut() -> bool) {
    assert!(
        mochi_util::time::wait_until(Duration::from_secs(60), Duration::from_millis(5), condition),
        "timed out waiting for: {what}"
    );
}
