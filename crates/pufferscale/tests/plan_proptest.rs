//! Property tests: rebalancing plans are always *feasible* — no resource
//! is lost or duplicated, every move references real nodes, forced moves
//! are complete, and metrics agree with the resulting placement.

use std::collections::BTreeMap;

use proptest::prelude::*;

use mochi_pufferscale::{plan_rebalance, Placement, Resource, Weights};

fn placement_strategy() -> impl Strategy<Value = (Placement, Vec<String>)> {
    // 1..5 source nodes with 0..6 resources each; target = random subset
    // of sources plus possibly new nodes.
    (1usize..5, 0usize..3, proptest::collection::vec((0.0f64..100.0, 1u64..10_000), 0..20))
        .prop_map(|(sources, extra_targets, resources)| {
            let source_names: Vec<String> = (0..sources).map(|i| format!("n{i}")).collect();
            let mut placement = Placement::empty(&source_names);
            for (i, (load, size)) in resources.into_iter().enumerate() {
                let node = format!("n{}", i % sources);
                placement.nodes.get_mut(&node).unwrap().push(Resource {
                    id: format!("r{i}"),
                    load,
                    size,
                });
            }
            // Target: drop the last source node (if >1), add extras.
            let keep = if sources > 1 { sources - 1 } else { sources };
            let mut targets: Vec<String> =
                (0..keep).map(|i| format!("n{i}")).collect();
            for j in 0..extra_targets {
                targets.push(format!("new{j}"));
            }
            (placement, targets)
        })
}

fn weights_strategy() -> impl Strategy<Value = Weights> {
    (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0)
        .prop_map(|(load, data, time)| Weights { load, data, time })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn plans_are_feasible((placement, targets) in placement_strategy(), weights in weights_strategy()) {
        let plan = plan_rebalance(&placement, &targets, &weights);

        // Conservation: same multiset of resource ids before and after.
        let mut before: Vec<&str> =
            placement.nodes.values().flatten().map(|r| r.id.as_str()).collect();
        let mut after: Vec<&str> =
            plan.result.nodes.values().flatten().map(|r| r.id.as_str()).collect();
        before.sort();
        after.sort();
        if !targets.is_empty() {
            prop_assert_eq!(before, after);
        } else {
            prop_assert!(after.is_empty());
        }

        // Result only uses target nodes.
        for node in plan.result.nodes.keys() {
            prop_assert!(targets.contains(node));
        }

        // Moves reference target destinations and real resources.
        let ids: std::collections::HashSet<&str> =
            placement.nodes.values().flatten().map(|r| r.id.as_str()).collect();
        for step in &plan.moves {
            prop_assert!(targets.contains(&step.to), "move to non-target {}", step.to);
            prop_assert!(ids.contains(step.resource.as_str()));
        }

        // Every resource on a removed node was moved exactly once off it.
        let removed: Vec<&String> = placement
            .nodes
            .keys()
            .filter(|n| !targets.contains(n))
            .collect();
        if !targets.is_empty() {
            for node in removed {
                for resource in &placement.nodes[node] {
                    let count = plan
                        .moves
                        .iter()
                        .filter(|m| m.resource == resource.id && m.from == *node)
                        .count();
                    prop_assert_eq!(count, 1, "forced move for {}", resource.id);
                }
            }
        }

        // Metrics consistent with the final placement.
        prop_assert!((plan.metrics.load_imbalance - plan.result.load_imbalance()).abs() < 1e-9);
        prop_assert!((plan.metrics.data_imbalance - plan.result.data_imbalance()).abs() < 1e-9);
        let total: u64 = plan.moves.iter().map(|m| m.size).sum();
        prop_assert_eq!(plan.metrics.total_bytes_moved, total);
        prop_assert_eq!(plan.metrics.moves, plan.moves.len());
    }

    #[test]
    fn replaying_moves_reproduces_result((placement, targets) in placement_strategy(), weights in weights_strategy()) {
        prop_assume!(!targets.is_empty());
        let plan = plan_rebalance(&placement, &targets, &weights);
        // Replay the moves on a map id→node starting from `placement`.
        let mut location: BTreeMap<String, String> = BTreeMap::new();
        for (node, resources) in &placement.nodes {
            for r in resources {
                location.insert(r.id.clone(), node.clone());
            }
        }
        for step in &plan.moves {
            prop_assert_eq!(location.get(&step.resource), Some(&step.from),
                "move source mismatch for {}", &step.resource);
            location.insert(step.resource.clone(), step.to.clone());
        }
        for (node, resources) in &plan.result.nodes {
            for r in resources {
                prop_assert_eq!(location.get(&r.id), Some(node));
            }
        }
    }
}
