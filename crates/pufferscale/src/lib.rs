//! `mochi-pufferscale` — rebalancing heuristics for elastic services
//! (paper §6, Observation 6; Cheriere et al., CCGRID'20).
//!
//! "Pufferscale does not require any knowledge of the nature of the
//! resources being migrated or how they will be migrated. It simply works
//! out a rebalancing plan and carries it out by calling functions
//! provided via dependency injection." Accordingly:
//!
//! * a [`Resource`] is just an id with a *load* (access rate) and a
//!   *size* (bytes) — Yokan databases, Warabi targets, anything;
//! * [`plan_rebalance`] produces a [`RebalancePlan`] optimizing the
//!   Pufferscale trilemma — **load balance**, **data balance**, and
//!   **rebalancing time** (dominated by the node that receives the most
//!   bytes) — under tunable [`Weights`];
//! * [`execute_plan`] carries the plan out through an injected migration
//!   callback.
//!
//! Experiment E6 sweeps the weights and reports the resulting trade-off
//! frontier, reproducing the paper's qualitative claim that the three
//! objectives trade off against each other.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A migratable resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// Unique identifier (e.g. `"yokan:db3"`).
    pub id: String,
    /// Access load (requests/s or any consistent unit).
    pub load: f64,
    /// Data volume in bytes.
    pub size: u64,
}

/// Current placement: node → resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Node → resources on it. `BTreeMap` for deterministic iteration.
    pub nodes: BTreeMap<String, Vec<Resource>>,
}

impl Placement {
    /// Creates an empty placement over the given nodes.
    pub fn empty(nodes: &[String]) -> Self {
        Self { nodes: nodes.iter().map(|n| (n.clone(), Vec::new())).collect() }
    }

    /// Total load across all nodes.
    pub fn total_load(&self) -> f64 {
        self.nodes.values().flatten().map(|r| r.load).sum()
    }

    /// Total bytes across all nodes.
    pub fn total_size(&self) -> u64 {
        self.nodes.values().flatten().map(|r| r.size).sum()
    }

    /// Per-node load.
    pub fn node_load(&self, node: &str) -> f64 {
        self.nodes.get(node).map(|rs| rs.iter().map(|r| r.load).sum()).unwrap_or(0.0)
    }

    /// Per-node bytes.
    pub fn node_size(&self, node: &str) -> u64 {
        self.nodes.get(node).map(|rs| rs.iter().map(|r| r.size).sum()).unwrap_or(0)
    }

    /// Normalized imbalance of a per-node metric: `max/avg - 1`
    /// (0 = perfectly balanced). Returns 0 for empty/zero systems.
    fn imbalance(values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let total: f64 = values.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let avg = total / values.len() as f64;
        let max = values.iter().cloned().fold(0.0, f64::max);
        max / avg - 1.0
    }

    /// Load imbalance (`max/avg - 1`).
    pub fn load_imbalance(&self) -> f64 {
        let values: Vec<f64> = self.nodes.keys().map(|n| self.node_load(n)).collect();
        Self::imbalance(&values)
    }

    /// Data imbalance (`max/avg - 1`).
    pub fn data_imbalance(&self) -> f64 {
        let values: Vec<f64> = self.nodes.keys().map(|n| self.node_size(n) as f64).collect();
        Self::imbalance(&values)
    }

    /// Normalized standard deviation of a per-node metric (0 = balanced).
    /// Smoother than `max/avg`, so greedy single-resource moves always
    /// register progress even when two nodes tie at the maximum.
    fn spread(values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let total: f64 = values.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let avg = total / values.len() as f64;
        let var =
            values.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>() / values.len() as f64;
        var.sqrt() / avg
    }

    /// Load spread (normalized std-dev; optimization objective).
    pub fn load_spread(&self) -> f64 {
        let values: Vec<f64> = self.nodes.keys().map(|n| self.node_load(n)).collect();
        Self::spread(&values)
    }

    /// Data spread (normalized std-dev; optimization objective).
    pub fn data_spread(&self) -> f64 {
        let values: Vec<f64> = self.nodes.keys().map(|n| self.node_size(n) as f64).collect();
        Self::spread(&values)
    }

    /// The node that minimizes the weighted load/data burden — the
    /// placement decision for a *new* resource (a provider joining a
    /// routed keyspace lands where it disturbs the balance least).
    /// Metrics are normalized by their totals so `weights` compares
    /// like with like; ties break to the lexicographically first node.
    pub fn least_loaded(&self, weights: &Weights) -> Option<&str> {
        let total_load = self.total_load().max(1.0);
        let total_size = self.total_size().max(1) as f64;
        self.nodes
            .keys()
            .map(|node| {
                let burden = weights.load * (self.node_load(node) / total_load)
                    + weights.data * (self.node_size(node) as f64 / total_size);
                (node, burden)
            })
            .min_by(|(a, ba), (b, bb)| {
                ba.partial_cmp(bb).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(b))
            })
            .map(|(node, _)| node.as_str())
    }
}

/// Objective weights: higher = that objective matters more.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Load balance (balance of accesses).
    pub load: f64,
    /// Data balance (balance of stored bytes).
    pub data: f64,
    /// Rebalancing time (bytes moved; max per receiving node).
    pub time: f64,
}

impl Default for Weights {
    fn default() -> Self {
        Self { load: 1.0, data: 1.0, time: 1.0 }
    }
}

/// One migration in a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Move {
    /// Resource to migrate.
    pub resource: String,
    /// Source node.
    pub from: String,
    /// Destination node.
    pub to: String,
    /// Bytes that will move.
    pub size: u64,
}

/// Quality metrics of a plan's resulting placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanMetrics {
    /// `max/avg - 1` of per-node load after the plan.
    pub load_imbalance: f64,
    /// `max/avg - 1` of per-node bytes after the plan.
    pub data_imbalance: f64,
    /// Bytes received by the busiest destination (the paper's model of
    /// rebalancing time under parallel transfers).
    pub max_bytes_into_one_node: u64,
    /// Total bytes moved.
    pub total_bytes_moved: u64,
    /// Number of migrations.
    pub moves: usize,
}

/// A rebalancing plan: ordered moves plus predicted quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RebalancePlan {
    /// Migrations to perform.
    pub moves: Vec<Move>,
    /// The placement after all moves.
    pub result: Placement,
    /// Predicted metrics.
    pub metrics: PlanMetrics,
}

/// Computes a rebalancing plan taking `current` to the node set
/// `target_nodes` under `weights`.
///
/// Strategy (greedy, after the Pufferscale heuristics):
/// 1. resources on nodes absent from the target *must* move ("homeless");
/// 2. homeless resources are placed, heaviest first, onto the node that
///    minimizes the weighted objective;
/// 3. an improvement pass moves resources off the most burdened node
///    whenever the weighted objective (including the migration-time
///    penalty) improves — with a large `weights.time` this pass stops
///    early, trading balance for less data movement.
pub fn plan_rebalance(
    current: &Placement,
    target_nodes: &[String],
    weights: &Weights,
) -> RebalancePlan {
    let mut result = Placement::empty(target_nodes);
    let mut moves: Vec<Move> = Vec::new();
    let mut incoming: BTreeMap<String, u64> =
        target_nodes.iter().map(|n| (n.clone(), 0u64)).collect();

    // Keep resources already on surviving nodes in place.
    let mut homeless: Vec<(String, Resource)> = Vec::new();
    for (node, resources) in &current.nodes {
        if result.nodes.contains_key(node) {
            result.nodes.get_mut(node).expect("target node").extend(resources.iter().cloned());
        } else {
            for resource in resources {
                homeless.push((node.clone(), resource.clone()));
            }
        }
    }

    if target_nodes.is_empty() {
        let metrics = metrics_for(&result, &incoming, &moves);
        return RebalancePlan { moves, result, metrics };
    }

    let total_load: f64 = current.total_load().max(f64::MIN_POSITIVE);
    let total_size: f64 = (current.total_size() as f64).max(1.0);
    let n = target_nodes.len() as f64;
    let avg_load = total_load / n;
    let avg_size = total_size / n;

    // Weighted "fullness" of a node if it also took `r`.
    let score = |result: &Placement, incoming: &BTreeMap<String, u64>, node: &str, r: &Resource| {
        let load = (result.node_load(node) + r.load) / avg_load.max(f64::MIN_POSITIVE);
        let data = (result.node_size(node) + r.size) as f64 / avg_size;
        let time = (incoming.get(node).copied().unwrap_or(0) + r.size) as f64 / avg_size;
        weights.load * load + weights.data * data + weights.time * time
    };

    // Place forced moves, largest weighted burden first.
    homeless.sort_by(|a, b| {
        let burden = |r: &Resource| weights.load * r.load / avg_load.max(f64::MIN_POSITIVE)
            + weights.data * r.size as f64 / avg_size;
        burden(&b.1).partial_cmp(&burden(&a.1)).unwrap_or(std::cmp::Ordering::Equal)
    });
    for (from, resource) in homeless {
        let best = target_nodes
            .iter()
            .min_by(|a, b| {
                score(&result, &incoming, a, &resource)
                    .partial_cmp(&score(&result, &incoming, b, &resource))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty targets")
            .clone();
        *incoming.get_mut(&best).expect("target") += resource.size;
        moves.push(Move {
            resource: resource.id.clone(),
            from,
            to: best.clone(),
            size: resource.size,
        });
        result.nodes.get_mut(&best).expect("target").push(resource);
    }

    // Improvement pass: relieve the most burdened node while the overall
    // weighted objective (spreads + movement penalty) improves. Spreads
    // (normalized std-dev) are used instead of max/avg so single-resource
    // moves register progress even when two nodes tie at the maximum; the
    // time term charges total bytes moved relative to total data.
    let objective = |result: &Placement, extra_moved: f64| {
        weights.load * result.load_spread()
            + weights.data * result.data_spread()
            + weights.time * extra_moved / total_size
    };
    let mut optional_moved: f64 = 0.0;
    let max_iterations = 4 * current.nodes.values().map(Vec::len).sum::<usize>().max(1);
    for _ in 0..max_iterations {
        let current_objective = objective(&result, optional_moved);
        // Most burdened node by weighted fullness.
        let busiest = target_nodes
            .iter()
            .max_by(|a, b| {
                let f = |n: &str| {
                    weights.load * result.node_load(n) / avg_load.max(f64::MIN_POSITIVE)
                        + weights.data * result.node_size(n) as f64 / avg_size
                };
                f(a).partial_cmp(&f(b)).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty")
            .clone();
        // Try each resource on it against each other node; take the best
        // improving move.
        let mut best: Option<(usize, String, f64)> = None;
        let resources = result.nodes[&busiest].clone();
        for (i, resource) in resources.iter().enumerate() {
            for node in target_nodes {
                if *node == busiest {
                    continue;
                }
                // Tentatively apply.
                let mut trial = result.clone();
                let moved = trial.nodes.get_mut(&busiest).expect("busiest").remove(i);
                trial.nodes.get_mut(node).expect("target").push(moved);
                let trial_objective =
                    objective(&trial, optional_moved + resource.size as f64);
                if trial_objective < current_objective - 1e-9
                    && best.as_ref().is_none_or(|(_, _, b)| trial_objective < *b)
                {
                    best = Some((i, node.clone(), trial_objective));
                }
            }
        }
        let Some((index, to, _)) = best else { break };
        let resource = result.nodes.get_mut(&busiest).expect("busiest").remove(index);
        optional_moved += resource.size as f64;
        *incoming.get_mut(&to).expect("target") += resource.size;
        moves.push(Move {
            resource: resource.id.clone(),
            from: busiest,
            to: to.clone(),
            size: resource.size,
        });
        result.nodes.get_mut(&to).expect("target").push(resource);
    }

    let metrics = metrics_for(&result, &incoming, &moves);
    RebalancePlan { moves, result, metrics }
}

fn metrics_for(
    result: &Placement,
    incoming: &BTreeMap<String, u64>,
    moves: &[Move],
) -> PlanMetrics {
    PlanMetrics {
        load_imbalance: result.load_imbalance(),
        data_imbalance: result.data_imbalance(),
        max_bytes_into_one_node: incoming.values().copied().max().unwrap_or(0),
        total_bytes_moved: moves.iter().map(|m| m.size).sum(),
        moves: moves.len(),
    }
}

/// Executes a plan through an injected migration function; stops at the
/// first failure, returning the moves performed so far and the error.
pub fn execute_plan(
    plan: &RebalancePlan,
    mut migrate: impl FnMut(&Move) -> Result<(), String>,
) -> Result<usize, (usize, String)> {
    for (i, step) in plan.moves.iter().enumerate() {
        migrate(step).map_err(|e| (i, e))?;
    }
    Ok(plan.moves.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resource(id: &str, load: f64, size: u64) -> Resource {
        Resource { id: id.into(), load, size }
    }

    fn nodes(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn uniform_placement(node_count: usize, per_node: usize) -> Placement {
        let mut placement = Placement::empty(&(0..node_count)
            .map(|i| format!("n{i}"))
            .collect::<Vec<_>>());
        for i in 0..node_count {
            for j in 0..per_node {
                placement
                    .nodes
                    .get_mut(&format!("n{i}"))
                    .unwrap()
                    .push(resource(&format!("r{i}-{j}"), 1.0, 100));
            }
        }
        placement
    }

    fn all_ids(p: &Placement) -> Vec<String> {
        let mut ids: Vec<String> =
            p.nodes.values().flatten().map(|r| r.id.clone()).collect();
        ids.sort();
        ids
    }

    #[test]
    fn least_loaded_picks_the_emptiest_node() {
        let mut p = Placement::empty(&nodes(&["n0", "n1", "n2"]));
        p.nodes.get_mut("n0").unwrap().push(resource("a", 10.0, 1000));
        p.nodes.get_mut("n1").unwrap().push(resource("b", 1.0, 10));
        assert_eq!(p.least_loaded(&Weights::default()), Some("n2"));
        // Empty placement: deterministic lexicographic tie-break.
        let empty = Placement::empty(&nodes(&["b", "a"]));
        assert_eq!(empty.least_loaded(&Weights::default()), Some("a"));
    }

    #[test]
    fn least_loaded_respects_weights() {
        // n0 is load-heavy, n1 is data-heavy: the winner follows the
        // objective the caller weights.
        let mut p = Placement::empty(&nodes(&["n0", "n1"]));
        p.nodes.get_mut("n0").unwrap().push(resource("hot", 100.0, 1));
        p.nodes.get_mut("n1").unwrap().push(resource("big", 1.0, 1_000_000));
        let load_only = Weights { load: 1.0, data: 0.0, time: 0.0 };
        let data_only = Weights { load: 0.0, data: 1.0, time: 0.0 };
        assert_eq!(p.least_loaded(&load_only), Some("n1"));
        assert_eq!(p.least_loaded(&data_only), Some("n0"));
    }

    #[test]
    fn scale_down_moves_everything_off_removed_nodes() {
        let placement = uniform_placement(4, 4);
        let target = nodes(&["n0", "n1"]);
        let plan = plan_rebalance(&placement, &target, &Weights::default());
        // All 8 resources from n2/n3 moved.
        assert!(plan.moves.iter().all(|m| m.from == "n2" || m.from == "n3" || m.from == "n0" || m.from == "n1"));
        let forced: usize =
            plan.moves.iter().filter(|m| m.from == "n2" || m.from == "n3").count();
        assert_eq!(forced, 8);
        // Nothing lost.
        assert_eq!(all_ids(&plan.result), all_ids(&placement));
        assert!(plan.result.nodes.keys().all(|n| n == "n0" || n == "n1"));
    }

    #[test]
    fn scale_up_spreads_data() {
        let placement = uniform_placement(2, 8);
        let target = nodes(&["n0", "n1", "n2", "n3"]);
        let plan = plan_rebalance(&placement, &target, &Weights::default());
        // New nodes got something.
        assert!(plan.result.node_size("n2") > 0);
        assert!(plan.result.node_size("n3") > 0);
        assert!(plan.metrics.load_imbalance < 0.5, "{:?}", plan.metrics);
        assert_eq!(all_ids(&plan.result), all_ids(&placement));
    }

    #[test]
    fn high_time_weight_moves_less_data() {
        let placement = uniform_placement(2, 10);
        let target = nodes(&["n0", "n1", "n2", "n3"]);
        let eager = plan_rebalance(
            &placement,
            &target,
            &Weights { load: 1.0, data: 1.0, time: 0.01 },
        );
        let lazy = plan_rebalance(
            &placement,
            &target,
            &Weights { load: 1.0, data: 1.0, time: 100.0 },
        );
        assert!(
            lazy.metrics.total_bytes_moved <= eager.metrics.total_bytes_moved,
            "lazy={:?} eager={:?}",
            lazy.metrics,
            eager.metrics
        );
        // And correspondingly worse balance (or at best equal).
        assert!(lazy.metrics.load_imbalance >= eager.metrics.load_imbalance - 1e-9);
    }

    #[test]
    fn load_weight_balances_hot_resources() {
        // One hot resource per node pair; load-focused weights should
        // separate the hot ones.
        let mut placement = Placement::empty(&nodes(&["n0", "n1"]));
        placement.nodes.get_mut("n0").unwrap().extend([
            resource("hot1", 100.0, 10),
            resource("hot2", 100.0, 10),
            resource("cold1", 1.0, 10),
        ]);
        placement.nodes.get_mut("n1").unwrap().push(resource("cold2", 1.0, 10));
        let plan = plan_rebalance(
            &placement,
            &nodes(&["n0", "n1"]),
            &Weights { load: 10.0, data: 0.1, time: 0.001 },
        );
        let loads = [plan.result.node_load("n0"), plan.result.node_load("n1")];
        assert!(
            (loads[0] - loads[1]).abs() <= 99.0 + 1e-9,
            "hot resources should split: {loads:?} (moves: {:?})",
            plan.moves
        );
        assert!(plan.metrics.load_imbalance < 0.5, "{:?}", plan.metrics);
    }

    #[test]
    fn empty_target_produces_empty_plan() {
        let placement = uniform_placement(2, 2);
        let plan = plan_rebalance(&placement, &[], &Weights::default());
        assert!(plan.result.nodes.is_empty());
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn noop_when_nothing_to_do() {
        let placement = uniform_placement(3, 2);
        let plan = plan_rebalance(
            &placement,
            &nodes(&["n0", "n1", "n2"]),
            &Weights::default(),
        );
        assert!(plan.moves.is_empty(), "balanced placement needs no moves: {:?}", plan.moves);
        assert_eq!(plan.metrics.total_bytes_moved, 0);
    }

    #[test]
    fn execute_plan_calls_injected_migration() {
        let placement = uniform_placement(2, 2);
        let plan = plan_rebalance(&placement, &nodes(&["n0"]), &Weights::default());
        let mut seen = Vec::new();
        let done = execute_plan(&plan, |m| {
            seen.push(m.resource.clone());
            Ok(())
        })
        .unwrap();
        assert_eq!(done, plan.moves.len());
        assert_eq!(seen.len(), plan.moves.len());
    }

    #[test]
    fn execute_plan_stops_on_failure() {
        let placement = uniform_placement(2, 2);
        let plan = plan_rebalance(&placement, &nodes(&["n0"]), &Weights::default());
        assert!(plan.moves.len() >= 2);
        let mut calls = 0;
        let err = execute_plan(&plan, |_| {
            calls += 1;
            if calls == 2 {
                Err("boom".into())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err.0, 1);
        assert_eq!(calls, 2);
    }

    #[test]
    fn metrics_reflect_final_placement() {
        let placement = uniform_placement(4, 3);
        let plan = plan_rebalance(&placement, &nodes(&["n0", "n1"]), &Weights::default());
        let recomputed_load = plan.result.load_imbalance();
        assert!((plan.metrics.load_imbalance - recomputed_load).abs() < 1e-12);
        let total: u64 = plan.moves.iter().map(|m| m.size).sum();
        assert_eq!(plan.metrics.total_bytes_moved, total);
    }
}
