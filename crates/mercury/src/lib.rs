//! `mochi-mercury` — a simulated HPC network fabric.
//!
//! This crate stands in for the Mercury RPC transport layer of the Mochi
//! stack (Soumagne et al., CLUSTER'13). The real Mercury speaks libfabric /
//! verbs / shared memory on an HPC cluster; everything the paper builds is
//! *above* that transport, so we replace it with an in-process fabric that
//! preserves the observable behavior:
//!
//! * processes own [`endpoint::Endpoint`]s registered in a [`fabric::Fabric`]
//!   under Mercury-style string addresses (`na+sm://…`, `ofi+tcp://…`),
//! * request/response messaging with per-request correlation and timeouts,
//! * RDMA-style **bulk transfers** ([`bulk`]) that move large payloads
//!   between registered memory regions, timed by a bandwidth model,
//! * a configurable [`netmodel::NetworkModel`] (latency + bandwidth + jitter
//!   per link class) so benchmarks exhibit realistic shapes,
//! * a [`fault::FaultPlane`] that can drop or delay messages, partition the
//!   fabric, and crash endpoints — the substrate for every resilience
//!   experiment in the paper's §7.
//!
//! Nothing here knows about providers, pools, or monitoring; that is
//! `mochi-margo`'s job, mirroring the layering of the original stack.

pub mod address;
pub mod bulk;
pub mod endpoint;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod message;
pub mod netmodel;

pub use address::Address;
pub use bulk::{BulkAccess, BulkHandle, BulkRegistry};
pub use endpoint::{CallContext, Endpoint, Incoming, OneWayInfo, PendingRequest, RequestInfo};
pub use error::MercuryError;
pub use fabric::Fabric;
pub use fault::{FaultDecision, FaultPlane, LinkScript};
pub use message::{Envelope, Message, RequestBody, ResponseBody, ResponseStatus};
pub use netmodel::{LinkClass, LinkParams, NetworkModel};
