//! Endpoints: the per-process attachment point to the fabric.
//!
//! An [`Endpoint`] owns the mailbox for one address. The upper layer
//! (Margo's progress loop) repeatedly calls [`Endpoint::progress`], which
//! internally completes responses to outstanding requests and hands
//! requests/notifications back to the caller for dispatch — the same
//! division of labor as Mercury's `HG_Progress`/`HG_Trigger`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use mochi_util::time::precise_sleep;

use crate::address::Address;
use crate::bulk::{BulkAccess, BulkHandle};
use crate::error::MercuryError;
use crate::fabric::FabricInner;
use crate::message::{Envelope, Message, OneWayBody, RequestBody, ResponseBody, ResponseStatus};

/// Calling context carried by requests: identifies the parent RPC when a
/// handler issues nested RPCs (Listing 1 reports these fields) and carries
/// the absolute deadline the whole call chain must finish by, so nested
/// forwards inherit the parent's *remaining* budget rather than restarting
/// from the default timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallContext {
    /// RPC id of the parent handler, or `u64::MAX` at top level.
    pub parent_rpc_id: u64,
    /// Provider id of the parent handler, or `u16::MAX` at top level.
    pub parent_provider_id: u16,
    /// Absolute deadline inherited from the parent call, if any.
    pub deadline: Option<Instant>,
}

impl CallContext {
    /// Context for calls made outside any handler.
    pub const TOP_LEVEL: CallContext =
        CallContext { parent_rpc_id: u64::MAX, parent_provider_id: u16::MAX, deadline: None };

    /// Same parentage with the deadline replaced.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }
}

impl Default for CallContext {
    fn default() -> Self {
        Self::TOP_LEVEL
    }
}

/// An incoming message surfaced by [`Endpoint::progress`].
#[derive(Debug)]
pub enum Incoming {
    /// A request that must eventually be answered via [`Endpoint::respond`].
    Request(RequestInfo),
    /// A fire-and-forget notification.
    OneWay(OneWayInfo),
}

impl Incoming {
    /// RPC id of the incoming message.
    pub fn rpc_id(&self) -> u64 {
        match self {
            Incoming::Request(r) => r.rpc_id,
            Incoming::OneWay(o) => o.rpc_id,
        }
    }

    /// Target provider id.
    pub fn provider_id(&self) -> u16 {
        match self {
            Incoming::Request(r) => r.provider_id,
            Incoming::OneWay(o) => o.provider_id,
        }
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        match self {
            Incoming::Request(r) => &r.payload,
            Incoming::OneWay(o) => &o.payload,
        }
    }
}

/// A received request plus everything needed to respond to it.
///
/// The source address is `Arc`-shared: the upper layers (Margo dispatch,
/// monitoring events, response routing) all reference the same address many
/// times per request, and an `Arc` bump is far cheaper than cloning the
/// address each time.
#[derive(Debug, Clone)]
pub struct RequestInfo {
    /// Address of the requester.
    pub source: Arc<Address>,
    /// RPC id.
    pub rpc_id: u64,
    /// Target provider id.
    pub provider_id: u16,
    /// Correlation id (echoed in the response).
    pub xid: u64,
    /// Context the request was issued from.
    pub context: CallContext,
    /// Serialized input.
    pub payload: Bytes,
}

/// A received one-way notification.
#[derive(Debug, Clone)]
pub struct OneWayInfo {
    /// Address of the sender (`Arc`-shared, see [`RequestInfo`]).
    pub source: Arc<Address>,
    /// RPC id.
    pub rpc_id: u64,
    /// Target provider id.
    pub provider_id: u16,
    /// Serialized payload.
    pub payload: Bytes,
}

type PendingMap = Mutex<HashMap<u64, Sender<ResponseBody>>>;

/// An outstanding request; wait on it for the response.
#[must_use = "wait on the pending request to obtain the response"]
pub struct PendingRequest {
    xid: u64,
    rx: Receiver<ResponseBody>,
    pending: Arc<PendingMap>,
}

impl PendingRequest {
    /// Blocks until the response arrives or `timeout` elapses.
    pub fn wait(self, timeout: Duration) -> Result<ResponseBody, MercuryError> {
        match self.rx.recv_timeout(timeout) {
            Ok(resp) => Ok(resp),
            Err(RecvTimeoutError::Timeout) => {
                self.pending.lock().remove(&self.xid);
                Err(MercuryError::Timeout)
            }
            Err(RecvTimeoutError::Disconnected) => Err(MercuryError::LocalShutdown),
        }
    }
}

/// A process's attachment to the fabric.
pub struct Endpoint {
    addr: Address,
    /// Identifies this endpoint to the fabric (see `Fabric::kill_if_owner`).
    uid: u64,
    mailbox: Receiver<Envelope>,
    fabric: Arc<FabricInner>,
    pending: Arc<PendingMap>,
    next_xid: AtomicU64,
    closed: AtomicBool,
}

impl Endpoint {
    pub(crate) fn new(
        addr: Address,
        mailbox: Receiver<Envelope>,
        uid: u64,
        fabric: Arc<FabricInner>,
    ) -> Self {
        Self {
            addr,
            uid,
            mailbox,
            fabric,
            pending: Arc::new(Mutex::new(HashMap::new())),
            next_xid: AtomicU64::new(1),
            closed: AtomicBool::new(false),
        }
    }

    /// This endpoint's address.
    pub fn address(&self) -> &Address {
        &self.addr
    }

    fn fabric_handle(&self) -> crate::fabric::Fabric {
        crate::fabric::Fabric { inner: Arc::clone(&self.fabric) }
    }

    fn ensure_open(&self) -> Result<(), MercuryError> {
        if self.closed.load(Ordering::Acquire) {
            Err(MercuryError::LocalShutdown)
        } else {
            Ok(())
        }
    }

    /// Sends a request; the returned [`PendingRequest`] completes when a
    /// response is processed by *some* call to [`Endpoint::progress`] on
    /// this endpoint (typically the runtime's progress loop).
    pub fn send_request(
        &self,
        dest: &Address,
        rpc_id: u64,
        provider_id: u16,
        context: CallContext,
        payload: Bytes,
    ) -> Result<PendingRequest, MercuryError> {
        self.ensure_open()?;
        let xid = self.next_xid.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.pending.lock().insert(xid, tx);
        let envelope = Envelope {
            source: self.addr.clone(),
            dest: dest.clone(),
            message: Message::Request(RequestBody {
                rpc_id,
                provider_id,
                xid,
                parent_rpc_id: context.parent_rpc_id,
                parent_provider_id: context.parent_provider_id,
                deadline: context.deadline,
                payload,
            }),
        };
        if let Err(e) = self.fabric_handle().send(envelope) {
            self.pending.lock().remove(&xid);
            return Err(e);
        }
        Ok(PendingRequest { xid, rx, pending: Arc::clone(&self.pending) })
    }

    /// Sends a fire-and-forget notification.
    pub fn send_oneway(
        &self,
        dest: &Address,
        rpc_id: u64,
        provider_id: u16,
        payload: Bytes,
    ) -> Result<(), MercuryError> {
        self.ensure_open()?;
        let envelope = Envelope {
            source: self.addr.clone(),
            dest: dest.clone(),
            message: Message::OneWay(OneWayBody { rpc_id, provider_id, payload }),
        };
        self.fabric_handle().send(envelope)
    }

    /// Answers `request` with `status` and `payload`.
    pub fn respond(
        &self,
        request: &RequestInfo,
        status: ResponseStatus,
        payload: Bytes,
    ) -> Result<(), MercuryError> {
        self.ensure_open()?;
        let envelope = Envelope {
            source: self.addr.clone(),
            dest: (*request.source).clone(),
            message: Message::Response(ResponseBody { xid: request.xid, status, payload }),
        };
        self.fabric_handle().send(envelope)
    }

    /// Drives the endpoint for up to `timeout`: responses to outstanding
    /// requests are completed internally; the first request or one-way
    /// message is returned for dispatch. `Ok(None)` means either the
    /// timeout elapsed quietly or progress was made on responses only —
    /// mirroring `HG_Progress`, which returns as soon as progress happens.
    pub fn progress(&self, timeout: Duration) -> Result<Option<Incoming>, MercuryError> {
        use crossbeam::channel::TryRecvError;
        let deadline = std::time::Instant::now() + timeout;
        let mut made_progress = false;
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(MercuryError::LocalShutdown);
            }
            let envelope = if made_progress {
                // Already completed at least one response: drain without
                // blocking and return.
                match self.mailbox.try_recv() {
                    Ok(env) => env,
                    Err(TryRecvError::Empty) => return Ok(None),
                    Err(TryRecvError::Disconnected) => return Err(MercuryError::LocalShutdown),
                }
            } else {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                match self.mailbox.recv_timeout(remaining) {
                    Ok(env) => env,
                    Err(RecvTimeoutError::Timeout) => return Ok(None),
                    Err(RecvTimeoutError::Disconnected) => return Err(MercuryError::LocalShutdown),
                }
            };
            match envelope.message {
                Message::Response(resp) => {
                    if let Some(waiter) = self.pending.lock().remove(&resp.xid) {
                        let _ = waiter.send(resp);
                    }
                    // Responses never surface to the caller; drain whatever
                    // else is queued and then report progress.
                    made_progress = true;
                }
                Message::Request(req) => {
                    return Ok(Some(Incoming::Request(RequestInfo {
                        source: Arc::new(envelope.source),
                        rpc_id: req.rpc_id,
                        provider_id: req.provider_id,
                        xid: req.xid,
                        context: CallContext {
                            parent_rpc_id: req.parent_rpc_id,
                            parent_provider_id: req.parent_provider_id,
                            deadline: req.deadline,
                        },
                        payload: req.payload,
                    })));
                }
                Message::OneWay(ow) => {
                    return Ok(Some(Incoming::OneWay(OneWayInfo {
                        source: Arc::new(envelope.source),
                        rpc_id: ow.rpc_id,
                        provider_id: ow.provider_id,
                        payload: ow.payload,
                    })));
                }
            }
        }
    }

    /// Exposes an in-memory buffer for bulk access by remote peers.
    pub fn expose_bulk(&self, buffer: Arc<Mutex<Vec<u8>>>, access: BulkAccess) -> BulkHandle {
        self.fabric.bulk.expose(&self.addr, buffer, access)
    }

    /// Exposes a file region for bulk access by remote peers.
    pub fn expose_bulk_file(
        &self,
        path: impl Into<std::path::PathBuf>,
        size: usize,
        access: BulkAccess,
    ) -> std::io::Result<BulkHandle> {
        self.fabric.bulk.expose_file(&self.addr, path, size, access)
    }

    /// Revokes a bulk registration made by this endpoint.
    pub fn unexpose_bulk(&self, handle: &BulkHandle) {
        self.fabric.bulk.unexpose(handle);
    }

    fn bulk_check_reachable(&self, remote: &BulkHandle) -> Result<(), MercuryError> {
        use crate::fault::FaultDecision;
        let (decision, _) = self.fabric.faults.decide(&self.addr, &remote.owner);
        if decision == FaultDecision::Drop {
            // RDMA to an unreachable peer surfaces as a timeout in real
            // deployments; we fail fast but with the same error class.
            return Err(MercuryError::Timeout);
        }
        Ok(())
    }

    fn charge_bulk_time(&self, remote: &BulkHandle, len: usize) {
        let delay = self.fabric_handle().bulk_delay(&self.addr, &remote.owner, len);
        precise_sleep(delay);
    }

    /// Pulls `len` bytes from `remote[remote_offset..]` into
    /// `local[local_offset..]` (both must be registered). Charges the
    /// modeled transfer time against the calling thread, like a blocking
    /// `margo_bulk_transfer`.
    pub fn bulk_pull(
        &self,
        remote: &BulkHandle,
        remote_offset: usize,
        local: &BulkHandle,
        local_offset: usize,
        len: usize,
    ) -> Result<(), MercuryError> {
        self.ensure_open()?;
        self.bulk_check_reachable(remote)?;
        let data = self.fabric.bulk.read(remote.id, remote_offset, len)?;
        self.fabric.bulk.write(local.id, local_offset, &data)?;
        self.charge_bulk_time(remote, len);
        Ok(())
    }

    /// Pushes `len` bytes from `local[local_offset..]` into
    /// `remote[remote_offset..]`.
    pub fn bulk_push(
        &self,
        local: &BulkHandle,
        local_offset: usize,
        remote: &BulkHandle,
        remote_offset: usize,
        len: usize,
    ) -> Result<(), MercuryError> {
        self.ensure_open()?;
        self.bulk_check_reachable(remote)?;
        let data = self.fabric.bulk.read(local.id, local_offset, len)?;
        self.fabric.bulk.write(remote.id, remote_offset, &data)?;
        self.charge_bulk_time(remote, len);
        Ok(())
    }

    /// Marks the endpoint closed locally and tells the fabric to drop
    /// traffic addressed to it — unless a newer endpoint has since been
    /// registered at the same address (a restarted process).
    pub fn shutdown(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        self.fabric_handle().kill_if_owner(&self.addr, self.uid);
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        if !self.closed.load(Ordering::Acquire) {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use crate::netmodel::NetworkModel;

    fn pair(fabric: &Fabric) -> (Endpoint, Endpoint) {
        (fabric.register(Address::tcp("n1", 1)), fabric.register(Address::tcp("n2", 1)))
    }

    /// Serves `count` requests on `server` by echoing the payload back.
    fn echo_server(server: &Endpoint, count: usize) {
        for _ in 0..count {
            let incoming = server.progress(Duration::from_secs(5)).unwrap().unwrap();
            if let Incoming::Request(req) = incoming {
                let payload = req.payload.clone();
                server.respond(&req, ResponseStatus::Ok, payload).unwrap();
            }
        }
    }

    #[test]
    fn request_response_roundtrip() {
        let fabric = Fabric::new();
        let (client, server) = pair(&fabric);
        let pending = client
            .send_request(
                server.address(),
                42,
                0,
                CallContext::TOP_LEVEL,
                Bytes::from_static(b"ping"),
            )
            .unwrap();

        std::thread::scope(|s| {
            s.spawn(|| echo_server(&server, 1));
            // The client needs its own progress to complete the pending
            // request; run it here.
            let incoming = client.progress(Duration::from_secs(5)).unwrap();
            assert!(incoming.is_none(), "response should be consumed internally");
            let resp = pending.wait(Duration::from_secs(1)).unwrap();
            assert_eq!(resp.status, ResponseStatus::Ok);
            assert_eq!(&resp.payload[..], b"ping");
        });
    }

    #[test]
    fn request_to_dead_endpoint_times_out() {
        let fabric = Fabric::new();
        let (client, server) = pair(&fabric);
        let dest = server.address().clone();
        server.shutdown();
        let pending = client
            .send_request(&dest, 1, 0, CallContext::TOP_LEVEL, Bytes::new())
            .unwrap();
        let err = pending.wait(Duration::from_millis(50)).unwrap_err();
        assert_eq!(err, MercuryError::Timeout);
    }

    #[test]
    fn oneway_delivery() {
        let fabric = Fabric::new();
        let (client, server) = pair(&fabric);
        client.send_oneway(server.address(), 7, 3, Bytes::from_static(b"note")).unwrap();
        let incoming = server.progress(Duration::from_secs(1)).unwrap().unwrap();
        match incoming {
            Incoming::OneWay(ow) => {
                assert_eq!(ow.rpc_id, 7);
                assert_eq!(ow.provider_id, 3);
                assert_eq!(&ow.payload[..], b"note");
                assert_eq!(&*ow.source, client.address());
            }
            other => panic!("expected OneWay, got {other:?}"),
        }
    }

    #[test]
    fn context_propagates_to_server() {
        let fabric = Fabric::new();
        let (client, server) = pair(&fabric);
        let ctx = CallContext { parent_rpc_id: 99, parent_provider_id: 4, deadline: None };
        let _pending =
            client.send_request(server.address(), 1, 0, ctx, Bytes::new()).unwrap();
        let incoming = server.progress(Duration::from_secs(1)).unwrap().unwrap();
        match incoming {
            Incoming::Request(req) => assert_eq!(req.context, ctx),
            other => panic!("expected Request, got {other:?}"),
        }
    }

    #[test]
    fn progress_timeout_returns_none() {
        let fabric = Fabric::new();
        let (_client, server) = pair(&fabric);
        assert!(server.progress(Duration::from_millis(10)).unwrap().is_none());
    }

    #[test]
    fn closed_endpoint_errors_locally() {
        let fabric = Fabric::new();
        let (client, server) = pair(&fabric);
        client.shutdown();
        let Err(err) =
            client.send_request(server.address(), 1, 0, CallContext::TOP_LEVEL, Bytes::new())
        else {
            panic!("send on closed endpoint should fail")
        };
        assert_eq!(err, MercuryError::LocalShutdown);
        assert_eq!(client.progress(Duration::ZERO).unwrap_err(), MercuryError::LocalShutdown);
    }

    #[test]
    fn bulk_pull_moves_data() {
        let fabric = Fabric::new();
        let (client, server) = pair(&fabric);
        let remote_buf = Arc::new(Mutex::new((0u8..100).collect::<Vec<_>>()));
        let remote = server.expose_bulk(Arc::clone(&remote_buf), BulkAccess::ReadOnly);
        let local_buf = Arc::new(Mutex::new(vec![0u8; 50]));
        let local = client.expose_bulk(Arc::clone(&local_buf), BulkAccess::ReadWrite);
        client.bulk_pull(&remote, 10, &local, 0, 50).unwrap();
        assert_eq!(&local_buf.lock()[..5], &[10, 11, 12, 13, 14]);
    }

    #[test]
    fn bulk_push_moves_data() {
        let fabric = Fabric::new();
        let (client, server) = pair(&fabric);
        let remote_buf = Arc::new(Mutex::new(vec![0u8; 10]));
        let remote = server.expose_bulk(Arc::clone(&remote_buf), BulkAccess::WriteOnly);
        let local_buf = Arc::new(Mutex::new(vec![5u8; 10]));
        let local = client.expose_bulk(Arc::clone(&local_buf), BulkAccess::ReadOnly);
        client.bulk_push(&local, 0, &remote, 0, 10).unwrap();
        assert_eq!(*remote_buf.lock(), vec![5u8; 10]);
    }

    #[test]
    fn bulk_to_partitioned_peer_fails() {
        let fabric = Fabric::new();
        let (client, server) = pair(&fabric);
        let remote = server.expose_bulk(Arc::new(Mutex::new(vec![0u8; 4])), BulkAccess::ReadWrite);
        let local = client.expose_bulk(Arc::new(Mutex::new(vec![0u8; 4])), BulkAccess::ReadWrite);
        fabric.faults().set_partition(&[vec!["n1".into()], vec!["n2".into()]]);
        let err = client.bulk_pull(&remote, 0, &local, 0, 4).unwrap_err();
        assert_eq!(err, MercuryError::Timeout);
    }

    #[test]
    fn bulk_transfer_charges_modeled_time() {
        let fabric = Fabric::new();
        fabric.set_model(NetworkModel {
            inter_node: crate::netmodel::LinkParams {
                latency_us: 0.0,
                bandwidth_gib_s: 1.0, // 1 MiB at 1 GiB/s ≈ 0.98 ms
                jitter_frac: 0.0,
            },
            ..NetworkModel::instant()
        });
        let (client, server) = pair(&fabric);
        let size = 1 << 20;
        let remote = server.expose_bulk(Arc::new(Mutex::new(vec![1u8; size])), BulkAccess::ReadOnly);
        let local = client.expose_bulk(Arc::new(Mutex::new(vec![0u8; size])), BulkAccess::ReadWrite);
        let t0 = std::time::Instant::now();
        client.bulk_pull(&remote, 0, &local, 0, size).unwrap();
        assert!(t0.elapsed() >= Duration::from_micros(900));
    }
}
