//! Error type for fabric operations.

use std::fmt;

/// Errors surfaced by the simulated fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MercuryError {
    /// The destination address was never registered with the fabric.
    AddressUnknown(String),
    /// The destination endpoint existed but has been shut down or crashed.
    /// Note: crashed endpoints usually *silently* swallow traffic (like a
    /// dead node); this variant is only returned by operations that are
    /// documented to check liveness eagerly.
    EndpointDown(String),
    /// A request did not receive a response within its timeout.
    Timeout,
    /// The local endpoint was shut down while the operation was in flight.
    LocalShutdown,
    /// The remote handler answered with an application-level error.
    Remote(String),
    /// A bulk-handle lookup failed (unknown id or revoked registration).
    BulkHandleInvalid(u64),
    /// A bulk transfer addressed bytes outside the registered region.
    BulkOutOfRange { offset: usize, len: usize, size: usize },
    /// The address string could not be parsed.
    BadAddress(String),
}

impl fmt::Display for MercuryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MercuryError::AddressUnknown(a) => write!(f, "unknown address: {a}"),
            MercuryError::EndpointDown(a) => write!(f, "endpoint down: {a}"),
            MercuryError::Timeout => write!(f, "operation timed out"),
            MercuryError::LocalShutdown => write!(f, "local endpoint shut down"),
            MercuryError::Remote(msg) => write!(f, "remote error: {msg}"),
            MercuryError::BulkHandleInvalid(id) => write!(f, "invalid bulk handle {id}"),
            MercuryError::BulkOutOfRange { offset, len, size } => {
                write!(f, "bulk access [{offset}, {}) outside region of {size} bytes", offset + len)
            }
            MercuryError::BadAddress(a) => write!(f, "malformed address: {a}"),
        }
    }
}

impl std::error::Error for MercuryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MercuryError::BulkOutOfRange { offset: 10, len: 20, size: 16 };
        assert!(e.to_string().contains("[10, 30)"));
        assert!(MercuryError::Timeout.to_string().contains("timed out"));
    }
}
