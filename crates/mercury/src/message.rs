//! Wire-level message types exchanged through the fabric.
//!
//! A [`Message`] is either a request (expects a correlated response), a
//! response, or a one-way notification. Payloads are opaque byte buffers;
//! argument encoding is the business of upper layers (`mochi-margo`
//! serializes RPC inputs/outputs, mirroring Mercury's proc/serialization
//! split).

use std::time::Instant;

use bytes::Bytes;

use crate::address::Address;

/// Status of a response as seen by the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseStatus {
    /// Handler completed and produced the payload.
    Ok,
    /// Handler (or dispatcher) failed; the string is an error description.
    Error(String),
    /// No handler was registered for the requested RPC id / provider id.
    NoHandler,
}

/// Body of a request message.
#[derive(Debug, Clone)]
pub struct RequestBody {
    /// Identifies the RPC (hash of its name, Mercury-style).
    pub rpc_id: u64,
    /// Identifies the provider within the destination process.
    pub provider_id: u16,
    /// Correlation id; unique per outstanding request of the source.
    pub xid: u64,
    /// Calling context: the RPC id of the parent RPC, if this request was
    /// issued from within another handler (Listing 1 reports these).
    pub parent_rpc_id: u64,
    /// Calling context: provider id of the parent RPC.
    pub parent_provider_id: u16,
    /// Absolute deadline of the call chain, if one is in force. Carried
    /// in-memory (the simulated fabric shares one clock domain); a real
    /// transport would ship remaining-microseconds instead.
    pub deadline: Option<Instant>,
    /// Serialized input argument.
    pub payload: Bytes,
}

/// Body of a response message.
#[derive(Debug, Clone)]
pub struct ResponseBody {
    /// Correlation id copied from the request.
    pub xid: u64,
    /// Transport-visible status.
    pub status: ResponseStatus,
    /// Serialized output argument (empty on error).
    pub payload: Bytes,
}

/// Body of a one-way notification (no response expected).
#[derive(Debug, Clone)]
pub struct OneWayBody {
    /// Identifies the RPC (hash of its name).
    pub rpc_id: u64,
    /// Identifies the provider within the destination process.
    pub provider_id: u16,
    /// Serialized payload.
    pub payload: Bytes,
}

/// A message variant.
#[derive(Debug, Clone)]
pub enum Message {
    /// Expects a [`Message::Response`] with the same `xid`.
    Request(RequestBody),
    /// Response to an earlier request.
    Response(ResponseBody),
    /// Fire-and-forget notification.
    OneWay(OneWayBody),
}

impl Message {
    /// Payload size in bytes (used by the bandwidth model).
    pub fn payload_len(&self) -> usize {
        match self {
            Message::Request(r) => r.payload.len(),
            Message::Response(r) => r.payload.len(),
            Message::OneWay(o) => o.payload.len(),
        }
    }
}

/// A message together with its source and destination addresses.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender address.
    pub source: Address,
    /// Destination address.
    pub dest: Address,
    /// The message.
    pub message: Message,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_len_matches() {
        let m = Message::Request(RequestBody {
            rpc_id: 1,
            provider_id: 2,
            xid: 3,
            parent_rpc_id: u64::MAX,
            parent_provider_id: u16::MAX,
            deadline: None,
            payload: Bytes::from_static(b"hello"),
        });
        assert_eq!(m.payload_len(), 5);
        let m = Message::OneWay(OneWayBody { rpc_id: 1, provider_id: 0, payload: Bytes::new() });
        assert_eq!(m.payload_len(), 0);
    }
}
