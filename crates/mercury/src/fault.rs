//! Fault injection for the simulated fabric.
//!
//! Resilience is one of the paper's four dynamic-service requirements
//! (§2.3) and its experiments need controllable failures. The
//! [`FaultPlane`] sits on the fabric's send path and can:
//!
//! * drop messages on a link with a configurable probability,
//! * add extra delay to a link,
//! * partition the fabric into groups that cannot reach each other,
//! * blackhole individual addresses (a "crashed" process whose peers only
//!   notice through timeouts — exactly how SWIM and Raft experience real
//!   node deaths).
//!
//! All randomness is drawn from a seeded RNG so failure schedules replay
//! deterministically.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use parking_lot::Mutex;

use mochi_util::SeededRng;

use crate::address::Address;

/// A deterministic, message-count-driven fault script on a directed link.
///
/// Scripts replay identically regardless of RNG seed: they are driven by
/// the ordinal of each message crossing the link, which makes them the
/// right tool for reproducing exact failure sequences (retry tests,
/// breaker threshold tests) where probabilistic drops are too blunt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkScript {
    /// Drop the first `n` messages on the link, deliver everything after.
    FailFirst(u64),
    /// Repeating cycle: drop `down` messages, then deliver `up` messages.
    Flap {
        /// Messages dropped at the start of each cycle.
        down: u64,
        /// Messages delivered after the down phase of each cycle.
        up: u64,
    },
    /// Every `period`-th message (1-based) incurs `spike` extra delay.
    DelaySpike {
        /// Spike cadence in messages; 0 disables the script.
        period: u64,
        /// Extra delay charged on spiking messages.
        spike: Duration,
    },
}

impl LinkScript {
    /// Applies the script to the `ordinal`-th message (1-based) on the
    /// link; returns whether to drop it and any extra delay.
    fn apply(&self, ordinal: u64) -> (bool, Duration) {
        match *self {
            LinkScript::FailFirst(n) => (ordinal <= n, Duration::ZERO),
            LinkScript::Flap { down, up } => {
                let cycle = down + up;
                if cycle == 0 {
                    return (false, Duration::ZERO);
                }
                ((ordinal - 1) % cycle < down, Duration::ZERO)
            }
            LinkScript::DelaySpike { period, spike } => {
                if period == 0 {
                    return (false, Duration::ZERO);
                }
                (false, if ordinal % period == 0 { spike } else { Duration::ZERO })
            }
        }
    }
}

/// Per-directed-link fault configuration.
#[derive(Debug, Clone, Default)]
struct LinkFaults {
    drop_probability: f64,
    extra_delay: Duration,
    /// Deterministic scripts, all evaluated against the same per-rule
    /// message counter; any script voting "drop" drops the message and
    /// delay spikes accumulate.
    scripts: Vec<LinkScript>,
    /// Messages that have consulted this rule so far.
    seen: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// Faults keyed by (source host, dest host); `None` host = wildcard.
    links: HashMap<(Option<String>, Option<String>), LinkFaults>,
    /// Host → partition group id. Hosts in different groups can't talk.
    /// Hosts absent from the map are in the implicit group `usize::MAX`.
    partition: HashMap<String, usize>,
    /// Addresses whose traffic (in and out) is silently dropped.
    blackholes: HashSet<Address>,
    rng: Option<SeededRng>,
}

/// Decision made for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver after the network-model delay (plus `extra`).
    Deliver,
    /// Silently drop the message.
    Drop,
}

/// Shared fault-injection state, cloneable across the fabric.
#[derive(Debug, Default)]
pub struct FaultPlane {
    inner: Mutex<Inner>,
}

impl FaultPlane {
    /// Creates a fault plane with no faults configured.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the RNG used for probabilistic drops. Without one, drop
    /// probabilities of neither 0 nor 1 round to "always deliver".
    pub fn set_seed(&self, seed: u64) {
        self.inner.lock().rng = Some(SeededRng::new(seed));
    }

    /// Sets the drop probability for messages from `source` host to
    /// `dest` host. `None` acts as a wildcard.
    pub fn set_drop_probability(&self, source: Option<&str>, dest: Option<&str>, p: f64) {
        let mut inner = self.inner.lock();
        let key = (source.map(str::to_string), dest.map(str::to_string));
        inner.links.entry(key).or_default().drop_probability = p.clamp(0.0, 1.0);
    }

    /// Adds a fixed extra delay to messages from `source` host to `dest`
    /// host. `None` acts as a wildcard.
    pub fn set_extra_delay(&self, source: Option<&str>, dest: Option<&str>, delay: Duration) {
        let mut inner = self.inner.lock();
        let key = (source.map(str::to_string), dest.map(str::to_string));
        inner.links.entry(key).or_default().extra_delay = delay;
    }

    /// Appends a deterministic [`LinkScript`] to the rule for messages
    /// from `source` host to `dest` host (`None` = wildcard). Scripts on
    /// the same rule share one message counter and compose: any script
    /// voting "drop" drops, delay spikes add up.
    pub fn push_script(&self, source: Option<&str>, dest: Option<&str>, script: LinkScript) {
        let mut inner = self.inner.lock();
        let key = (source.map(str::to_string), dest.map(str::to_string));
        inner.links.entry(key).or_default().scripts.push(script);
    }

    /// Drops all scripts (and resets the message counter) on one rule.
    pub fn clear_scripts(&self, source: Option<&str>, dest: Option<&str>) {
        let mut inner = self.inner.lock();
        let key = (source.map(str::to_string), dest.map(str::to_string));
        if let Some(faults) = inner.links.get_mut(&key) {
            faults.scripts.clear();
            faults.seen = 0;
        }
    }

    /// Partitions the fabric: hosts listed in `groups[i]` can only reach
    /// hosts in the same group. Hosts not listed can reach each other but
    /// nobody inside a group.
    pub fn set_partition(&self, groups: &[Vec<String>]) {
        let mut inner = self.inner.lock();
        inner.partition.clear();
        for (gid, group) in groups.iter().enumerate() {
            for host in group {
                inner.partition.insert(host.clone(), gid);
            }
        }
    }

    /// Removes any partition.
    pub fn heal_partition(&self) {
        self.inner.lock().partition.clear();
    }

    /// Blackholes `addr`: all traffic to and from it is dropped, which is
    /// how peers experience a crashed process.
    pub fn blackhole(&self, addr: &Address) {
        self.inner.lock().blackholes.insert(addr.clone());
    }

    /// Removes a blackhole (the process "recovered").
    pub fn unblackhole(&self, addr: &Address) {
        self.inner.lock().blackholes.remove(addr);
    }

    /// Clears all configured faults.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.links.clear();
        inner.partition.clear();
        inner.blackholes.clear();
    }

    /// Decides the fate of a message and returns any extra delay.
    pub fn decide(&self, source: &Address, dest: &Address) -> (FaultDecision, Duration) {
        let mut inner = self.inner.lock();

        if inner.blackholes.contains(source) || inner.blackholes.contains(dest) {
            return (FaultDecision::Drop, Duration::ZERO);
        }

        let sg = inner.partition.get(source.host()).copied().unwrap_or(usize::MAX);
        let dg = inner.partition.get(dest.host()).copied().unwrap_or(usize::MAX);
        if sg != dg {
            return (FaultDecision::Drop, Duration::ZERO);
        }

        // Most specific matching rule wins: (s,d), (s,*), (*,d), (*,*).
        let keys = [
            (Some(source.host().to_string()), Some(dest.host().to_string())),
            (Some(source.host().to_string()), None),
            (None, Some(dest.host().to_string())),
            (None, None),
        ];
        let inner = &mut *inner;
        let mut matched: Option<&mut LinkFaults> = None;
        for key in keys {
            if inner.links.contains_key(&key) {
                matched = inner.links.get_mut(&key);
                break;
            }
        }
        let Some(faults) = matched else {
            return (FaultDecision::Deliver, Duration::ZERO);
        };

        // Scripts first: they are deterministic in the message ordinal and
        // must count every message that consults this rule, including ones
        // the probabilistic stage would also have dropped.
        faults.seen += 1;
        let mut extra = faults.extra_delay;
        let mut scripted_drop = false;
        for script in &faults.scripts {
            let (drop, spike) = script.apply(faults.seen);
            scripted_drop |= drop;
            extra += spike;
        }
        if scripted_drop {
            return (FaultDecision::Drop, Duration::ZERO);
        }

        if faults.drop_probability >= 1.0 {
            return (FaultDecision::Drop, Duration::ZERO);
        }
        if faults.drop_probability > 0.0 {
            let p = faults.drop_probability;
            let dropped = match inner.rng.as_mut() {
                Some(rng) => rng.chance(p),
                None => false,
            };
            if dropped {
                return (FaultDecision::Drop, Duration::ZERO);
            }
        }
        (FaultDecision::Deliver, extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(host: &str) -> Address {
        Address::tcp(host, 1)
    }

    #[test]
    fn default_delivers_everything() {
        let f = FaultPlane::new();
        let (d, extra) = f.decide(&addr("a"), &addr("b"));
        assert_eq!(d, FaultDecision::Deliver);
        assert_eq!(extra, Duration::ZERO);
    }

    #[test]
    fn full_drop_on_specific_link_only() {
        let f = FaultPlane::new();
        f.set_drop_probability(Some("a"), Some("b"), 1.0);
        assert_eq!(f.decide(&addr("a"), &addr("b")).0, FaultDecision::Drop);
        // Reverse direction unaffected.
        assert_eq!(f.decide(&addr("b"), &addr("a")).0, FaultDecision::Deliver);
        assert_eq!(f.decide(&addr("a"), &addr("c")).0, FaultDecision::Deliver);
    }

    #[test]
    fn wildcard_rules_apply() {
        let f = FaultPlane::new();
        f.set_drop_probability(None, Some("sink"), 1.0);
        assert_eq!(f.decide(&addr("x"), &addr("sink")).0, FaultDecision::Drop);
        assert_eq!(f.decide(&addr("x"), &addr("y")).0, FaultDecision::Deliver);
    }

    #[test]
    fn probabilistic_drop_is_seeded_and_roughly_calibrated() {
        let f = FaultPlane::new();
        f.set_seed(1234);
        f.set_drop_probability(Some("a"), Some("b"), 0.3);
        let drops = (0..10_000)
            .filter(|_| f.decide(&addr("a"), &addr("b")).0 == FaultDecision::Drop)
            .count();
        assert!((2700..3300).contains(&drops), "drops={drops}");
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let f = FaultPlane::new();
        f.set_partition(&[vec!["a".into(), "b".into()], vec!["c".into()]]);
        assert_eq!(f.decide(&addr("a"), &addr("b")).0, FaultDecision::Deliver);
        assert_eq!(f.decide(&addr("a"), &addr("c")).0, FaultDecision::Drop);
        assert_eq!(f.decide(&addr("c"), &addr("b")).0, FaultDecision::Drop);
        // Unlisted hosts form their own implicit group...
        assert_eq!(f.decide(&addr("x"), &addr("y")).0, FaultDecision::Deliver);
        // ...separate from listed ones.
        assert_eq!(f.decide(&addr("x"), &addr("a")).0, FaultDecision::Drop);
        f.heal_partition();
        assert_eq!(f.decide(&addr("a"), &addr("c")).0, FaultDecision::Deliver);
    }

    #[test]
    fn blackhole_swallows_both_directions() {
        let f = FaultPlane::new();
        let dead = addr("dead");
        f.blackhole(&dead);
        assert_eq!(f.decide(&dead, &addr("b")).0, FaultDecision::Drop);
        assert_eq!(f.decide(&addr("b"), &dead).0, FaultDecision::Drop);
        f.unblackhole(&dead);
        assert_eq!(f.decide(&addr("b"), &dead).0, FaultDecision::Deliver);
    }

    #[test]
    fn extra_delay_reported() {
        let f = FaultPlane::new();
        f.set_extra_delay(Some("a"), None, Duration::from_millis(5));
        let (d, extra) = f.decide(&addr("a"), &addr("b"));
        assert_eq!(d, FaultDecision::Deliver);
        assert_eq!(extra, Duration::from_millis(5));
    }

    #[test]
    fn clear_resets_everything() {
        let f = FaultPlane::new();
        f.blackhole(&addr("dead"));
        f.set_partition(&[vec!["a".into()], vec!["b".into()]]);
        f.set_drop_probability(None, None, 1.0);
        f.clear();
        assert_eq!(f.decide(&addr("a"), &addr("b")).0, FaultDecision::Deliver);
    }

    #[test]
    fn specific_link_beats_wildcards() {
        let f = FaultPlane::new();
        // Catch-all drops everything, but the exact (a,b) rule delivers.
        f.set_drop_probability(None, None, 1.0);
        f.set_drop_probability(Some("a"), None, 1.0);
        f.set_drop_probability(None, Some("b"), 1.0);
        f.set_drop_probability(Some("a"), Some("b"), 0.0);
        assert_eq!(f.decide(&addr("a"), &addr("b")).0, FaultDecision::Deliver);
        // (a,*) outranks (*,b) and (*,*) for other destinations...
        assert_eq!(f.decide(&addr("a"), &addr("c")).0, FaultDecision::Drop);
        // ...and (*,b) outranks (*,*) for other sources.
        assert_eq!(f.decide(&addr("c"), &addr("b")).0, FaultDecision::Drop);
        assert_eq!(f.decide(&addr("c"), &addr("d")).0, FaultDecision::Drop);
    }

    #[test]
    fn partition_and_blackhole_compose() {
        let f = FaultPlane::new();
        f.set_partition(&[vec!["a".into(), "b".into()], vec!["c".into()]]);
        f.blackhole(&addr("b"));
        // Same partition group, but b is blackholed.
        assert_eq!(f.decide(&addr("a"), &addr("b")).0, FaultDecision::Drop);
        // Unblackholing does not heal the partition...
        f.unblackhole(&addr("b"));
        assert_eq!(f.decide(&addr("a"), &addr("b")).0, FaultDecision::Deliver);
        assert_eq!(f.decide(&addr("b"), &addr("c")).0, FaultDecision::Drop);
        // ...and healing the partition does not resurrect a blackhole.
        f.blackhole(&addr("c"));
        f.heal_partition();
        assert_eq!(f.decide(&addr("b"), &addr("c")).0, FaultDecision::Drop);
    }

    #[test]
    fn identical_seed_replays_identical_drop_decisions() {
        let run = |seed: u64| -> Vec<FaultDecision> {
            let f = FaultPlane::new();
            f.set_seed(seed);
            f.set_drop_probability(Some("a"), Some("b"), 0.4);
            f.set_drop_probability(None, Some("c"), 0.2);
            (0..500)
                .map(|i| {
                    if i % 3 == 0 {
                        f.decide(&addr("a"), &addr("b")).0
                    } else {
                        f.decide(&addr("x"), &addr("c")).0
                    }
                })
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn fail_first_script_drops_then_delivers() {
        let f = FaultPlane::new();
        f.push_script(Some("a"), Some("b"), LinkScript::FailFirst(3));
        for _ in 0..3 {
            assert_eq!(f.decide(&addr("a"), &addr("b")).0, FaultDecision::Drop);
        }
        for _ in 0..5 {
            assert_eq!(f.decide(&addr("a"), &addr("b")).0, FaultDecision::Deliver);
        }
        // Other links never consulted the script.
        assert_eq!(f.decide(&addr("b"), &addr("a")).0, FaultDecision::Deliver);
    }

    #[test]
    fn flap_script_cycles() {
        let f = FaultPlane::new();
        f.push_script(Some("a"), Some("b"), LinkScript::Flap { down: 2, up: 3 });
        let pattern: Vec<_> = (0..10).map(|_| f.decide(&addr("a"), &addr("b")).0).collect();
        use FaultDecision::{Deliver as D, Drop as X};
        assert_eq!(pattern, vec![X, X, D, D, D, X, X, D, D, D]);
    }

    #[test]
    fn delay_spike_script_hits_on_period() {
        let f = FaultPlane::new();
        f.set_extra_delay(Some("a"), Some("b"), Duration::from_millis(1));
        f.push_script(
            Some("a"),
            Some("b"),
            LinkScript::DelaySpike { period: 3, spike: Duration::from_millis(10) },
        );
        let delays: Vec<_> = (0..6).map(|_| f.decide(&addr("a"), &addr("b")).1).collect();
        let base = Duration::from_millis(1);
        let spiked = Duration::from_millis(11);
        assert_eq!(delays, vec![base, base, spiked, base, base, spiked]);
    }

    #[test]
    fn scripts_share_counter_and_compose() {
        let f = FaultPlane::new();
        f.push_script(Some("a"), Some("b"), LinkScript::FailFirst(2));
        f.push_script(
            Some("a"),
            Some("b"),
            LinkScript::DelaySpike { period: 4, spike: Duration::from_millis(7) },
        );
        // Messages 1-2 dropped by FailFirst; message 4 spikes.
        assert_eq!(f.decide(&addr("a"), &addr("b")).0, FaultDecision::Drop);
        assert_eq!(f.decide(&addr("a"), &addr("b")).0, FaultDecision::Drop);
        assert_eq!(f.decide(&addr("a"), &addr("b")), (FaultDecision::Deliver, Duration::ZERO));
        assert_eq!(
            f.decide(&addr("a"), &addr("b")),
            (FaultDecision::Deliver, Duration::from_millis(7))
        );
        f.clear_scripts(Some("a"), Some("b"));
        // Counter reset: no drops, no spikes.
        assert_eq!(f.decide(&addr("a"), &addr("b")), (FaultDecision::Deliver, Duration::ZERO));
    }
}
