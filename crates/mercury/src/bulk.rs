//! RDMA-emulating bulk transfers.
//!
//! Mercury exposes large payloads through *bulk handles*: the origin
//! registers a memory region, ships a compact descriptor inside the RPC
//! arguments, and the target pulls/pushes the data with RDMA. We keep the
//! same three-step shape:
//!
//! 1. [`BulkRegistry::expose`] (or [`BulkRegistry::expose_file`]) registers
//!    a region and returns a serializable [`BulkHandle`] descriptor,
//! 2. the descriptor travels inside an RPC payload,
//! 3. the remote side calls [`crate::endpoint::Endpoint::bulk_pull`] /
//!    [`crate::endpoint::Endpoint::bulk_push`], which
//!    move the bytes and charge the modeled transfer time.
//!
//! File-backed regions emulate REMI's mmap-and-RDMA migration path without
//! reading whole files into memory at registration time.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use mochi_util::unique_u64;

use crate::address::Address;
use crate::error::MercuryError;

/// Access rights of a registered region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BulkAccess {
    /// Remote peers may only read (pull from) the region.
    ReadOnly,
    /// Remote peers may only write (push to) the region.
    WriteOnly,
    /// Remote peers may read and write.
    ReadWrite,
}

/// Serializable descriptor of a registered region. This is what travels
/// inside RPC arguments, like a packed `hg_bulk_t`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BulkHandle {
    /// Registry key.
    pub id: u64,
    /// Region size in bytes.
    pub size: usize,
    /// Address of the process that registered the region.
    pub owner: Address,
    /// Access rights granted to remote peers.
    pub access: BulkAccess,
}

enum Storage {
    Memory(Arc<Mutex<Vec<u8>>>),
    File { path: PathBuf },
}

struct Region {
    storage: Storage,
    size: usize,
    access: BulkAccess,
}

/// Registry of exposed regions. One per fabric; in a real deployment each
/// node's NIC plays this role, here a shared map suffices because all
/// simulated processes live in one address space.
pub struct BulkRegistry {
    regions: RwLock<HashMap<u64, Region>>,
}

impl Default for BulkRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl BulkRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self { regions: RwLock::new(HashMap::new()) }
    }

    /// Exposes an in-memory buffer and returns its descriptor. The buffer
    /// is shared: writes through `bulk_push` are visible to the owner.
    pub fn expose(
        &self,
        owner: &Address,
        buffer: Arc<Mutex<Vec<u8>>>,
        access: BulkAccess,
    ) -> BulkHandle {
        let size = buffer.lock().len();
        let id = unique_u64();
        self.regions.write().insert(id, Region { storage: Storage::Memory(buffer), size, access });
        BulkHandle { id, size, owner: owner.clone(), access }
    }

    /// Convenience: exposes an owned byte vector read-only.
    pub fn expose_bytes(&self, owner: &Address, bytes: Vec<u8>) -> BulkHandle {
        self.expose(owner, Arc::new(Mutex::new(bytes)), BulkAccess::ReadOnly)
    }

    /// Exposes a file region (the mmap+RDMA path of REMI). The file must
    /// exist for `ReadOnly`; for writable access it is created/extended to
    /// `size` on first write.
    pub fn expose_file(
        &self,
        owner: &Address,
        path: impl Into<PathBuf>,
        size: usize,
        access: BulkAccess,
    ) -> io::Result<BulkHandle> {
        let path = path.into();
        if access == BulkAccess::ReadOnly {
            let metadata = std::fs::metadata(&path)?;
            if (metadata.len() as usize) < size {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("file {} shorter than exposed size {size}", path.display()),
                ));
            }
        }
        let id = unique_u64();
        self.regions.write().insert(id, Region { storage: Storage::File { path }, size, access });
        Ok(BulkHandle { id, size, owner: owner.clone(), access })
    }

    /// Revokes a registration. Outstanding transfers referencing the id
    /// fail with `BulkHandleInvalid`.
    pub fn unexpose(&self, handle: &BulkHandle) {
        self.regions.write().remove(&handle.id);
    }

    /// Number of live registrations (diagnostics / leak tests).
    pub fn len(&self) -> usize {
        self.regions.read().len()
    }

    /// Whether the registry has no registrations.
    pub fn is_empty(&self) -> bool {
        self.regions.read().is_empty()
    }

    fn check_range(region: &Region, offset: usize, len: usize) -> Result<(), MercuryError> {
        if offset.checked_add(len).is_none_or(|end| end > region.size) {
            return Err(MercuryError::BulkOutOfRange { offset, len, size: region.size });
        }
        Ok(())
    }

    /// Reads `len` bytes at `offset` from the region behind `id`.
    pub(crate) fn read(&self, id: u64, offset: usize, len: usize) -> Result<Vec<u8>, MercuryError> {
        let regions = self.regions.read();
        let region = regions.get(&id).ok_or(MercuryError::BulkHandleInvalid(id))?;
        if region.access == BulkAccess::WriteOnly {
            return Err(MercuryError::Remote("bulk region is write-only".into()));
        }
        Self::check_range(region, offset, len)?;
        match &region.storage {
            Storage::Memory(buf) => Ok(buf.lock()[offset..offset + len].to_vec()),
            Storage::File { path } => {
                use std::os::unix::fs::FileExt;
                let file = OpenOptions::new()
                    .read(true)
                    .open(path)
                    .map_err(|e| MercuryError::Remote(format!("open {}: {e}", path.display())))?;
                let mut out = vec![0u8; len];
                file.read_exact_at(&mut out, offset as u64)
                    .map_err(|e| MercuryError::Remote(format!("read {}: {e}", path.display())))?;
                Ok(out)
            }
        }
    }

    /// Writes `data` at `offset` into the region behind `id`.
    pub(crate) fn write(&self, id: u64, offset: usize, data: &[u8]) -> Result<(), MercuryError> {
        let regions = self.regions.read();
        let region = regions.get(&id).ok_or(MercuryError::BulkHandleInvalid(id))?;
        if region.access == BulkAccess::ReadOnly {
            return Err(MercuryError::Remote("bulk region is read-only".into()));
        }
        Self::check_range(region, offset, data.len())?;
        match &region.storage {
            Storage::Memory(buf) => {
                buf.lock()[offset..offset + data.len()].copy_from_slice(data);
                Ok(())
            }
            Storage::File { path } => {
                use std::os::unix::fs::FileExt;
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(false)
                    .open(path)
                    .map_err(|e| MercuryError::Remote(format!("open {}: {e}", path.display())))?;
                file.write_all_at(data, offset as u64)
                    .map_err(|e| MercuryError::Remote(format!("write {}: {e}", path.display())))?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner() -> Address {
        Address::tcp("n1", 1)
    }

    #[test]
    fn expose_read_roundtrip() {
        let reg = BulkRegistry::new();
        let h = reg.expose_bytes(&owner(), (0u8..100).collect());
        assert_eq!(h.size, 100);
        assert_eq!(reg.read(h.id, 10, 5).unwrap(), vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn write_visible_through_shared_buffer() {
        let reg = BulkRegistry::new();
        let buf = Arc::new(Mutex::new(vec![0u8; 8]));
        let h = reg.expose(&owner(), Arc::clone(&buf), BulkAccess::ReadWrite);
        reg.write(h.id, 2, &[7, 8]).unwrap();
        assert_eq!(*buf.lock(), vec![0, 0, 7, 8, 0, 0, 0, 0]);
    }

    #[test]
    fn access_rights_enforced() {
        let reg = BulkRegistry::new();
        let ro = reg.expose(&owner(), Arc::new(Mutex::new(vec![1, 2, 3])), BulkAccess::ReadOnly);
        let wo = reg.expose(&owner(), Arc::new(Mutex::new(vec![0; 3])), BulkAccess::WriteOnly);
        assert!(reg.write(ro.id, 0, &[9]).is_err());
        assert!(reg.read(wo.id, 0, 1).is_err());
        assert!(reg.read(ro.id, 0, 1).is_ok());
        assert!(reg.write(wo.id, 0, &[9]).is_ok());
    }

    #[test]
    fn out_of_range_rejected() {
        let reg = BulkRegistry::new();
        let h = reg.expose_bytes(&owner(), vec![0; 10]);
        let err = reg.read(h.id, 8, 5).unwrap_err();
        assert!(matches!(err, MercuryError::BulkOutOfRange { .. }));
        // Overflow-safe.
        let err = reg.read(h.id, usize::MAX, 2).unwrap_err();
        assert!(matches!(err, MercuryError::BulkOutOfRange { .. }));
    }

    #[test]
    fn unexpose_invalidates_handle() {
        let reg = BulkRegistry::new();
        let h = reg.expose_bytes(&owner(), vec![1]);
        reg.unexpose(&h);
        assert!(matches!(reg.read(h.id, 0, 1), Err(MercuryError::BulkHandleInvalid(_))));
        assert!(reg.is_empty());
    }

    #[test]
    fn file_region_roundtrip() {
        let dir = mochi_util::TempDir::new("bulk").unwrap();
        let path = dir.path().join("data.bin");
        std::fs::write(&path, (0u8..64).collect::<Vec<_>>()).unwrap();
        let reg = BulkRegistry::new();
        let h = reg.expose_file(&owner(), &path, 64, BulkAccess::ReadOnly).unwrap();
        assert_eq!(reg.read(h.id, 60, 4).unwrap(), vec![60, 61, 62, 63]);

        let out_path = dir.path().join("out.bin");
        let h2 = reg.expose_file(&owner(), &out_path, 64, BulkAccess::WriteOnly).unwrap();
        reg.write(h2.id, 0, &[9u8; 64]).unwrap();
        assert_eq!(std::fs::read(&out_path).unwrap(), vec![9u8; 64]);
    }

    #[test]
    fn file_region_too_short_rejected() {
        let dir = mochi_util::TempDir::new("bulk2").unwrap();
        let path = dir.path().join("short.bin");
        std::fs::write(&path, b"abc").unwrap();
        let reg = BulkRegistry::new();
        assert!(reg.expose_file(&owner(), &path, 10, BulkAccess::ReadOnly).is_err());
    }

    #[test]
    fn handle_serializes() {
        let reg = BulkRegistry::new();
        let h = reg.expose_bytes(&owner(), vec![1, 2, 3]);
        let json = serde_json::to_string(&h).unwrap();
        let back: BulkHandle = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
