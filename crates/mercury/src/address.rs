//! Mercury-style string addresses.
//!
//! Mochi identifies processes by Mercury address strings such as
//! `na+sm://28885-0` (shared memory: pid-index) or
//! `ofi+tcp://node12:5000`. We parse both shapes into a scheme + host +
//! port triple; the host component is what the network model uses to
//! decide whether two endpoints are "on the same node".

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::MercuryError;

/// A parsed Mercury address.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct Address {
    scheme: String,
    host: String,
    port: u32,
}

impl Address {
    /// Builds an address from parts. `scheme` is e.g. `"ofi+tcp"`.
    pub fn new(scheme: impl Into<String>, host: impl Into<String>, port: u32) -> Self {
        Self { scheme: scheme.into(), host: host.into(), port }
    }

    /// Convenience constructor for a simulated node: `ofi+tcp://<node>:<port>`.
    pub fn tcp(node: impl Into<String>, port: u32) -> Self {
        Self::new("ofi+tcp", node, port)
    }

    /// Convenience constructor for a shared-memory address `na+sm://<pid>-<idx>`.
    pub fn sm(pid: u32, index: u32) -> Self {
        Self::new("na+sm", pid.to_string(), index)
    }

    /// The transport scheme (`na+sm`, `ofi+tcp`, `ofi+verbs`, …).
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The host (node name, or pid for `na+sm`).
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The port (or sm index).
    pub fn port(&self) -> u32 {
        self.port
    }

    /// Whether `self` and `other` are on the same node (same host part).
    pub fn same_node(&self, other: &Address) -> bool {
        self.host == other.host
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scheme == "na+sm" {
            write!(f, "{}://{}-{}", self.scheme, self.host, self.port)
        } else {
            write!(f, "{}://{}:{}", self.scheme, self.host, self.port)
        }
    }
}

impl FromStr for Address {
    type Err = MercuryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || MercuryError::BadAddress(s.to_string());
        let (scheme, rest) = s.split_once("://").ok_or_else(bad)?;
        if scheme.is_empty() || rest.is_empty() {
            return Err(bad());
        }
        // `na+sm://pid-idx` uses '-' as separator; everything else ':'.
        let sep = if scheme == "na+sm" { '-' } else { ':' };
        match rest.rsplit_once(sep) {
            Some((host, port)) if !host.is_empty() => {
                let port = port.parse().map_err(|_| bad())?;
                Ok(Address::new(scheme, host, port))
            }
            // Tolerate port-less addresses like `ofi+tcp://node3`.
            _ => Ok(Address::new(scheme, rest, 0)),
        }
    }
}

impl TryFrom<String> for Address {
    type Error = MercuryError;

    fn try_from(s: String) -> Result<Self, Self::Error> {
        s.parse()
    }
}

impl From<Address> for String {
    fn from(a: Address) -> String {
        a.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sm_address() {
        let a: Address = "na+sm://28885-0".parse().unwrap();
        assert_eq!(a.scheme(), "na+sm");
        assert_eq!(a.host(), "28885");
        assert_eq!(a.port(), 0);
        assert_eq!(a.to_string(), "na+sm://28885-0");
    }

    #[test]
    fn parse_tcp_address() {
        let a: Address = "ofi+tcp://node12:5000".parse().unwrap();
        assert_eq!(a.scheme(), "ofi+tcp");
        assert_eq!(a.host(), "node12");
        assert_eq!(a.port(), 5000);
        assert_eq!(a.to_string(), "ofi+tcp://node12:5000");
    }

    #[test]
    fn parse_portless_address() {
        let a: Address = "ofi+verbs://node3".parse().unwrap();
        assert_eq!(a.host(), "node3");
        assert_eq!(a.port(), 0);
    }

    #[test]
    fn reject_malformed() {
        assert!("".parse::<Address>().is_err());
        assert!("no-scheme".parse::<Address>().is_err());
        assert!("://host:1".parse::<Address>().is_err());
        assert!("tcp://".parse::<Address>().is_err());
    }

    #[test]
    fn same_node_compares_hosts() {
        let a = Address::tcp("node1", 1);
        let b = Address::tcp("node1", 2);
        let c = Address::tcp("node2", 1);
        assert!(a.same_node(&b));
        assert!(!a.same_node(&c));
    }

    #[test]
    fn serde_round_trip_as_string() {
        let a = Address::tcp("node7", 1234);
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, "\"ofi+tcp://node7:1234\"");
        let back: Address = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn display_round_trips_through_parse() {
        for s in ["na+sm://1-9", "ofi+tcp://n:42", "x+y://h.q:7"] {
            let a: Address = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
        }
    }
}
