//! Latency/bandwidth model for simulated links.
//!
//! The model classifies each (source, destination) pair into a
//! [`LinkClass`] and applies that class's [`LinkParams`]: a fixed one-way
//! latency, a bandwidth that stretches large payloads, and optional
//! uniform jitter. Defaults are zero-cost (instant delivery) so unit tests
//! run fast; benchmarks install parameters representative of an HPC
//! interconnect (sub-µs shared memory, ~2 µs / 12.5 GB/s fabric).

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::address::Address;

/// Where two endpoints sit relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Same address (a process talking to itself) — Margo turns these into
    /// function calls; we model them as free.
    SelfLoop,
    /// Same host: shared-memory transport.
    IntraNode,
    /// Different hosts: network transport.
    InterNode,
}

/// Parameters of one link class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// One-way base latency in microseconds.
    pub latency_us: f64,
    /// Bandwidth in GiB/s; `f64::INFINITY` disables the size term.
    pub bandwidth_gib_s: f64,
    /// Uniform jitter as a fraction of base latency (0.0 = none).
    pub jitter_frac: f64,
}

impl LinkParams {
    /// Zero-cost link (default for tests).
    pub const fn free() -> Self {
        Self { latency_us: 0.0, bandwidth_gib_s: f64::INFINITY, jitter_frac: 0.0 }
    }

    /// Computes the modeled one-way delay for `payload` bytes, using
    /// `jitter_draw` in `[0,1)` for the jitter term.
    pub fn delay(&self, payload: usize, jitter_draw: f64) -> Duration {
        let mut us = self.latency_us;
        if self.bandwidth_gib_s.is_finite() && self.bandwidth_gib_s > 0.0 {
            let bytes_per_us = self.bandwidth_gib_s * (1u64 << 30) as f64 / 1e6;
            us += payload as f64 / bytes_per_us;
        }
        if self.jitter_frac > 0.0 {
            us += self.latency_us * self.jitter_frac * jitter_draw;
        }
        if us <= 0.0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((us * 1000.0) as u64)
        }
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        Self::free()
    }
}

/// Per-class link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Parameters for intra-node (shared-memory) links.
    pub intra_node: LinkParams,
    /// Parameters for inter-node (fabric) links.
    pub inter_node: LinkParams,
}

impl NetworkModel {
    /// Everything instant: the default for unit tests.
    pub fn instant() -> Self {
        Self::default()
    }

    /// Parameters representative of a modern HPC interconnect: 0.4 µs /
    /// 20 GiB/s shared memory, 2 µs / 12.5 GiB/s across nodes, 10% jitter.
    pub fn hpc() -> Self {
        Self {
            intra_node: LinkParams { latency_us: 0.4, bandwidth_gib_s: 20.0, jitter_frac: 0.1 },
            inter_node: LinkParams { latency_us: 2.0, bandwidth_gib_s: 12.5, jitter_frac: 0.1 },
        }
    }

    /// Parameters exaggerating latency (e.g. a congested or wide-area
    /// link); useful to make timing-sensitive tests deterministic.
    pub fn slow(latency: Duration) -> Self {
        let us = latency.as_secs_f64() * 1e6;
        let p = LinkParams { latency_us: us, bandwidth_gib_s: 1.0, jitter_frac: 0.0 };
        Self { intra_node: p, inter_node: p }
    }

    /// Classifies a (source, destination) pair.
    pub fn classify(source: &Address, dest: &Address) -> LinkClass {
        if source == dest {
            LinkClass::SelfLoop
        } else if source.same_node(dest) {
            LinkClass::IntraNode
        } else {
            LinkClass::InterNode
        }
    }

    /// Modeled one-way delay for `payload` bytes from `source` to `dest`.
    pub fn delay(&self, source: &Address, dest: &Address, payload: usize, jitter_draw: f64) -> Duration {
        match Self::classify(source, dest) {
            LinkClass::SelfLoop => Duration::ZERO,
            LinkClass::IntraNode => self.intra_node.delay(payload, jitter_draw),
            LinkClass::InterNode => self.inter_node.delay(payload, jitter_draw),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_link_is_zero() {
        let p = LinkParams::free();
        assert_eq!(p.delay(1 << 30, 0.5), Duration::ZERO);
    }

    #[test]
    fn latency_term() {
        let p = LinkParams { latency_us: 2.0, bandwidth_gib_s: f64::INFINITY, jitter_frac: 0.0 };
        assert_eq!(p.delay(0, 0.0), Duration::from_nanos(2000));
        // Payload ignored with infinite bandwidth.
        assert_eq!(p.delay(1 << 20, 0.0), Duration::from_nanos(2000));
    }

    #[test]
    fn bandwidth_term_scales_with_size() {
        let p = LinkParams { latency_us: 0.0, bandwidth_gib_s: 1.0, jitter_frac: 0.0 };
        // 1 GiB at 1 GiB/s = 1 s.
        let d = p.delay(1 << 30, 0.0);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-6);
        // 1 MiB at 1 GiB/s ≈ 0.977 ms.
        let d = p.delay(1 << 20, 0.0);
        assert!((d.as_secs_f64() - (1.0 / 1024.0)).abs() < 1e-9);
    }

    #[test]
    fn jitter_adds_bounded_noise() {
        let p = LinkParams { latency_us: 10.0, bandwidth_gib_s: f64::INFINITY, jitter_frac: 0.5 };
        let lo = p.delay(0, 0.0);
        let hi = p.delay(0, 0.999);
        assert_eq!(lo, Duration::from_micros(10));
        assert!(hi > lo && hi < Duration::from_micros(16));
    }

    #[test]
    fn classification() {
        let a = Address::tcp("n1", 1);
        let b = Address::tcp("n1", 2);
        let c = Address::tcp("n2", 1);
        assert_eq!(NetworkModel::classify(&a, &a), LinkClass::SelfLoop);
        assert_eq!(NetworkModel::classify(&a, &b), LinkClass::IntraNode);
        assert_eq!(NetworkModel::classify(&a, &c), LinkClass::InterNode);
    }

    #[test]
    fn hpc_model_orders_links() {
        let m = NetworkModel::hpc();
        let a = Address::tcp("n1", 1);
        let b = Address::tcp("n1", 2);
        let c = Address::tcp("n2", 1);
        let self_d = m.delay(&a, &a, 100, 0.0);
        let intra = m.delay(&a, &b, 100, 0.0);
        let inter = m.delay(&a, &c, 100, 0.0);
        assert_eq!(self_d, Duration::ZERO);
        assert!(intra < inter);
    }
}
