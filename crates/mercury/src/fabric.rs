//! The fabric: an in-process registry of endpoints plus the delivery
//! machinery that applies the network model and fault plane.
//!
//! A [`Fabric`] plays the role of the physical interconnect. Simulated
//! processes register an address and obtain an [`Endpoint`]; messages sent
//! between endpoints pass through [`FaultPlane::decide`] and are delayed
//! according to the [`NetworkModel`] by a dedicated delivery thread, so a
//! sender never blocks on the latency of its own messages.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

use mochi_util::SeededRng;

use crate::address::Address;
use crate::bulk::BulkRegistry;
use crate::endpoint::Endpoint;
use crate::error::MercuryError;
use crate::fault::{FaultDecision, FaultPlane};
use crate::message::Envelope;
use crate::netmodel::NetworkModel;

/// State of a registered address.
enum Slot {
    /// Live endpoint; the `u64` identifies which [`Endpoint`] owns the
    /// slot, so a stale endpoint being dropped cannot kill a successor
    /// registered at the same address.
    Live(Sender<Envelope>, u64),
    /// The endpoint existed but was shut down or crashed: traffic to it is
    /// silently dropped so peers observe timeouts, like a dead node.
    Dead,
}

struct DelayedDelivery {
    due: Instant,
    seq: u64,
    envelope: Envelope,
}

impl PartialEq for DelayedDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedDelivery {}
impl PartialOrd for DelayedDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due.cmp(&other.due).then(self.seq.cmp(&other.seq))
    }
}

#[derive(Default)]
struct SchedulerState {
    heap: BinaryHeap<Reverse<DelayedDelivery>>,
    seq: u64,
    shutdown: bool,
    started: bool,
}

pub(crate) struct FabricInner {
    endpoints: RwLock<HashMap<Address, Slot>>,
    model: RwLock<NetworkModel>,
    pub(crate) faults: FaultPlane,
    pub(crate) bulk: BulkRegistry,
    jitter: Mutex<SeededRng>,
    scheduler: Mutex<SchedulerState>,
    scheduler_cv: Condvar,
    closed: AtomicBool,
}

impl FabricInner {
    fn deliver_now(&self, envelope: Envelope) {
        let endpoints = self.endpoints.read();
        if let Some(Slot::Live(tx, _)) = endpoints.get(&envelope.dest) {
            // A receiver that disappeared between lookup and send is
            // equivalent to a crash: drop silently.
            let _ = tx.send(envelope);
        }
    }

    fn schedule(self: &Arc<Self>, due: Instant, envelope: Envelope) {
        let mut state = self.scheduler.lock();
        if state.shutdown {
            return;
        }
        if !state.started {
            state.started = true;
            let inner = Arc::clone(self);
            std::thread::Builder::new()
                .name("mercury-delivery".into())
                .spawn(move || inner.delivery_loop())
                .expect("spawn delivery thread");
        }
        let seq = state.seq;
        state.seq += 1;
        state.heap.push(Reverse(DelayedDelivery { due, seq, envelope }));
        drop(state);
        self.scheduler_cv.notify_one();
    }

    fn delivery_loop(self: Arc<Self>) {
        let mut state = self.scheduler.lock();
        loop {
            if state.shutdown {
                return;
            }
            let now = Instant::now();
            // Deliver everything due.
            let mut due_now = Vec::new();
            while let Some(Reverse(top)) = state.heap.peek() {
                if top.due <= now {
                    due_now.push(state.heap.pop().unwrap().0.envelope);
                } else {
                    break;
                }
            }
            if !due_now.is_empty() {
                drop(state);
                for envelope in due_now {
                    self.deliver_now(envelope);
                }
                state = self.scheduler.lock();
                continue;
            }
            match state.heap.peek() {
                Some(Reverse(top)) => {
                    let wait = top.due.saturating_duration_since(now);
                    self.scheduler_cv.wait_for(&mut state, wait);
                }
                None => {
                    self.scheduler_cv.wait(&mut state);
                }
            }
        }
    }
}

/// Handle to the simulated interconnect. Cheap to clone.
#[derive(Clone)]
pub struct Fabric {
    pub(crate) inner: Arc<FabricInner>,
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl Fabric {
    /// Creates a fabric with an instant (zero-latency) network model.
    pub fn new() -> Self {
        Self::with_model(NetworkModel::instant())
    }

    /// Creates a fabric with the given network model.
    pub fn with_model(model: NetworkModel) -> Self {
        Self {
            inner: Arc::new(FabricInner {
                endpoints: RwLock::new(HashMap::new()),
                model: RwLock::new(model),
                faults: FaultPlane::new(),
                bulk: BulkRegistry::new(),
                jitter: Mutex::new(SeededRng::new(0xfab1c)),
                scheduler: Mutex::new(SchedulerState::default()),
                scheduler_cv: Condvar::new(),
                closed: AtomicBool::new(false),
            }),
        }
    }

    /// Replaces the network model (affects messages sent afterwards).
    pub fn set_model(&self, model: NetworkModel) {
        *self.inner.model.write() = model;
    }

    /// Current network model.
    pub fn model(&self) -> NetworkModel {
        *self.inner.model.read()
    }

    /// The fault-injection plane.
    pub fn faults(&self) -> &FaultPlane {
        &self.inner.faults
    }

    /// The bulk-region registry (RDMA emulation).
    pub fn bulk(&self) -> &BulkRegistry {
        &self.inner.bulk
    }

    /// Registers `addr` and returns its endpoint. Re-registering a live
    /// address replaces the previous endpoint (which then reads as shut
    /// down); registering over a dead slot resurrects the address, which
    /// is how a restarted process reuses its address.
    pub fn register(&self, addr: Address) -> Endpoint {
        let (tx, rx) = unbounded();
        let uid = mochi_util::unique_u64();
        self.inner.endpoints.write().insert(addr.clone(), Slot::Live(tx, uid));
        Endpoint::new(addr, rx, uid, Arc::clone(&self.inner))
    }

    /// Marks `addr` as crashed: its mailbox is torn down and all traffic
    /// to it is silently dropped from now on.
    pub fn kill(&self, addr: &Address) {
        if let Some(slot) = self.inner.endpoints.write().get_mut(addr) {
            *slot = Slot::Dead;
        }
    }

    /// Like [`Fabric::kill`], but only if the slot is still owned by the
    /// endpoint identified by `uid` — a stale endpoint shutting down must
    /// not take out a successor registered at the same address.
    pub(crate) fn kill_if_owner(&self, addr: &Address, uid: u64) {
        if let Some(slot) = self.inner.endpoints.write().get_mut(addr) {
            if matches!(slot, Slot::Live(_, owner) if *owner == uid) {
                *slot = Slot::Dead;
            }
        }
    }

    /// Whether `addr` is currently registered and live.
    pub fn is_live(&self, addr: &Address) -> bool {
        matches!(self.inner.endpoints.read().get(addr), Some(Slot::Live(..)))
    }

    /// All currently live addresses (diagnostics).
    pub fn live_addresses(&self) -> Vec<Address> {
        self.inner
            .endpoints
            .read()
            .iter()
            .filter(|(_, s)| matches!(s, Slot::Live(..)))
            .map(|(a, _)| a.clone())
            .collect()
    }

    /// Sends `envelope` through the fault plane and network model.
    ///
    /// Returns `Err(AddressUnknown)` only if the destination was *never*
    /// registered — a programming error. Messages to dead endpoints are
    /// silently dropped (peers must rely on timeouts, like on real HPC
    /// fabrics where a dead node just stops answering).
    pub fn send(&self, envelope: Envelope) -> Result<(), MercuryError> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(MercuryError::LocalShutdown);
        }
        {
            let endpoints = self.inner.endpoints.read();
            match endpoints.get(&envelope.dest) {
                None => return Err(MercuryError::AddressUnknown(envelope.dest.to_string())),
                Some(Slot::Dead) => return Ok(()), // silent drop
                Some(Slot::Live(..)) => {}
            }
        }
        let (decision, extra) = self.inner.faults.decide(&envelope.source, &envelope.dest);
        if decision == FaultDecision::Drop {
            return Ok(());
        }
        let jitter_draw = self.inner.jitter.lock().next_f64();
        let delay = self
            .inner
            .model
            .read()
            .delay(&envelope.source, &envelope.dest, envelope.message.payload_len(), jitter_draw)
            + extra;
        if delay.is_zero() {
            self.inner.deliver_now(envelope);
        } else {
            self.inner.schedule(Instant::now() + delay, envelope);
        }
        Ok(())
    }

    /// Modeled transfer time for `len` bulk bytes between two addresses.
    pub(crate) fn bulk_delay(&self, a: &Address, b: &Address, len: usize) -> Duration {
        let jitter_draw = self.inner.jitter.lock().next_f64();
        self.inner.model.read().delay(a, b, len, jitter_draw)
    }

    /// Shuts down the fabric: the delivery thread exits and in-flight
    /// delayed messages are discarded. Endpoints read as shut down.
    pub fn shutdown(&self) {
        self.inner.closed.store(true, Ordering::Release);
        {
            let mut state = self.inner.scheduler.lock();
            state.shutdown = true;
            state.heap.clear();
        }
        self.inner.scheduler_cv.notify_all();
        let mut endpoints = self.inner.endpoints.write();
        for slot in endpoints.values_mut() {
            *slot = Slot::Dead;
        }
    }
}

impl Drop for FabricInner {
    fn drop(&mut self) {
        let mut state = self.scheduler.lock();
        state.shutdown = true;
        drop(state);
        self.scheduler_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, OneWayBody};
    use bytes::Bytes;

    fn oneway(source: &Address, dest: &Address, payload: &'static [u8]) -> Envelope {
        Envelope {
            source: source.clone(),
            dest: dest.clone(),
            message: Message::OneWay(OneWayBody {
                rpc_id: 1,
                provider_id: 0,
                payload: Bytes::from_static(payload),
            }),
        }
    }

    #[test]
    fn register_and_deliver_instant() {
        let fabric = Fabric::new();
        let a = Address::tcp("n1", 1);
        let b = Address::tcp("n2", 1);
        let _ea = fabric.register(a.clone());
        let eb = fabric.register(b.clone());
        fabric.send(oneway(&a, &b, b"hi")).unwrap();
        let incoming = eb.progress(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(incoming.payload(), b"hi".as_slice());
    }

    #[test]
    fn unknown_address_is_an_error() {
        let fabric = Fabric::new();
        let a = Address::tcp("n1", 1);
        let _ea = fabric.register(a.clone());
        let ghost = Address::tcp("ghost", 1);
        let err = fabric.send(oneway(&a, &ghost, b"x")).unwrap_err();
        assert!(matches!(err, MercuryError::AddressUnknown(_)));
    }

    #[test]
    fn dead_endpoint_swallows_silently() {
        let fabric = Fabric::new();
        let a = Address::tcp("n1", 1);
        let b = Address::tcp("n2", 1);
        let _ea = fabric.register(a.clone());
        let _eb = fabric.register(b.clone());
        fabric.kill(&b);
        assert!(!fabric.is_live(&b));
        // No error: the sender cannot tell the difference.
        fabric.send(oneway(&a, &b, b"x")).unwrap();
    }

    #[test]
    fn delayed_delivery_arrives_after_model_latency() {
        let fabric = Fabric::with_model(NetworkModel::slow(Duration::from_millis(20)));
        let a = Address::tcp("n1", 1);
        let b = Address::tcp("n2", 1);
        let _ea = fabric.register(a.clone());
        let eb = fabric.register(b.clone());
        let t0 = Instant::now();
        fabric.send(oneway(&a, &b, b"hi")).unwrap();
        // Not there immediately.
        assert!(eb.progress(Duration::from_millis(1)).unwrap().is_none());
        let incoming = eb.progress(Duration::from_secs(1)).unwrap().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(19));
        assert_eq!(incoming.payload(), b"hi".as_slice());
    }

    #[test]
    fn delayed_messages_preserve_per_link_order() {
        let fabric = Fabric::with_model(NetworkModel::slow(Duration::from_millis(5)));
        let a = Address::tcp("n1", 1);
        let b = Address::tcp("n2", 1);
        let _ea = fabric.register(a.clone());
        let eb = fabric.register(b.clone());
        fabric.send(oneway(&a, &b, b"first")).unwrap();
        fabric.send(oneway(&a, &b, b"second")).unwrap();
        let m1 = eb.progress(Duration::from_secs(1)).unwrap().unwrap();
        let m2 = eb.progress(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(m1.payload(), b"first".as_slice());
        assert_eq!(m2.payload(), b"second".as_slice());
    }

    #[test]
    fn partition_drops_cross_group() {
        let fabric = Fabric::new();
        let a = Address::tcp("n1", 1);
        let b = Address::tcp("n2", 1);
        let _ea = fabric.register(a.clone());
        let eb = fabric.register(b.clone());
        fabric.faults().set_partition(&[vec!["n1".into()], vec!["n2".into()]]);
        fabric.send(oneway(&a, &b, b"x")).unwrap();
        assert!(eb.progress(Duration::from_millis(10)).unwrap().is_none());
        fabric.faults().heal_partition();
        fabric.send(oneway(&a, &b, b"y")).unwrap();
        assert!(eb.progress(Duration::from_secs(1)).unwrap().is_some());
    }

    #[test]
    fn reregistering_resurrects_address() {
        let fabric = Fabric::new();
        let a = Address::tcp("n1", 1);
        let b = Address::tcp("n2", 1);
        let _ea = fabric.register(a.clone());
        let eb = fabric.register(b.clone());
        fabric.kill(&b);
        drop(eb);
        let eb2 = fabric.register(b.clone());
        assert!(fabric.is_live(&b));
        fabric.send(oneway(&a, &b, b"back")).unwrap();
        assert!(eb2.progress(Duration::from_secs(1)).unwrap().is_some());
    }

    #[test]
    fn shutdown_stops_sends() {
        let fabric = Fabric::new();
        let a = Address::tcp("n1", 1);
        let _ea = fabric.register(a.clone());
        fabric.shutdown();
        let err = fabric.send(oneway(&a, &a, b"x")).unwrap_err();
        assert_eq!(err, MercuryError::LocalShutdown);
    }
}
