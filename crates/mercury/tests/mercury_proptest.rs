//! Property tests for the fabric substrate: address round-trips, bulk
//! region bounds, and per-link delivery ordering under random payloads.

use proptest::prelude::*;

use mochi_mercury::{Address, Fabric};

fn host_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9.-]{0,12}[a-z0-9]".prop_map(|s| s)
}

proptest! {
    #[test]
    fn address_display_parse_round_trip(
        scheme in "(na\\+sm|ofi\\+tcp|ofi\\+verbs|ucx\\+rc)",
        host in host_strategy(),
        port in 0u32..100_000,
    ) {
        let addr = Address::new(scheme, host, port);
        let parsed: Address = addr.to_string().parse().unwrap();
        prop_assert_eq!(parsed, addr);
    }

    #[test]
    fn bulk_read_write_round_trip(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        offset_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let fabric = Fabric::new();
        let owner = Address::tcp("owner", 1);
        let _endpoint = fabric.register(owner.clone());
        let buffer = std::sync::Arc::new(parking_lot::Mutex::new(data.clone()));
        let handle = fabric.bulk().expose(
            &owner,
            std::sync::Arc::clone(&buffer),
            mochi_mercury::BulkAccess::ReadWrite,
        );
        let offset = (offset_frac * data.len() as f64) as usize % data.len();
        let len = 1 + (len_frac * (data.len() - offset - 1) as f64) as usize;

        // Write a pattern, read it back through the other endpoint.
        let other = fabric.register(Address::tcp("other", 1));
        let pattern = vec![0xA5u8; len];
        let local = other.expose_bulk(
            std::sync::Arc::new(parking_lot::Mutex::new(pattern.clone())),
            mochi_mercury::BulkAccess::ReadOnly,
        );
        other.bulk_push(&local, 0, &handle, offset, len).unwrap();
        prop_assert_eq!(&buffer.lock()[offset..offset + len], &pattern[..]);

        let sink = other.expose_bulk(
            std::sync::Arc::new(parking_lot::Mutex::new(vec![0u8; len])),
            mochi_mercury::BulkAccess::ReadWrite,
        );
        other.bulk_pull(&handle, offset, &sink, 0, len).unwrap();

        // Out-of-range accesses always fail cleanly.
        let bad = other.bulk_pull(&handle, data.len(), &sink, 0, 1);
        prop_assert!(bad.is_err());
    }

}
