//! `RoutedKv` — one logical keyspace over N Yokan providers.
//!
//! The scale-out counterpart of [`FailoverKv`]: where a failover handle
//! follows *one* provider across relocations, a routed handle spreads a
//! keyspace over *many* providers with a client-side consistent-hash
//! ring ([`HashRing`]) and keeps every per-provider behavior — retry,
//! breaker, deadline, SSG-view re-resolution, write coalescing — by
//! routing each leg through its own [`FailoverKv`].
//!
//! Three properties define the design:
//!
//! * **Names, not addresses.** The ring maps keys to provider *names*;
//!   each leg resolves the name to a live `(address, provider_id)` per
//!   operation. Provider-level REMI migrations (node scale-in, failover
//!   rebuilds) are therefore invisible to the ring — only *keyspace*
//!   rebalances ([`RoutedKv::join`] / [`RoutedKv::retire`]) change it.
//! * **Concurrent fan-out.** Multi-key operations split into one batch
//!   per destination and the batches run as Argobots ULTs on a dedicated
//!   `routed-fanout` pool (the last leg runs inline on the caller), so a
//!   `put_multi` over 4 providers costs one leg's latency, not four.
//!   Failures stay per key: every slot reports its own leg's outcome.
//! * **Live rebalance, zero acked-write loss.** Membership changes drain
//!   the minimal moved-slice set through REMI while traffic continues:
//!   writes to moving keys dual-write old and new owner, reads fall back
//!   old-then-new, erases are logged and replayed, and slice imports are
//!   put-if-absent under a client-side barrier. See [`RoutedKv::join`]
//!   for the full protocol.
//!
//! One instance of [`RoutedKv`] is the *coordinator* of its keyspace:
//! concurrent data ops on the same instance are safe, but membership
//! changes must not race from multiple client processes (nothing
//! arbitrates two simultaneous drains — the same single-admin assumption
//! Bedrock's reconfiguration interface makes).
//!
//! [`FailoverKv`]: crate::failover::FailoverKv
//! [`HashRing`]: crate::ring::HashRing

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

use mochi_argobots::{AbtError, PoolConfig, Ult, XstreamConfig};
use mochi_bedrock::{ProviderSpec, REMI_PROVIDER_ID};
use mochi_margo::{MargoError, MargoRuntime};
use mochi_mercury::Address;
use mochi_pufferscale::Weights;
use mochi_util::unique_u64;
use mochi_yokan::client::{CoalescerConfig, CoalescingHandle, DatabaseHandle};

use crate::failover::FailoverKv;
use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::service::DynamicService;

/// Pool the scatter-gather ULTs run in. Installed by [`RoutedKv::new`]
/// on the client runtime (the default topology has a single xstream,
/// which would serialize the fan-out).
pub const FANOUT_POOL: &str = "routed-fanout";

/// Tuning knobs of a [`RoutedKv`].
#[derive(Debug, Clone, Copy)]
pub struct RoutedConfig {
    /// Virtual nodes per member on the ring.
    pub vnodes: usize,
    /// Execution streams serving [`FANOUT_POOL`] (the fan-out width).
    pub fanout_streams: usize,
    /// Per-attempt timeout of each leg.
    pub leg_timeout: Duration,
    /// Re-resolution rounds of each leg (see [`FailoverKv`]).
    pub leg_max_rounds: u32,
    /// Wait between a leg's re-resolution rounds — deliberately shorter
    /// than the standalone [`FailoverKv`] default so one slow leg does
    /// not hold a whole scatter-gather hostage.
    pub leg_reroute_backoff: Duration,
    /// When set, single-key `put`s coalesce client-side per destination
    /// (see [`CoalescingHandle`]); multi-ops already batch per
    /// destination and bypass it.
    pub coalescer: Option<CoalescerConfig>,
    /// Keys listed per page while draining a rebalance.
    pub drain_batch: usize,
}

impl Default for RoutedConfig {
    fn default() -> Self {
        Self {
            vnodes: DEFAULT_VNODES,
            fanout_streams: 4,
            leg_timeout: Duration::from_millis(250),
            leg_max_rounds: 40,
            leg_reroute_backoff: Duration::from_millis(10),
            coalescer: None,
            drain_batch: 512,
        }
    }
}

/// What a rebalance moved (returned by [`RoutedKv::join`]/
/// [`RoutedKv::retire`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Keys drained to a new owner.
    pub moved_keys: u64,
    /// REMI slice migrations issued.
    pub slices: u64,
    /// Erases recorded during the move window and replayed at cutover.
    pub replayed_erases: u64,
    /// Stale source copies removed after cutover.
    pub erased_stale: u64,
}

/// Routing snapshot: the serving ring plus, during a move window, the
/// ring being drained toward.
#[derive(Clone)]
struct RouteSnapshot {
    ring: HashRing,
    to_ring: Option<HashRing>,
}

impl RouteSnapshot {
    /// The key's owner pair: serving owner, plus the future owner when
    /// the key is mid-move.
    fn owners<'s>(&'s self, key: &[u8]) -> (Option<&'s str>, Option<&'s str>) {
        let owner = self.ring.owner(key);
        let moving = match (&self.to_ring, owner) {
            (Some(to), Some(from)) => to.owner(key).filter(|next| *next != from),
            _ => None,
        };
        (owner, moving)
    }
}

/// One per-member leg: a failover handle plus an optional write
/// coalescer pinned to the last resolved location.
struct Leg {
    failover: FailoverKv,
    margo: MargoRuntime,
    timeout: Duration,
    coalescer_config: Option<CoalescerConfig>,
    coalescer: Mutex<Option<CoalescingHandle>>,
}

impl Leg {
    fn new(
        service: &Arc<DynamicService>,
        margo: &MargoRuntime,
        member: &str,
        config: &RoutedConfig,
    ) -> Self {
        let failover = FailoverKv::new(service, margo, member)
            .with_timeout(config.leg_timeout)
            .with_max_rounds(config.leg_max_rounds)
            .with_reroute_backoff(config.leg_reroute_backoff);
        Self {
            failover,
            margo: margo.clone(),
            timeout: config.leg_timeout,
            coalescer_config: config.coalescer,
            coalescer: Mutex::new(None),
        }
    }

    fn reroutable(err: &MargoError) -> bool {
        err.is_retryable()
            || matches!(err, MargoError::BreakerOpen { .. } | MargoError::DeadlineExceeded)
    }

    /// Buffered single-key put when coalescing is on; write-through
    /// otherwise. A transport-class coalescer failure unpins it (the
    /// location may have moved) and falls back to the failover path.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError> {
        let Some(config) = self.coalescer_config else {
            return self.failover.put(key, value);
        };
        {
            let mut pinned = self.coalescer.lock();
            if pinned.is_none() {
                if let Some((addr, provider_id)) = self.failover.resolve() {
                    let handle = DatabaseHandle::new(&self.margo, addr, provider_id)
                        .with_timeout(self.timeout);
                    *pinned = Some(handle.coalescing(config));
                }
            }
            if let Some(coalescer) = pinned.as_ref() {
                match coalescer.put(key, value) {
                    Ok(()) => return Ok(()),
                    Err(err) if Self::reroutable(&err) => *pinned = None,
                    Err(err) => return Err(err),
                }
            }
        }
        self.failover.put(key, value)
    }

    /// Ships any coalesced puts (barrier before reads/drains). A
    /// transport-class failure unpins the coalescer and reports the
    /// error — the batch was already dropped by the coalescer's own
    /// no-requeue contract.
    fn sync(&self) -> Result<(), MargoError> {
        let mut pinned = self.coalescer.lock();
        if let Some(coalescer) = pinned.as_ref() {
            if let Err(err) = coalescer.sync() {
                if Self::reroutable(&err) {
                    *pinned = None;
                }
                return Err(err);
            }
        }
        Ok(())
    }

    /// Direct batched write (multi-ops). Syncs first so a buffered
    /// single-key put cannot ship *after* a newer batched value.
    fn put_multi(&self, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<(), MargoError> {
        self.sync()?;
        let refs: Vec<(&[u8], &[u8])> =
            pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
        self.failover.put_multi(&refs)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        self.sync()?;
        self.failover.get(key)
    }

    fn get_multi(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>, MargoError> {
        self.sync()?;
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        self.failover.get_multi(&refs)
    }

    fn erase(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.sync()?;
        self.failover.erase(key)
    }

    fn erase_multi(&self, keys: &[Vec<u8>]) -> Result<u64, MargoError> {
        self.sync()?;
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        self.failover.with_handle(|h| h.erase_multi(&refs))
    }

    fn exists(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.sync()?;
        self.failover.exists(key)
    }

    fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, MargoError> {
        self.sync()?;
        self.failover.list_keys(prefix, start_after, max)
    }

    fn len(&self) -> Result<u64, MargoError> {
        self.sync()?;
        self.failover.len()
    }
}

/// A Yokan keyspace routed across many providers by consistent hashing.
pub struct RoutedKv {
    service: Arc<DynamicService>,
    margo: MargoRuntime,
    config: RoutedConfig,
    /// Serving ring (+ target ring during a move window).
    state: RwLock<RouteSnapshot>,
    /// Member name → leg.
    legs: RwLock<BTreeMap<String, Arc<Leg>>>,
    /// Write barrier of the move protocol: writes to *moving* keys hold
    /// it shared; slice imports, erase-log replay, and cutover hold it
    /// exclusive, so an import batch never interleaves with a dual-write
    /// it could shadow.
    barrier: RwLock<()>,
    /// Keys erased during the move window; replayed on the new owners at
    /// cutover so a put-if-absent import cannot resurrect them.
    erase_log: Mutex<Vec<Vec<u8>>>,
    /// One membership change at a time.
    rebalance_lock: Mutex<()>,
    /// Whether the fan-out pool installed (else legs run sequentially).
    fanout_ok: bool,
}

impl RoutedKv {
    /// Creates a routed keyspace over `members` (Yokan provider names
    /// hosted somewhere in `service`), issuing RPCs from `margo`.
    pub fn new<S: AsRef<str>>(
        service: &Arc<DynamicService>,
        margo: &MargoRuntime,
        members: &[S],
        config: RoutedConfig,
    ) -> Self {
        let ring = HashRing::with_vnodes(members, config.vnodes);
        let legs = ring
            .members()
            .iter()
            .map(|m| (m.clone(), Arc::new(Leg::new(service, margo, m, &config))))
            .collect();
        let fanout_ok = Self::install_fanout(margo, config.fanout_streams);
        Self {
            service: Arc::clone(service),
            margo: margo.clone(),
            config,
            state: RwLock::new(RouteSnapshot { ring, to_ring: None }),
            legs: RwLock::new(legs),
            barrier: RwLock::new(()),
            erase_log: Mutex::new(Vec::new()),
            rebalance_lock: Mutex::new(()),
            fanout_ok,
        }
    }

    /// Discovers members by the `keyspace:<group>` provider tag across
    /// every service member's reported config, then builds the ring over
    /// them — the Bedrock-config way to wire a routed keyspace.
    pub fn for_keyspace(
        service: &Arc<DynamicService>,
        margo: &MargoRuntime,
        group: &str,
        config: RoutedConfig,
    ) -> Result<Self, MargoError> {
        let tag = format!("keyspace:{group}");
        let mut members: Vec<String> = Vec::new();
        for addr in service.addresses() {
            let Some(server) = service.server(&addr) else { continue };
            let process = server.get_config();
            let Some(providers) = process["providers"].as_array() else { continue };
            for provider in providers {
                let tagged = provider["tags"]
                    .as_array()
                    .is_some_and(|tags| tags.iter().any(|t| t.as_str() == Some(&tag)));
                if tagged {
                    if let Some(name) = provider["name"].as_str() {
                        members.push(name.to_string());
                    }
                }
            }
        }
        if members.is_empty() {
            return Err(MargoError::Handler(format!(
                "no providers tagged '{tag}' in the service"
            )));
        }
        Ok(Self::new(service, margo, &members, config))
    }

    /// Installs the fan-out pool + xstreams, tolerating re-installation
    /// (several `RoutedKv` on one runtime share the pool).
    fn install_fanout(margo: &MargoRuntime, streams: usize) -> bool {
        let abt = margo.abt();
        match abt.add_pool(PoolConfig::named(FANOUT_POOL)) {
            Ok(_) | Err(AbtError::PoolExists(_)) => {}
            Err(_) => return false,
        }
        for i in 0..streams.max(1) {
            let xstream = XstreamConfig::named(format!("{FANOUT_POOL}-{i}"), FANOUT_POOL);
            match abt.add_xstream(xstream) {
                Ok(()) | Err(AbtError::XstreamExists(_)) => {}
                Err(_) => return false,
            }
        }
        true
    }

    /// Current members, sorted.
    pub fn members(&self) -> Vec<String> {
        self.state.read().ring.members().to_vec()
    }

    /// Whether a move window is open.
    pub fn rebalancing(&self) -> bool {
        self.state.read().to_ring.is_some()
    }

    fn snapshot(&self) -> RouteSnapshot {
        self.state.read().clone()
    }

    fn leg(&self, member: &str) -> Result<Arc<Leg>, MargoError> {
        self.legs.read().get(member).cloned().ok_or_else(|| {
            MargoError::Handler(format!("no leg for keyspace member '{member}'"))
        })
    }

    fn empty_ring() -> MargoError {
        MargoError::Handler("routed keyspace has no members".into())
    }

    // -----------------------------------------------------------------
    // Scatter-gather
    // -----------------------------------------------------------------

    /// Runs `tasks` concurrently: all but the last are submitted to the
    /// fan-out pool as ULTs, the last runs inline on the caller (the
    /// single-destination case never pays a handoff). Results come back
    /// in task order.
    fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let total = tasks.len();
        if total == 0 {
            return Vec::new();
        }
        if !self.fanout_ok || total == 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        // Tasks live in take-once cells: whoever gets to a cell first —
        // the ULT, or the caller after a failed submit — runs it, so a
        // task executes exactly once even if the pool vanishes under a
        // teardown race.
        struct Gather<T, F> {
            pending: Vec<Mutex<Option<F>>>,
            slots: Mutex<Vec<Option<T>>>,
            done: Condvar,
        }
        impl<T, F: FnOnce() -> T> Gather<T, F> {
            fn run(&self, i: usize) {
                let Some(task) = self.pending[i].lock().take() else { return };
                let value = task();
                self.slots.lock()[i] = Some(value);
                self.done.notify_all();
            }
        }
        let gather: Arc<Gather<T, F>> = Arc::new(Gather {
            pending: tasks.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            slots: Mutex::new((0..total).map(|_| None).collect()),
            done: Condvar::new(),
        });
        for i in 0..total - 1 {
            let leg_gather = Arc::clone(&gather);
            let ult = Ult::new(format!("routed-leg-{i}"), move || leg_gather.run(i));
            if self.margo.abt().submit(FANOUT_POOL, ult).is_err() {
                gather.run(i);
            }
        }
        // The last leg runs inline: the caller contributes its own
        // thread instead of idling, and a single extra destination
        // costs no handoff at all.
        gather.run(total - 1);
        let mut filled = gather.slots.lock();
        while filled.iter().any(Option::is_none) {
            gather.done.wait(&mut filled);
        }
        filled.drain(..).map(|slot| slot.expect("all filled")).collect()
    }

    // -----------------------------------------------------------------
    // Single-key operations
    // -----------------------------------------------------------------

    /// Stores `value` under `key` at its ring owner. During a move
    /// window a moving key dual-writes old then new owner — both must
    /// ack before the put is acked, so the value survives cutover in
    /// either direction.
    ///
    /// Every write holds the barrier shared for its whole duration (the
    /// snapshot included): the rebalance path fences with one exclusive
    /// acquisition after opening the move window, so no write routed
    /// under the steady ring can still be in flight when the drain
    /// starts listing keys.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError> {
        let _shared = self.barrier.read();
        let snap = self.snapshot();
        let (owner, moving) = snap.owners(key);
        let owner = owner.ok_or_else(Self::empty_ring)?;
        match moving {
            Some(next) => {
                // Write-through on both legs: a buffered dual-write
                // could ship after the import that must not shadow it.
                self.leg(owner)?.failover.put(key, value)?;
                self.leg(next)?.failover.put(key, value)?;
                // The put supersedes any erase logged earlier in the
                // window — replaying it would clobber this acked write.
                self.erase_log.lock().retain(|logged| logged.as_slice() != key);
                Ok(())
            }
            None => self.leg(owner)?.put(key, value),
        }
    }

    /// Fetches `key` from its owner; during a move window a miss on the
    /// old owner falls through to the new owner (the key may already
    /// have drained).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        let snap = self.snapshot();
        let (owner, moving) = snap.owners(key);
        let owner = owner.ok_or_else(Self::empty_ring)?;
        match self.leg(owner)?.get(key)? {
            Some(value) => Ok(Some(value)),
            None => match moving {
                Some(next) => self.leg(next)?.get(key),
                None => Ok(None),
            },
        }
    }

    /// Whether `key` exists (old-then-new fallback like [`Self::get`]).
    pub fn exists(&self, key: &[u8]) -> Result<bool, MargoError> {
        let snap = self.snapshot();
        let (owner, moving) = snap.owners(key);
        let owner = owner.ok_or_else(Self::empty_ring)?;
        if self.leg(owner)?.exists(key)? {
            return Ok(true);
        }
        match moving {
            Some(next) => self.leg(next)?.exists(key),
            None => Ok(false),
        }
    }

    /// Removes `key`; returns whether it existed anywhere. During a move
    /// window the erase hits both owners and is logged, and the log is
    /// replayed after the slice import — otherwise a put-if-absent
    /// import could resurrect a key erased mid-drain.
    pub fn erase(&self, key: &[u8]) -> Result<bool, MargoError> {
        let _shared = self.barrier.read();
        let snap = self.snapshot();
        let (owner, moving) = snap.owners(key);
        let owner = owner.ok_or_else(Self::empty_ring)?;
        match moving {
            Some(next) => {
                self.erase_log.lock().push(key.to_vec());
                let old = self.leg(owner)?.erase(key)?;
                let new = self.leg(next)?.erase(key)?;
                Ok(old || new)
            }
            None => self.leg(owner)?.erase(key),
        }
    }

    // -----------------------------------------------------------------
    // Multi-key operations (scatter-gather)
    // -----------------------------------------------------------------

    /// Splits `keys` into per-destination batches under the snapshot: a
    /// stable key lands in its owner's batch, a moving key in both
    /// owners' batches (dual write). Returns member → key indices.
    fn write_batches<K: AsRef<[u8]>>(
        snap: &RouteSnapshot,
        keys: &[K],
    ) -> BTreeMap<String, Vec<usize>> {
        let mut by_dest: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, key) in keys.iter().enumerate() {
            let (owner, moving) = snap.owners(key.as_ref());
            if let Some(owner) = owner {
                by_dest.entry(owner.to_string()).or_default().push(i);
            }
            if let Some(next) = moving {
                by_dest.entry(next.to_string()).or_default().push(i);
            }
        }
        by_dest
    }

    /// Stores many pairs, one concurrent batched RPC per destination.
    /// Partial-failure contract: slot `i` is `Ok` only if *every* leg
    /// holding key `i` acked its batch (during a move a moving key needs
    /// both owners); a failed leg fails exactly its own keys' slots.
    pub fn put_multi(&self, pairs: &[(&[u8], &[u8])]) -> Vec<Result<(), MargoError>> {
        let _shared = self.barrier.read();
        let snap = self.snapshot();
        if snap.ring.is_empty() {
            return pairs.iter().map(|_| Err(Self::empty_ring())).collect();
        }
        let keys: Vec<&[u8]> = pairs.iter().map(|(k, _)| *k).collect();
        let batches = Self::write_batches(&snap, &keys);
        let mut tasks = Vec::with_capacity(batches.len());
        let mut routes: Vec<Vec<usize>> = Vec::with_capacity(batches.len());
        for (dest, indices) in batches {
            let batch: Vec<(Vec<u8>, Vec<u8>)> = indices
                .iter()
                .map(|&i| (pairs[i].0.to_vec(), pairs[i].1.to_vec()))
                .collect();
            let leg = self.leg(&dest);
            routes.push(indices);
            tasks.push(move || match leg {
                Ok(leg) => leg.put_multi(&batch),
                Err(err) => Err(err),
            });
        }
        let outcomes = self.scatter(tasks);
        let mut slots: Vec<Result<(), MargoError>> =
            pairs.iter().map(|_| Ok(())).collect();
        for (indices, outcome) in routes.iter().zip(outcomes) {
            if let Err(err) = outcome {
                for &i in indices {
                    if slots[i].is_ok() {
                        slots[i] = Err(err.clone());
                    }
                }
            }
        }
        // Acked puts supersede earlier logged erases of the same key.
        if snap.to_ring.is_some() {
            self.erase_log.lock().retain(|logged| {
                !pairs.iter().enumerate().any(|(i, (key, _))| {
                    slots[i].is_ok() && *key == logged.as_slice()
                })
            });
        }
        slots
    }

    /// Fetches many values, one concurrent batched RPC per owner, with
    /// per-key error slots. During a move window, keys the old owner
    /// misses retry on their new owner in a second fan-out round.
    pub fn get_multi(&self, keys: &[&[u8]]) -> Vec<Result<Option<Vec<u8>>, MargoError>> {
        let snap = self.snapshot();
        let mut slots: Vec<Result<Option<Vec<u8>>, MargoError>> =
            keys.iter().map(|_| Err(Self::empty_ring())).collect();
        // Round 1: serving owners only.
        let mut primary: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, key) in keys.iter().enumerate() {
            if let Some(owner) = snap.ring.owner(key) {
                primary.entry(owner.to_string()).or_default().push(i);
            }
        }
        self.gather_gets(keys, primary, &mut slots);
        // Round 2: moving keys the old owner missed.
        if snap.to_ring.is_some() {
            let mut fallback: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            for (i, key) in keys.iter().enumerate() {
                if matches!(slots[i], Ok(None)) {
                    if let (_, Some(next)) = snap.owners(key) {
                        fallback.entry(next.to_string()).or_default().push(i);
                    }
                }
            }
            if !fallback.is_empty() {
                self.gather_gets(keys, fallback, &mut slots);
            }
        }
        slots
    }

    /// One fan-out round of batched gets, merging results into `slots`.
    fn gather_gets(
        &self,
        keys: &[&[u8]],
        batches: BTreeMap<String, Vec<usize>>,
        slots: &mut [Result<Option<Vec<u8>>, MargoError>],
    ) {
        let mut tasks = Vec::with_capacity(batches.len());
        let mut routes: Vec<Vec<usize>> = Vec::with_capacity(batches.len());
        for (dest, indices) in batches {
            let batch: Vec<Vec<u8>> = indices.iter().map(|&i| keys[i].to_vec()).collect();
            let leg = self.leg(&dest);
            routes.push(indices);
            tasks.push(move || match leg {
                Ok(leg) => leg.get_multi(&batch),
                Err(err) => Err(err),
            });
        }
        for (indices, outcome) in routes.iter().zip(self.scatter(tasks)) {
            match outcome {
                Ok(values) => {
                    for (&i, value) in indices.iter().zip(values) {
                        slots[i] = Ok(value);
                    }
                }
                Err(err) => {
                    for &i in indices {
                        slots[i] = Err(err.clone());
                    }
                }
            }
        }
    }

    /// Removes many keys with per-key slots (`Ok(existed)`), batching
    /// per destination. Moving keys erase on both owners and are logged
    /// for replay, like [`Self::erase`].
    pub fn erase_multi(&self, keys: &[&[u8]]) -> Vec<Result<bool, MargoError>> {
        // Erase has per-key replies only in its single-key form, so the
        // batched surface degrades to one fan-out of single erases per
        // destination leg — still one concurrent leg per destination.
        let _shared = self.barrier.read();
        let snap = self.snapshot();
        if snap.ring.is_empty() {
            return keys.iter().map(|_| Err(Self::empty_ring())).collect();
        }
        if snap.to_ring.is_some() {
            let mut log = self.erase_log.lock();
            for key in keys {
                let (_, moving) = snap.owners(key);
                if moving.is_some() {
                    log.push(key.to_vec());
                }
            }
        }
        let batches = Self::write_batches(&snap, keys);
        let mut tasks = Vec::with_capacity(batches.len());
        let mut routes: Vec<Vec<usize>> = Vec::with_capacity(batches.len());
        for (dest, indices) in batches {
            let batch: Vec<Vec<u8>> = indices.iter().map(|&i| keys[i].to_vec()).collect();
            let leg = self.leg(&dest);
            routes.push(indices);
            tasks.push(move || -> Vec<Result<bool, MargoError>> {
                match leg {
                    Ok(leg) => batch.iter().map(|k| leg.erase(k)).collect(),
                    Err(err) => batch.iter().map(|_| Err(err.clone())).collect(),
                }
            });
        }
        let mut slots: Vec<Result<bool, MargoError>> =
            keys.iter().map(|_| Ok(false)).collect();
        for (indices, outcome) in routes.iter().zip(self.scatter(tasks)) {
            for (&i, result) in indices.iter().zip(outcome) {
                slots[i] = match (std::mem::replace(&mut slots[i], Ok(false)), result) {
                    (Ok(prev), Ok(existed)) => Ok(prev || existed),
                    (Ok(_), Err(err)) => Err(err),
                    (prev @ Err(_), _) => prev,
                };
            }
        }
        slots
    }

    /// Lists up to `max` keys with `prefix` after `start_after`, merging
    /// the per-member result streams into one sorted, deduplicated view
    /// (dual copies exist mid-move; dedup hides them).
    pub fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, MargoError> {
        let snap = self.snapshot();
        let mut members = snap.ring.members().to_vec();
        if let Some(to) = &snap.to_ring {
            members.extend(to.members().iter().cloned());
            members.sort();
            members.dedup();
        }
        let mut tasks = Vec::with_capacity(members.len());
        for member in &members {
            let leg = self.leg(member);
            let prefix = prefix.to_vec();
            let start_after = start_after.map(<[u8]>::to_vec);
            tasks.push(move || match leg {
                Ok(leg) => leg.list_keys(&prefix, start_after.as_deref(), max),
                Err(err) => Err(err),
            });
        }
        let mut merged: Vec<Vec<u8>> = Vec::new();
        for outcome in self.scatter(tasks) {
            merged.extend(outcome?);
        }
        merged.sort();
        merged.dedup();
        merged.truncate(max);
        Ok(merged)
    }

    /// Total keys across the keyspace (concurrent per-member `len`s).
    /// Mid-move the count can include dual copies — exact again once the
    /// post-cutover cleanup finishes.
    pub fn len(&self) -> Result<u64, MargoError> {
        let members = self.members();
        let mut tasks = Vec::with_capacity(members.len());
        for member in &members {
            let leg = self.leg(member);
            tasks.push(move || match leg {
                Ok(leg) => leg.len(),
                Err(err) => Err(err),
            });
        }
        let mut total = 0u64;
        for outcome in self.scatter(tasks) {
            total += outcome?;
        }
        Ok(total)
    }

    /// Whether the keyspace holds no keys.
    pub fn is_empty(&self) -> Result<bool, MargoError> {
        Ok(self.len()? == 0)
    }

    /// Ships every leg's coalesced writes.
    pub fn sync(&self) -> Result<(), MargoError> {
        let legs: Vec<Arc<Leg>> = self.legs.read().values().cloned().collect();
        for leg in legs {
            leg.sync()?;
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Live rebalance
    // -----------------------------------------------------------------

    /// Adds `member` (an existing Yokan provider) to the ring and drains
    /// the minimal moved-slice set to it while traffic continues.
    ///
    /// Protocol (all while ops keep flowing):
    ///
    /// 1. **Open the move window.** Routing snapshots now carry both
    ///    rings: writes to moving keys dual-write, reads fall back
    ///    old-then-new, erases log themselves.
    /// 2. **Drain.** Per source member, page through its keys, keep the
    ///    ones whose owner changes ([`HashRing::moved_arcs`] minimality:
    ///    only arcs adjacent to the new member's points move), and ship
    ///    them per destination: `slice_export` spills the pairs on the
    ///    source and pushes the file through REMI into the destination
    ///    provider's directory; `slice_import` (under the exclusive
    ///    write barrier) loads them *put-if-absent*, so a dual-written
    ///    value newer than the export snapshot always wins.
    /// 3. **Cutover.** Under the exclusive barrier: replay the erase
    ///    log on the new owners, swap the serving ring, close the
    ///    window.
    /// 4. **Cleanup.** Source copies of moved keys are now stale (reads
    ///    no longer route to them) — erase them batch-wise.
    pub fn join(&self, member: &str) -> Result<RebalanceReport, MargoError> {
        let to_ring = {
            let snap = self.state.read();
            if snap.ring.contains(member) {
                return Err(MargoError::Handler(format!(
                    "'{member}' is already a keyspace member"
                )));
            }
            snap.ring.with_member(member)
        };
        self.rebalance_to(to_ring)
    }

    /// Removes `member` from the ring, draining everything it owns to
    /// the surviving members (same protocol as [`Self::join`]), then
    /// clears the provider. The provider itself keeps running — retiring
    /// it from the keyspace is independent of stopping its process.
    pub fn retire(&self, member: &str) -> Result<RebalanceReport, MargoError> {
        let to_ring = {
            let snap = self.state.read();
            if !snap.ring.contains(member) {
                return Err(MargoError::Handler(format!(
                    "'{member}' is not a keyspace member"
                )));
            }
            if snap.ring.len() == 1 {
                return Err(MargoError::Handler(
                    "cannot retire the last keyspace member".into(),
                ));
            }
            snap.ring.without_member(member)
        };
        self.rebalance_to(to_ring)
    }

    /// Picks the least-loaded service node (Pufferscale placement over
    /// the live provider weights) to host a joining provider.
    pub fn plan_host(&self, weights: &Weights) -> Option<Address> {
        let placement = self.service.placement();
        placement.least_loaded(weights)?.parse().ok()
    }

    /// Starts `spec` on `host` (or on the Pufferscale-chosen least
    /// loaded node when `None`) and joins it to the keyspace.
    pub fn join_provider(
        &self,
        spec: &ProviderSpec,
        host: Option<&Address>,
    ) -> Result<RebalanceReport, MargoError> {
        let host = match host {
            Some(addr) => addr.clone(),
            None => self
                .plan_host(&Weights::default())
                .ok_or_else(|| MargoError::Handler("no service node to host provider".into()))?,
        };
        let server = self
            .service
            .server(&host)
            .ok_or_else(|| MargoError::Handler(format!("{host} is not a service member")))?;
        server
            .start_provider(spec)
            .map_err(|e| MargoError::Handler(format!("start provider: {e}")))?;
        self.join(&spec.name)
    }

    fn rebalance_to(&self, to_ring: HashRing) -> Result<RebalanceReport, MargoError> {
        let _coordinator = self.rebalance_lock.lock();
        let from_ring = self.state.read().ring.clone();
        // Legs for joining members must exist before the window opens
        // (dual writes route to them immediately).
        {
            let mut legs = self.legs.write();
            for member in to_ring.members() {
                legs.entry(member.clone()).or_insert_with(|| {
                    Arc::new(Leg::new(&self.service, &self.margo, member, &self.config))
                });
            }
        }
        // Ship coalesced writes so the server-side listings see them.
        self.sync()?;
        // Open the move window.
        self.erase_log.lock().clear();
        self.state.write().to_ring = Some(to_ring.clone());
        // Epoch fence: writes hold the barrier shared across snapshot
        // and RPCs, so one exclusive acquisition here waits out every
        // write still routing under the steady ring — after this, all
        // in-flight writes dual-write, and the drain's listings cannot
        // miss a single-owner write that landed behind an export.
        drop(self.barrier.write());
        let result = self.drain(&from_ring, &to_ring);
        if result.is_err() {
            // Close the window; copied keys on the target are harmless
            // (reads route by the serving ring) and a later successful
            // rebalance's put-if-absent import + cleanup reconciles them.
            self.state.write().to_ring = None;
        }
        let mut report = result?;
        // Cutover: replay erases, swap rings — atomically w.r.t. writes.
        {
            let _exclusive = self.barrier.write();
            let log = std::mem::take(&mut *self.erase_log.lock());
            report.replayed_erases = log.len() as u64;
            if !log.is_empty() {
                let mut by_dest: BTreeMap<&str, Vec<Vec<u8>>> = BTreeMap::new();
                for key in &log {
                    if let Some(owner) = to_ring.owner(key) {
                        by_dest.entry(owner).or_default().push(key.clone());
                    }
                }
                for (dest, batch) in by_dest {
                    self.leg(dest)?.erase_multi(&batch)?;
                }
            }
            let mut snap = self.state.write();
            snap.ring = to_ring.clone();
            snap.to_ring = None;
        }
        report.erased_stale = self.cleanup(&from_ring, &to_ring)?;
        // Drop legs of members that left the ring.
        self.legs.write().retain(|name, _| to_ring.contains(name));
        Ok(report)
    }

    /// Pages through every source member's keys and drains the moved
    /// ones, slice by slice, to their new owners.
    fn drain(
        &self,
        from_ring: &HashRing,
        to_ring: &HashRing,
    ) -> Result<RebalanceReport, MargoError> {
        let mut report = RebalanceReport::default();
        for member in from_ring.members() {
            let source = self.leg(member)?;
            let mut start_after: Option<Vec<u8>> = None;
            loop {
                let page =
                    source.list_keys(b"", start_after.as_deref(), self.config.drain_batch)?;
                let Some(last) = page.last() else { break };
                start_after = Some(last.clone());
                let mut by_dest: BTreeMap<&str, Vec<Vec<u8>>> = BTreeMap::new();
                for key in &page {
                    if from_ring.owner(key) != Some(member) {
                        continue; // stale copy from an earlier move
                    }
                    match to_ring.owner(key) {
                        Some(dest) if dest != member => {
                            by_dest.entry(dest).or_default().push(key.clone());
                        }
                        _ => {}
                    }
                }
                for (dest, keys) in by_dest {
                    report.moved_keys += keys.len() as u64;
                    report.slices += 1;
                    self.drain_slice(&source, member, dest, &keys)?;
                }
            }
        }
        Ok(report)
    }

    /// Ships one slice of keys from `member` to `dest`: REMI-backed
    /// export on the source, put-if-absent import on the destination
    /// under the exclusive write barrier.
    fn drain_slice(
        &self,
        source: &Leg,
        member: &str,
        dest: &str,
        keys: &[Vec<u8>],
    ) -> Result<(), MargoError> {
        let dest_leg = self.leg(dest)?;
        let (dest_addr, _) = dest_leg.failover.resolve().ok_or_else(|| {
            MargoError::Handler(format!("cannot resolve keyspace member '{dest}'"))
        })?;
        let tag = format!("mv{}-{member}-to-{dest}", unique_u64());
        let dest_subdir = format!("providers/{dest}/slices/{tag}");
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        source.failover.with_handle(|h| {
            h.slice_export(&refs, &tag, &dest_addr, REMI_PROVIDER_ID, &dest_subdir)
        })?;
        // Exclusive barrier: no dual-write may interleave with the
        // import, so "absent" on the destination is authoritative.
        let _exclusive = self.barrier.write();
        dest_leg.failover.with_handle(|h| h.slice_import(&tag))?;
        // Erases logged before this import exported a pre-erase
        // snapshot of these keys; replay them on the destination now so
        // the import cannot resurrect them even transiently. (The
        // cutover replay still covers erases that arrive later.)
        let logged: Vec<Vec<u8>> = {
            let in_slice: std::collections::BTreeSet<&[u8]> =
                keys.iter().map(Vec::as_slice).collect();
            let log = self.erase_log.lock();
            log.iter().filter(|k| in_slice.contains(k.as_slice())).cloned().collect()
        };
        if !logged.is_empty() {
            dest_leg.erase_multi(&logged)?;
        }
        Ok(())
    }

    /// Erases post-cutover stale source copies: keys a surviving member
    /// still stores but no longer owns. The retired member (absent from
    /// the new ring) is swept the same way — it owns nothing anymore, so
    /// everything it stores goes.
    fn cleanup(&self, from_ring: &HashRing, to_ring: &HashRing) -> Result<u64, MargoError> {
        let mut erased = 0u64;
        for member in from_ring.members() {
            let leg = self.leg(member).or_else(|_| -> Result<_, MargoError> {
                // Retired member: its leg may already be dropped from
                // the map on a repeat cleanup; build a transient one.
                Ok(Arc::new(Leg::new(&self.service, &self.margo, member, &self.config)))
            })?;
            let mut start_after: Option<Vec<u8>> = None;
            loop {
                let page = leg.list_keys(b"", start_after.as_deref(), self.config.drain_batch)?;
                let Some(last) = page.last() else { break };
                start_after = Some(last.clone());
                let stale: Vec<Vec<u8>> = page
                    .iter()
                    .filter(|key| to_ring.owner(key) != Some(member))
                    .cloned()
                    .collect();
                if !stale.is_empty() {
                    erased += leg.erase_multi(&stale)?;
                }
            }
        }
        Ok(erased)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(members: &[&str], to: Option<&[&str]>) -> RouteSnapshot {
        RouteSnapshot {
            ring: HashRing::new(members),
            to_ring: to.map(HashRing::new),
        }
    }

    #[test]
    fn config_defaults_are_sane() {
        let config = RoutedConfig::default();
        assert_eq!(config.vnodes, DEFAULT_VNODES);
        assert!(config.fanout_streams >= 1);
        assert!(config.leg_reroute_backoff < Duration::from_millis(50));
        assert!(config.coalescer.is_none());
        assert!(config.drain_batch > 0);
    }

    #[test]
    fn owners_reports_moving_keys() {
        let steady = snap(&["db0", "db1"], None);
        let moving = snap(&["db0", "db1"], Some(&["db0", "db1", "db2"]));
        let mut saw_move = false;
        for i in 0..500 {
            let key = format!("key-{i}").into_bytes();
            let (owner, next) = steady.owners(&key);
            assert!(owner.is_some());
            assert!(next.is_none(), "no move window, nothing moves");
            let (owner, next) = moving.owners(&key);
            if let Some(next) = next {
                assert_eq!(next, "db2", "adds move keys only toward the joiner");
                assert_ne!(Some(next), owner);
                saw_move = true;
            }
        }
        assert!(saw_move, "some key must move toward db2");
    }

    #[test]
    fn write_batches_dual_route_moving_keys() {
        let moving = snap(&["db0", "db1"], Some(&["db0", "db1", "db2"]));
        let keys: Vec<Vec<u8>> =
            (0..500).map(|i| format!("key-{i}").into_bytes()).collect();
        let batches = RoutedKv::write_batches(&moving, &keys);
        let joiner = batches.get("db2").expect("joiner receives dual writes");
        for &i in joiner {
            let (owner, next) = moving.owners(&keys[i]);
            assert_eq!(next, Some("db2"));
            // The same index must also sit in its serving owner's batch.
            let owner = owner.expect("owned");
            assert!(batches[owner].contains(&i), "dual write covers the old owner");
        }
        // Every key routes somewhere, and non-moving keys exactly once.
        let total: usize = batches.values().map(Vec::len).sum();
        let moving_count = keys
            .iter()
            .filter(|k| moving.owners(k).1.is_some())
            .count();
        assert_eq!(total, keys.len() + moving_count);
    }

    #[test]
    fn write_batches_steady_state_is_a_partition() {
        let steady = snap(&["db0", "db1", "db2"], None);
        let keys: Vec<Vec<u8>> =
            (0..300).map(|i| format!("key-{i}").into_bytes()).collect();
        let batches = RoutedKv::write_batches(&steady, &keys);
        let mut seen: Vec<usize> = batches.values().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..300).collect::<Vec<_>>());
    }
}
