//! `RoutedKv` — one logical keyspace over N Yokan providers.
//!
//! The scale-out counterpart of [`FailoverKv`]: where a failover handle
//! follows *one* provider across relocations, a routed handle spreads a
//! keyspace over *many* providers with a client-side consistent-hash
//! ring ([`HashRing`]) and keeps every per-provider behavior — retry,
//! breaker, deadline, SSG-view re-resolution, write coalescing — by
//! routing each leg through its own [`FailoverKv`].
//!
//! Three properties define the design:
//!
//! * **Names, not addresses.** The ring maps keys to provider *names*;
//!   each leg resolves the name to a live `(address, provider_id)` per
//!   operation. Provider-level REMI migrations (node scale-in, failover
//!   rebuilds) are therefore invisible to the ring — only *keyspace*
//!   rebalances ([`RoutedKv::join`] / [`RoutedKv::retire`]) change it.
//! * **Concurrent fan-out.** Multi-key operations split into one batch
//!   per destination and the batches run as Argobots ULTs on a dedicated
//!   `routed-fanout` pool (the last leg runs inline on the caller), so a
//!   `put_multi` over 4 providers costs one leg's latency, not four.
//!   Failures stay per key: every slot reports its own leg's outcome.
//! * **Live rebalance, zero acked-write loss.** Membership changes drain
//!   the minimal moved-slice set through REMI while traffic continues:
//!   writes to moving keys dual-write old and new owner, reads fall back
//!   old-then-new, erases are logged and replayed, and slice imports are
//!   put-if-absent under a client-side barrier. See [`RoutedKv::join`]
//!   for the full protocol.
//! * **Optional replication** (`replication_factor > 1`, DESIGN.md §18):
//!   every key lives on R distinct ring successors. Writes stamp an
//!   HLC-style version and fan to all R owners, acking at write-quorum
//!   `W`; an unreachable owner's share lands on the next successor as a
//!   *hint* that a background drainer replays when the owner returns.
//!   Reads ask the owners, require read-quorum `R_q`, merge freshest-
//!   wins, and repair stale replicas asynchronously. A killed member is
//!   retired with **no drain** ([`RoutedKv::fail_member`]) — survivors
//!   already hold every record; only a re-replication catch-up runs.
//!
//! One instance of [`RoutedKv`] is the *coordinator* of its keyspace:
//! concurrent data ops on the same instance are safe, but membership
//! changes must not race from multiple client processes (nothing
//! arbitrates two simultaneous drains — the same single-admin assumption
//! Bedrock's reconfiguration interface makes).
//!
//! [`FailoverKv`]: crate::failover::FailoverKv
//! [`HashRing`]: crate::ring::HashRing

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use parking_lot::{Condvar, Mutex, RwLock};

use mochi_argobots::{AbtError, PoolConfig, Ult, XstreamConfig};
use mochi_bedrock::{ProviderSpec, REMI_PROVIDER_ID};
use mochi_margo::{MargoError, MargoRuntime};
use mochi_mercury::Address;
use mochi_pufferscale::Weights;
use mochi_util::unique_u64;
use mochi_yokan::client::{CoalescerConfig, CoalescingHandle, DatabaseHandle, VersionedValue};
use mochi_yokan::provider::{HintDropEntry, HintEntry};

use crate::failover::FailoverKv;
use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::service::DynamicService;

/// Pool the scatter-gather ULTs run in. Installed by [`RoutedKv::new`]
/// on the client runtime (the default topology has a single xstream,
/// which would serialize the fan-out).
pub const FANOUT_POOL: &str = "routed-fanout";

/// Tuning knobs of a [`RoutedKv`].
#[derive(Debug, Clone, Copy)]
pub struct RoutedConfig {
    /// Virtual nodes per member on the ring.
    pub vnodes: usize,
    /// Execution streams serving [`FANOUT_POOL`] (the fan-out width).
    pub fanout_streams: usize,
    /// Per-attempt timeout of each leg.
    pub leg_timeout: Duration,
    /// Re-resolution rounds of each leg (see [`FailoverKv`]).
    pub leg_max_rounds: u32,
    /// Wait between a leg's re-resolution rounds — deliberately shorter
    /// than the standalone [`FailoverKv`] default so one slow leg does
    /// not hold a whole scatter-gather hostage.
    pub leg_reroute_backoff: Duration,
    /// When set, single-key `put`s coalesce client-side per destination
    /// (see [`CoalescingHandle`]); multi-ops already batch per
    /// destination and bypass it. Only effective at `replication_factor
    /// 1` — the replicated write path stamps versions per key and always
    /// writes through.
    pub coalescer: Option<CoalescerConfig>,
    /// Keys listed per page while draining a rebalance.
    pub drain_batch: usize,
    /// Copies of every key (distinct ring successors). `1` (the
    /// default) keeps the single-owner behavior; `> 1` turns on quorum
    /// writes/reads, hinted handoff, and [`RoutedKv::fail_member`].
    pub replication_factor: usize,
    /// Acks required before a replicated write returns `Ok`; `None`
    /// means a majority of the serving replicas. Clamped to
    /// `1..=replicas`. At least one ack must always be a *real* owner
    /// ack (hints alone never satisfy the quorum).
    pub write_quorum: Option<usize>,
    /// Replica answers required before a replicated read returns;
    /// `None` means a majority of the serving replicas.
    pub read_quorum: Option<usize>,
    /// How often the background drainer replays parked hints.
    pub hint_drain_interval: Duration,
    /// Byte budget per [`Self::drain_tick`] for background copies —
    /// rebalance slice drains and `fail_member` re-replication. `None`
    /// (default) is unthrottled.
    pub drain_bytes_per_tick: Option<u64>,
    /// Window over which [`Self::drain_bytes_per_tick`] is accounted.
    pub drain_tick: Duration,
}

impl Default for RoutedConfig {
    fn default() -> Self {
        Self {
            vnodes: DEFAULT_VNODES,
            fanout_streams: 4,
            leg_timeout: Duration::from_millis(250),
            leg_max_rounds: 40,
            leg_reroute_backoff: Duration::from_millis(10),
            coalescer: None,
            drain_batch: 512,
            replication_factor: 1,
            write_quorum: None,
            read_quorum: None,
            hint_drain_interval: Duration::from_millis(100),
            drain_bytes_per_tick: None,
            drain_tick: Duration::from_millis(50),
        }
    }
}

impl RoutedConfig {
    fn rf(&self) -> usize {
        self.replication_factor.max(1)
    }

    fn replicated(&self) -> bool {
        self.rf() > 1
    }

    /// Write quorum over `replicas` live copies (majority by default).
    fn write_quorum_for(&self, replicas: usize) -> usize {
        self.write_quorum
            .unwrap_or(replicas / 2 + 1)
            .clamp(1, replicas.max(1))
    }

    /// Read quorum over `replicas` live copies (majority by default).
    fn read_quorum_for(&self, replicas: usize) -> usize {
        self.read_quorum
            .unwrap_or(replicas / 2 + 1)
            .clamp(1, replicas.max(1))
    }
}

/// What a rebalance moved (returned by [`RoutedKv::join`]/
/// [`RoutedKv::retire`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Keys drained to a new owner.
    pub moved_keys: u64,
    /// REMI slice migrations issued.
    pub slices: u64,
    /// Erases recorded during the move window and replayed at cutover.
    pub replayed_erases: u64,
    /// Stale source copies removed after cutover.
    pub erased_stale: u64,
}

/// What [`RoutedKv::fail_member`] re-replicated after retiring a dead
/// member without a drain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatchUpReport {
    /// Records copied to restore the replication factor.
    pub recopied_keys: u64,
    /// Bytes of those records (key + value + version envelope).
    pub recopied_bytes: u64,
    /// Hints replayed while the member was being failed.
    pub replayed_hints: u64,
}

/// Point-in-time replication counters (see [`RoutedKv::replication_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationCounters {
    /// Writes that landed as a hint on a handoff member instead of a
    /// real owner ack.
    pub hinted_writes: u64,
    /// Hints replayed onto their final owner (background drainer,
    /// `drain_hints_now`, or `fail_member`).
    pub hint_replays: u64,
    /// Stale or missing replicas repaired asynchronously after a read.
    pub read_repairs: u64,
    /// Read-repair attempts that failed (left for the next read to fix).
    pub repair_failures: u64,
    /// Hint-drain passes that hit an error and will retry next tick.
    pub drain_errors: u64,
}

/// Shared atomic counters behind [`ReplicationCounters`].
#[derive(Default)]
struct ReplicationStats {
    hinted_writes: AtomicU64,
    hint_replays: AtomicU64,
    read_repairs: AtomicU64,
    repair_failures: AtomicU64,
    drain_errors: AtomicU64,
}

impl ReplicationStats {
    fn snapshot(&self) -> ReplicationCounters {
        ReplicationCounters {
            hinted_writes: self.hinted_writes.load(Ordering::Acquire),
            hint_replays: self.hint_replays.load(Ordering::Acquire),
            read_repairs: self.read_repairs.load(Ordering::Acquire),
            repair_failures: self.repair_failures.load(Ordering::Acquire),
            drain_errors: self.drain_errors.load(Ordering::Acquire),
        }
    }
}

/// Byte-budget throttle for background copies (satellite: rebalance and
/// re-replication must not starve foreground traffic). `consume` charges
/// a transfer against the current tick's budget and sleeps into the next
/// tick once the budget is spent. A single transfer larger than the
/// budget still proceeds (charged against one whole tick) so progress is
/// always possible.
struct Throttle {
    budget: Option<u64>,
    tick: Duration,
    window: Mutex<(Instant, u64)>,
}

impl Throttle {
    fn new(config: &RoutedConfig) -> Self {
        Self {
            budget: config.drain_bytes_per_tick,
            tick: config.drain_tick,
            window: Mutex::new((Instant::now(), 0)),
        }
    }

    fn consume(&self, bytes: u64) {
        let Some(budget) = self.budget else { return };
        loop {
            let mut window = self.window.lock();
            if window.0.elapsed() >= self.tick {
                *window = (Instant::now(), 0);
            }
            if window.1 < budget {
                window.1 = window.1.saturating_add(bytes);
                return;
            }
            let wait = self.tick.saturating_sub(window.0.elapsed());
            drop(window);
            std::thread::sleep(wait.max(Duration::from_millis(1)));
        }
    }
}

/// Routing snapshot: the serving ring plus, during a move window, the
/// ring being drained toward.
#[derive(Clone)]
struct RouteSnapshot {
    ring: HashRing,
    to_ring: Option<HashRing>,
}

impl RouteSnapshot {
    /// The key's owner pair: serving owner, plus the future owner when
    /// the key is mid-move.
    fn owners<'s>(&'s self, key: &[u8]) -> (Option<&'s str>, Option<&'s str>) {
        let owner = self.ring.owner(key);
        let moving = match (&self.to_ring, owner) {
            (Some(to), Some(from)) => to.owner(key).filter(|next| *next != from),
            _ => None,
        };
        (owner, moving)
    }

    /// The key's serving replica set: `rf` distinct successors on the
    /// serving ring. Reads route here.
    fn replicas(&self, key: &[u8], rf: usize) -> Vec<String> {
        self.ring.owners(key, rf).into_iter().map(str::to_string).collect()
    }

    /// The key's write set: serving replicas first, then any future
    /// owners (move window) not already serving — replicated writes
    /// cover both so a cutover in either direction keeps every acked
    /// write.
    fn write_set(&self, key: &[u8], rf: usize) -> (Vec<String>, Vec<String>) {
        let serving = self.replicas(key, rf);
        let mut future = Vec::new();
        if let Some(to) = &self.to_ring {
            for member in to.owners(key, rf) {
                if !serving.iter().any(|m| m == member) {
                    future.push(member.to_string());
                }
            }
        }
        (serving, future)
    }
}

/// One per-member leg: a failover handle plus an optional write
/// coalescer pinned to the last resolved location.
struct Leg {
    failover: FailoverKv,
    margo: MargoRuntime,
    timeout: Duration,
    coalescer_config: Option<CoalescerConfig>,
    coalescer: Mutex<Option<CoalescingHandle>>,
}

impl Leg {
    fn new(
        service: &Arc<DynamicService>,
        margo: &MargoRuntime,
        member: &str,
        config: &RoutedConfig,
    ) -> Self {
        let failover = FailoverKv::new(service, margo, member)
            .with_timeout(config.leg_timeout)
            .with_max_rounds(config.leg_max_rounds)
            .with_reroute_backoff(config.leg_reroute_backoff);
        Self {
            failover,
            margo: margo.clone(),
            timeout: config.leg_timeout,
            coalescer_config: config.coalescer,
            coalescer: Mutex::new(None),
        }
    }

    fn reroutable(err: &MargoError) -> bool {
        err.is_retryable()
            || matches!(err, MargoError::BreakerOpen { .. } | MargoError::DeadlineExceeded)
    }

    /// Buffered single-key put when coalescing is on; write-through
    /// otherwise. A transport-class coalescer failure unpins it (the
    /// location may have moved) and falls back to the failover path.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError> {
        let Some(config) = self.coalescer_config else {
            return self.failover.put(key, value);
        };
        {
            let mut pinned = self.coalescer.lock();
            if pinned.is_none() {
                if let Some((addr, provider_id)) = self.failover.resolve() {
                    let handle = DatabaseHandle::new(&self.margo, addr, provider_id)
                        .with_timeout(self.timeout);
                    *pinned = Some(handle.coalescing(config));
                }
            }
            if let Some(coalescer) = pinned.as_ref() {
                match coalescer.put(key, value) {
                    Ok(()) => return Ok(()),
                    Err(err) if Self::reroutable(&err) => *pinned = None,
                    Err(err) => return Err(err),
                }
            }
        }
        self.failover.put(key, value)
    }

    /// Ships any coalesced puts (barrier before reads/drains). A
    /// transport-class failure unpins the coalescer and reports the
    /// error — the batch was already dropped by the coalescer's own
    /// no-requeue contract.
    fn sync(&self) -> Result<(), MargoError> {
        let mut pinned = self.coalescer.lock();
        if let Some(coalescer) = pinned.as_ref() {
            if let Err(err) = coalescer.sync() {
                if Self::reroutable(&err) {
                    *pinned = None;
                }
                return Err(err);
            }
        }
        Ok(())
    }

    /// Direct batched write (multi-ops). Syncs first so a buffered
    /// single-key put cannot ship *after* a newer batched value.
    fn put_multi(&self, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<(), MargoError> {
        self.sync()?;
        let refs: Vec<(&[u8], &[u8])> =
            pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
        self.failover.put_multi(&refs)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        self.sync()?;
        self.failover.get(key)
    }

    fn get_multi(&self, keys: &[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>, MargoError> {
        self.sync()?;
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        self.failover.get_multi(&refs)
    }

    fn erase(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.sync()?;
        self.failover.erase(key)
    }

    fn erase_multi(&self, keys: &[Vec<u8>]) -> Result<u64, MargoError> {
        self.sync()?;
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        self.failover.with_handle(|h| h.erase_multi(&refs))
    }

    fn exists(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.sync()?;
        self.failover.exists(key)
    }

    fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, MargoError> {
        self.sync()?;
        self.failover.list_keys(prefix, start_after, max)
    }

    fn len(&self) -> Result<u64, MargoError> {
        self.sync()?;
        self.failover.len()
    }

    // Versioned (replicated-mode) operations. The replicated write path
    // never feeds the coalescer, so these skip the sync barrier and talk
    // straight to the failover handle with an explicit round budget —
    // quorum legs fail fast and let the hint machinery absorb the loss.

    /// Put-if-newer of one versioned record (`None` value = tombstone).
    fn vput(
        &self,
        key: &[u8],
        version: u64,
        value: Option<&[u8]>,
        rounds: u32,
    ) -> Result<bool, MargoError> {
        self.failover
            .with_handle_rounds(rounds, |h| h.put_versioned(key, version, value))
            .map(|reply| reply.existed)
    }

    /// Batched put-if-newer; returns per-record `existed` flags.
    fn vput_multi(
        &self,
        records: &[(Vec<u8>, u64, Option<Vec<u8>>)],
        rounds: u32,
    ) -> Result<Vec<bool>, MargoError> {
        self.failover
            .with_handle_rounds(rounds, |h| {
                let refs: Vec<(&[u8], u64, Option<&[u8]>)> = records
                    .iter()
                    .map(|(k, v, val)| (k.as_slice(), *v, val.as_deref()))
                    .collect();
                h.put_versioned_multi(&refs)
            })
            .map(|reply| reply.existed)
    }

    /// Batched versioned read; `None` = this replica has no record.
    fn vget_multi(
        &self,
        keys: &[Vec<u8>],
        rounds: u32,
    ) -> Result<Vec<Option<VersionedValue>>, MargoError> {
        self.failover.with_handle_rounds(rounds, |h| {
            let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
            h.get_versioned_multi(&refs)
        })
    }

    /// Parks a record destined for `target` on this member (handoff).
    fn hint_put(
        &self,
        target: &str,
        key: &[u8],
        version: u64,
        value: Option<&[u8]>,
        rounds: u32,
    ) -> Result<bool, MargoError> {
        self.failover
            .with_handle_rounds(rounds, |h| h.hint_put(target, key, version, value))
    }

    /// Lists up to `max` parked hints on this member.
    fn hint_list(&self, max: usize, rounds: u32) -> Result<Vec<HintEntry>, MargoError> {
        self.failover.with_handle_rounds(rounds, |h| h.hint_list(max))
    }

    /// Drops replayed hints (skipping any re-parked with a newer version).
    fn hint_drop(&self, entries: &[HintDropEntry], rounds: u32) -> Result<u64, MargoError> {
        self.failover.with_handle_rounds(rounds, |h| h.hint_drop(entries))
    }
}

/// A Yokan keyspace routed across many providers by consistent hashing.
pub struct RoutedKv {
    service: Arc<DynamicService>,
    margo: MargoRuntime,
    config: RoutedConfig,
    /// Serving ring (+ target ring during a move window). `Arc` so the
    /// hint drainer thread shares the live routing state.
    state: Arc<RwLock<RouteSnapshot>>,
    /// Member name → leg (shared with the hint drainer).
    legs: Arc<RwLock<BTreeMap<String, Arc<Leg>>>>,
    /// Write barrier of the move protocol: writes to *moving* keys hold
    /// it shared; slice imports, erase-log replay, and cutover hold it
    /// exclusive, so an import batch never interleaves with a dual-write
    /// it could shadow.
    barrier: RwLock<()>,
    /// Keys erased during the move window; replayed on the new owners at
    /// cutover so a put-if-absent import cannot resurrect them. Unused
    /// in replicated mode (erases are versioned tombstones there).
    erase_log: Mutex<Vec<Vec<u8>>>,
    /// One membership change at a time.
    rebalance_lock: Mutex<()>,
    /// Whether the fan-out pool installed (else legs run sequentially).
    fanout_ok: bool,
    /// HLC-style version clock: `max(now_µs, prev + 1)`, so versions are
    /// monotone per coordinator and roughly wall-clock-ordered across
    /// coordinators.
    clock: AtomicU64,
    /// Replication counters (hints, repairs, drain errors).
    stats: Arc<ReplicationStats>,
    /// Tells the hint drainer thread to exit.
    stop: Arc<AtomicBool>,
    /// The hint drainer thread (replicated mode only).
    drainer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl RoutedKv {
    /// Creates a routed keyspace over `members` (Yokan provider names
    /// hosted somewhere in `service`), issuing RPCs from `margo`.
    pub fn new<S: AsRef<str>>(
        service: &Arc<DynamicService>,
        margo: &MargoRuntime,
        members: &[S],
        config: RoutedConfig,
    ) -> Self {
        let ring = HashRing::with_vnodes(members, config.vnodes);
        let legs: BTreeMap<String, Arc<Leg>> = ring
            .members()
            .iter()
            .map(|m| (m.clone(), Arc::new(Leg::new(service, margo, m, &config))))
            .collect();
        let fanout_ok = Self::install_fanout(margo, config.fanout_streams);
        let kv = Self {
            service: Arc::clone(service),
            margo: margo.clone(),
            config,
            state: Arc::new(RwLock::new(RouteSnapshot { ring, to_ring: None })),
            legs: Arc::new(RwLock::new(legs)),
            barrier: RwLock::new(()),
            erase_log: Mutex::new(Vec::new()),
            rebalance_lock: Mutex::new(()),
            fanout_ok,
            clock: AtomicU64::new(0),
            stats: Arc::new(ReplicationStats::default()),
            stop: Arc::new(AtomicBool::new(false)),
            drainer: Mutex::new(None),
        };
        if kv.config.replicated() {
            kv.spawn_hint_drainer();
        }
        kv
    }

    /// Spawns the background hint drainer: every `hint_drain_interval`
    /// it lists parked hints on every member and replays them onto their
    /// target (or, if the target left the ring, onto the keys' current
    /// owners). Replays go through put-if-newer, so re-delivery is
    /// harmless.
    fn spawn_hint_drainer(&self) {
        let config = self.config;
        let state = Arc::clone(&self.state);
        let legs = Arc::clone(&self.legs);
        let stats = Arc::clone(&self.stats);
        let stop = Arc::clone(&self.stop);
        let handle = std::thread::Builder::new()
            .name("routed-hint-drainer".into())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(config.hint_drain_interval);
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    hint_drain_pass(&config, &state, &legs, &stats);
                }
            });
        match handle {
            Ok(handle) => *self.drainer.lock() = Some(handle),
            // No thread — hints still drain via fail_member /
            // drain_hints_now; record the degradation.
            Err(_) => {
                self.stats.drain_errors.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Runs one synchronous hint-drain pass and returns how many hints
    /// were replayed. Deterministic alternative to waiting for the
    /// background drainer (tests, admin tooling).
    pub fn drain_hints_now(&self) -> u64 {
        hint_drain_pass(&self.config, &self.state, &self.legs, &self.stats)
    }

    /// Current replication counters (all zero at `replication_factor 1`).
    pub fn replication_stats(&self) -> ReplicationCounters {
        self.stats.snapshot()
    }

    /// Next write version: `max(now_µs, prev + 1)` — unique and monotone
    /// on this coordinator, wall-clock-comparable across coordinators.
    fn next_version(&self) -> u64 {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_micros() as u64);
        let mut prev = self.clock.load(Ordering::Acquire);
        loop {
            let next = now.max(prev + 1);
            match self.clock.compare_exchange_weak(
                prev,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return next,
                Err(current) => prev = current,
            }
        }
    }

    /// Discovers members by the `keyspace:<group>` provider tag across
    /// every service member's reported config, then builds the ring over
    /// them — the Bedrock-config way to wire a routed keyspace.
    ///
    /// Providers may carry a `"keyspace"` object inside their Bedrock
    /// config to tune the keyspace declaratively (the Yokan backend
    /// ignores unknown fields): `replication_factor`, `write_quorum`,
    /// `read_quorum`, `drain_bytes_per_tick`, `drain_tick_ms`, and
    /// `hint_drain_interval_ms` override the corresponding
    /// [`RoutedConfig`] fields; the last tagged provider listing a
    /// setting wins (operators normally set it identically everywhere).
    pub fn for_keyspace(
        service: &Arc<DynamicService>,
        margo: &MargoRuntime,
        group: &str,
        config: RoutedConfig,
    ) -> Result<Self, MargoError> {
        let tag = format!("keyspace:{group}");
        let mut config = config;
        let mut members: Vec<String> = Vec::new();
        for addr in service.addresses() {
            let Some(server) = service.server(&addr) else { continue };
            let process = server.get_config();
            let Some(providers) = process["providers"].as_array() else { continue };
            for provider in providers {
                let tagged = provider["tags"]
                    .as_array()
                    .is_some_and(|tags| tags.iter().any(|t| t.as_str() == Some(&tag)));
                if tagged {
                    if let Some(name) = provider["name"].as_str() {
                        members.push(name.to_string());
                    }
                    apply_keyspace_config(&mut config, &provider["config"]["keyspace"]);
                }
            }
        }
        if members.is_empty() {
            return Err(MargoError::Handler(format!(
                "no providers tagged '{tag}' in the service"
            )));
        }
        Ok(Self::new(service, margo, &members, config))
    }

    /// Installs the fan-out pool + xstreams, tolerating re-installation
    /// (several `RoutedKv` on one runtime share the pool).
    fn install_fanout(margo: &MargoRuntime, streams: usize) -> bool {
        let abt = margo.abt();
        match abt.add_pool(PoolConfig::named(FANOUT_POOL)) {
            Ok(_) | Err(AbtError::PoolExists(_)) => {}
            Err(_) => return false,
        }
        for i in 0..streams.max(1) {
            let xstream = XstreamConfig::named(format!("{FANOUT_POOL}-{i}"), FANOUT_POOL);
            match abt.add_xstream(xstream) {
                Ok(()) | Err(AbtError::XstreamExists(_)) => {}
                Err(_) => return false,
            }
        }
        true
    }

    /// Current members, sorted.
    pub fn members(&self) -> Vec<String> {
        self.state.read().ring.members().to_vec()
    }

    /// Whether a move window is open.
    pub fn rebalancing(&self) -> bool {
        self.state.read().to_ring.is_some()
    }

    fn snapshot(&self) -> RouteSnapshot {
        self.state.read().clone()
    }

    fn leg(&self, member: &str) -> Result<Arc<Leg>, MargoError> {
        self.legs.read().get(member).cloned().ok_or_else(|| {
            MargoError::Handler(format!("no leg for keyspace member '{member}'"))
        })
    }

    fn empty_ring() -> MargoError {
        MargoError::Handler("routed keyspace has no members".into())
    }

    // -----------------------------------------------------------------
    // Scatter-gather
    // -----------------------------------------------------------------

    /// Runs `tasks` concurrently: all but the last are submitted to the
    /// fan-out pool as ULTs, the last runs inline on the caller (the
    /// single-destination case never pays a handoff). Results come back
    /// in task order.
    fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let total = tasks.len();
        if total == 0 {
            return Vec::new();
        }
        if !self.fanout_ok || total == 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        // Tasks live in take-once cells: whoever gets to a cell first —
        // the ULT, or the caller after a failed submit — runs it, so a
        // task executes exactly once even if the pool vanishes under a
        // teardown race.
        struct Gather<T, F> {
            pending: Vec<Mutex<Option<F>>>,
            slots: Mutex<Vec<Option<T>>>,
            done: Condvar,
        }
        impl<T, F: FnOnce() -> T> Gather<T, F> {
            fn run(&self, i: usize) {
                let Some(task) = self.pending[i].lock().take() else { return };
                let value = task();
                self.slots.lock()[i] = Some(value);
                self.done.notify_all();
            }
        }
        let gather: Arc<Gather<T, F>> = Arc::new(Gather {
            pending: tasks.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            slots: Mutex::new((0..total).map(|_| None).collect()),
            done: Condvar::new(),
        });
        for i in 0..total - 1 {
            let leg_gather = Arc::clone(&gather);
            let ult = Ult::new(format!("routed-leg-{i}"), move || leg_gather.run(i));
            if self.margo.abt().submit(FANOUT_POOL, ult).is_err() {
                gather.run(i);
            }
        }
        // The last leg runs inline: the caller contributes its own
        // thread instead of idling, and a single extra destination
        // costs no handoff at all.
        gather.run(total - 1);
        let mut filled = gather.slots.lock();
        while filled.iter().any(Option::is_none) {
            gather.done.wait(&mut filled);
        }
        filled.drain(..).map(|slot| slot.expect("all filled")).collect()
    }

    // -----------------------------------------------------------------
    // Single-key operations
    // -----------------------------------------------------------------

    /// Stores `value` under `key` at its ring owner. During a move
    /// window a moving key dual-writes old then new owner — both must
    /// ack before the put is acked, so the value survives cutover in
    /// either direction.
    ///
    /// Every write holds the barrier shared for its whole duration (the
    /// snapshot included): the rebalance path fences with one exclusive
    /// acquisition after opening the move window, so no write routed
    /// under the steady ring can still be in flight when the drain
    /// starts listing keys.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError> {
        let _shared = self.barrier.read();
        let snap = self.snapshot();
        if self.config.replicated() {
            let records = vec![(key.to_vec(), self.next_version(), Some(value.to_vec()))];
            return match self.quorum_write_multi(&snap, &records).pop() {
                Some(slot) => slot.map(|_existed| ()),
                None => Err(Self::empty_ring()),
            };
        }
        let (owner, moving) = snap.owners(key);
        let owner = owner.ok_or_else(Self::empty_ring)?;
        match moving {
            Some(next) => {
                // Write-through on both legs: a buffered dual-write
                // could ship after the import that must not shadow it.
                self.leg(owner)?.failover.put(key, value)?;
                self.leg(next)?.failover.put(key, value)?;
                // The put supersedes any erase logged earlier in the
                // window — replaying it would clobber this acked write.
                self.erase_log.lock().retain(|logged| logged.as_slice() != key);
                Ok(())
            }
            None => self.leg(owner)?.put(key, value),
        }
    }

    /// Fetches `key` from its owner; during a move window a miss on the
    /// old owner falls through to the new owner (the key may already
    /// have drained).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        let snap = self.snapshot();
        if self.config.replicated() {
            return match self.quorum_read_multi(&snap, &[key.to_vec()]).pop() {
                Some(slot) => slot,
                None => Err(Self::empty_ring()),
            };
        }
        let (owner, moving) = snap.owners(key);
        let owner = owner.ok_or_else(Self::empty_ring)?;
        match self.leg(owner)?.get(key)? {
            Some(value) => Ok(Some(value)),
            None => match moving {
                Some(next) => self.leg(next)?.get(key),
                None => Ok(None),
            },
        }
    }

    /// Whether `key` exists (old-then-new fallback like [`Self::get`]).
    pub fn exists(&self, key: &[u8]) -> Result<bool, MargoError> {
        let snap = self.snapshot();
        if self.config.replicated() {
            return match self.quorum_read_multi(&snap, &[key.to_vec()]).pop() {
                Some(slot) => slot.map(|value| value.is_some()),
                None => Err(Self::empty_ring()),
            };
        }
        let (owner, moving) = snap.owners(key);
        let owner = owner.ok_or_else(Self::empty_ring)?;
        if self.leg(owner)?.exists(key)? {
            return Ok(true);
        }
        match moving {
            Some(next) => self.leg(next)?.exists(key),
            None => Ok(false),
        }
    }

    /// Removes `key`; returns whether it existed anywhere. During a move
    /// window the erase hits both owners and is logged, and the log is
    /// replayed after the slice import — otherwise a put-if-absent
    /// import could resurrect a key erased mid-drain.
    pub fn erase(&self, key: &[u8]) -> Result<bool, MargoError> {
        let _shared = self.barrier.read();
        let snap = self.snapshot();
        if self.config.replicated() {
            // A replicated erase is a versioned *tombstone* write — it
            // must out-version any concurrent put and survive quorum
            // merges, so it takes the exact write path a put takes.
            let records = vec![(key.to_vec(), self.next_version(), None)];
            return match self.quorum_write_multi(&snap, &records).pop() {
                Some(slot) => slot,
                None => Err(Self::empty_ring()),
            };
        }
        let (owner, moving) = snap.owners(key);
        let owner = owner.ok_or_else(Self::empty_ring)?;
        match moving {
            Some(next) => {
                self.erase_log.lock().push(key.to_vec());
                let old = self.leg(owner)?.erase(key)?;
                let new = self.leg(next)?.erase(key)?;
                Ok(old || new)
            }
            None => self.leg(owner)?.erase(key),
        }
    }

    // -----------------------------------------------------------------
    // Replicated quorum I/O (replication_factor > 1)
    // -----------------------------------------------------------------

    /// Replicated write of versioned records (`None` value = tombstone).
    /// Each record fans to its full write set — `rf` serving successors
    /// plus any future owners mid-move — as one batched put-if-newer RPC
    /// per member. A member that fails with a transport-class error gets
    /// its records *hinted* onto the next available successor instead.
    ///
    /// Slot `i` is `Ok(existed)` iff:
    /// * at least one **serving** replica really acked (a quorum of pure
    ///   hints proves nothing durable about the serving set),
    /// * real + hinted coverage of the serving set reaches the write
    ///   quorum `W`, and
    /// * every future owner is covered real-or-hinted (so a cutover in
    ///   either direction keeps the write).
    fn quorum_write_multi(
        &self,
        snap: &RouteSnapshot,
        records: &[(Vec<u8>, u64, Option<Vec<u8>>)],
    ) -> Vec<Result<bool, MargoError>> {
        let rf = self.config.rf();
        let mut slots: Vec<Result<bool, MargoError>> =
            records.iter().map(|_| Ok(false)).collect();
        if snap.ring.is_empty() {
            for slot in &mut slots {
                *slot = Err(Self::empty_ring());
            }
            return slots;
        }
        // Per-record replica sets, and member → record-index batches.
        let sets: Vec<(Vec<String>, Vec<String>)> =
            records.iter().map(|(key, _, _)| snap.write_set(key, rf)).collect();
        let mut batches: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, (serving, future)) in sets.iter().enumerate() {
            for member in serving.iter().chain(future) {
                batches.entry(member.clone()).or_default().push(i);
            }
        }
        let mut tasks = Vec::with_capacity(batches.len());
        let mut routes: Vec<(String, Vec<usize>)> = Vec::with_capacity(batches.len());
        for (dest, indices) in batches {
            let batch: Vec<(Vec<u8>, u64, Option<Vec<u8>>)> =
                indices.iter().map(|&i| records[i].clone()).collect();
            let leg = self.leg(&dest);
            routes.push((dest, indices));
            // Two rounds only: fail fast, the hint machinery absorbs it.
            tasks.push(move || match leg {
                Ok(leg) => leg.vput_multi(&batch, 2),
                Err(err) => Err(err),
            });
        }
        let outcomes = self.scatter(tasks);
        // Bookkeeping: who really acked / is hinted-for, per record.
        let mut real: Vec<Vec<&str>> = records.iter().map(|_| Vec::new()).collect();
        let mut hinted: Vec<Vec<&str>> = records.iter().map(|_| Vec::new()).collect();
        let mut existed: Vec<bool> = records.iter().map(|_| false).collect();
        let mut errors: Vec<Option<MargoError>> = records.iter().map(|_| None).collect();
        let mut down: Vec<&str> = Vec::new();
        let mut failed: Vec<(&str, &[usize], MargoError)> = Vec::new();
        for ((dest, indices), outcome) in routes.iter().zip(outcomes) {
            match outcome {
                Ok(acks) => {
                    for (&i, was_there) in indices.iter().zip(acks) {
                        real[i].push(dest.as_str());
                        existed[i] |= was_there;
                    }
                }
                Err(err) => {
                    if Leg::reroutable(&err) {
                        down.push(dest.as_str());
                        failed.push((dest.as_str(), indices, err));
                    } else {
                        // Application-class error: hinting cannot fix it.
                        for &i in indices {
                            errors[i] = Some(err.clone());
                        }
                    }
                }
            }
        }
        // Hinted handoff: each unreachable member's records park on the
        // next available successor, keyed by the member they belong to.
        for (dest, indices, err) in failed {
            for &i in indices {
                let (key, version, value) = &records[i];
                if self.handoff_hint(snap, dest, &down, key, *version, value.as_deref()) {
                    hinted[i].push(dest);
                } else if errors[i].is_none() {
                    errors[i] = Some(err.clone());
                }
            }
        }
        // Quorum evaluation per record.
        for (i, (serving, future)) in sets.iter().enumerate() {
            if serving.is_empty() {
                slots[i] = Err(Self::empty_ring());
                continue;
            }
            let w = self.config.write_quorum_for(serving.len());
            let real_serving = serving.iter().filter(|m| real[i].contains(&m.as_str())).count();
            let covered_serving = serving
                .iter()
                .filter(|m| {
                    real[i].contains(&m.as_str()) || hinted[i].contains(&m.as_str())
                })
                .count();
            let future_covered = future.iter().all(|m| {
                real[i].contains(&m.as_str()) || hinted[i].contains(&m.as_str())
            });
            if real_serving >= 1 && covered_serving >= w && future_covered {
                slots[i] = Ok(existed[i]);
            } else {
                slots[i] = Err(errors[i].take().unwrap_or_else(|| {
                    MargoError::Handler(format!(
                        "write quorum not met: {covered_serving} of {} covered \
                         ({real_serving} real), need {w}",
                        serving.len()
                    ))
                }));
            }
        }
        slots
    }

    /// Parks `key`'s record on a handoff member as a hint for the
    /// unreachable `target`. Candidates walk the key's full successor
    /// list, skipping `target` and every member already observed down
    /// this round, preferring members *outside* the replica set (they
    /// add an extra durable copy) before falling back to replicas.
    fn handoff_hint(
        &self,
        snap: &RouteSnapshot,
        target: &str,
        down: &[&str],
        key: &[u8],
        version: u64,
        value: Option<&[u8]>,
    ) -> bool {
        let rf = self.config.rf();
        let walk = snap.ring.owners(key, snap.ring.len());
        let candidates = walk
            .iter()
            .skip(rf)
            .chain(walk.iter().take(rf))
            .filter(|m| **m != target && !down.contains(*m));
        for candidate in candidates {
            let Ok(leg) = self.leg(candidate) else { continue };
            match leg.hint_put(target, key, version, value, 2) {
                Ok(true) => {
                    self.stats.hinted_writes.fetch_add(1, Ordering::AcqRel);
                    return true;
                }
                // Full hint store or transport failure: try the next
                // successor.
                Ok(false) | Err(_) => continue,
            }
        }
        false
    }

    /// Replicated read: fan each key to its `rf` serving replicas, wait
    /// for the read quorum, merge freshest-wins (version, then the same
    /// bytewise tie-break the server's put-if-newer uses), and repair
    /// stale or missing replicas asynchronously on the fan-out pool.
    /// Slot `i` resolves the merged record: `Ok(None)` for absent keys
    /// *and* tombstones.
    fn quorum_read_multi(
        &self,
        snap: &RouteSnapshot,
        keys: &[Vec<u8>],
    ) -> Vec<Result<Option<Vec<u8>>, MargoError>> {
        let rf = self.config.rf();
        let mut slots: Vec<Result<Option<Vec<u8>>, MargoError>> =
            keys.iter().map(|_| Err(Self::empty_ring())).collect();
        if snap.ring.is_empty() {
            return slots;
        }
        let sets: Vec<Vec<String>> =
            keys.iter().map(|key| snap.replicas(key, rf)).collect();
        let mut batches: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, owners) in sets.iter().enumerate() {
            for member in owners {
                batches.entry(member.clone()).or_default().push(i);
            }
        }
        let mut tasks = Vec::with_capacity(batches.len());
        let mut routes: Vec<(String, Vec<usize>)> = Vec::with_capacity(batches.len());
        for (dest, indices) in batches {
            let batch: Vec<Vec<u8>> = indices.iter().map(|&i| keys[i].clone()).collect();
            let leg = self.leg(&dest);
            routes.push((dest, indices));
            tasks.push(move || match leg {
                Ok(leg) => leg.vget_multi(&batch, 2),
                Err(err) => Err(err),
            });
        }
        let outcomes = self.scatter(tasks);
        // Per-key replica answers: (member, that replica's record).
        let mut answers: Vec<Vec<(&str, Option<VersionedValue>)>> =
            keys.iter().map(|_| Vec::new()).collect();
        let mut errors: Vec<Option<MargoError>> = keys.iter().map(|_| None).collect();
        for ((dest, indices), outcome) in routes.iter().zip(outcomes) {
            match outcome {
                Ok(values) => {
                    for (&i, value) in indices.iter().zip(values) {
                        answers[i].push((dest.as_str(), value));
                    }
                }
                Err(err) => {
                    for &i in indices {
                        errors[i] = Some(err.clone());
                    }
                }
            }
        }
        // Merge + collect repairs (member → records to push).
        let mut repairs: BTreeMap<String, Vec<(Vec<u8>, u64, Option<Vec<u8>>)>> =
            BTreeMap::new();
        for (i, owners) in sets.iter().enumerate() {
            if owners.is_empty() {
                slots[i] = Err(Self::empty_ring());
                continue;
            }
            let r_q = self.config.read_quorum_for(owners.len());
            if answers[i].len() < r_q {
                slots[i] = Err(errors[i].take().unwrap_or_else(|| {
                    MargoError::Handler(format!(
                        "read quorum not met: {} of {} replicas answered, need {r_q}",
                        answers[i].len(),
                        owners.len()
                    ))
                }));
                continue;
            }
            let winner = answers[i]
                .iter()
                .filter_map(|(_, record)| record.as_ref())
                .max_by(|a, b| Self::freshness(a).cmp(&Self::freshness(b)));
            let Some(winner) = winner else {
                slots[i] = Ok(None); // every replica agrees: no record
                continue;
            };
            let winner = winner.clone();
            for (member, record) in &answers[i] {
                let stale = record.as_ref() != Some(&winner);
                if stale {
                    let value =
                        (!winner.tombstone).then(|| winner.value.clone());
                    repairs.entry((*member).to_string()).or_default().push((
                        keys[i].clone(),
                        winner.version,
                        value,
                    ));
                }
            }
            slots[i] = Ok((!winner.tombstone).then(|| winner.value.clone()));
        }
        self.spawn_repairs(repairs);
        slots
    }

    /// Freshness key mirroring the server's `record_is_newer` tie-break:
    /// version first, then the encoded-record bytewise order (flag byte,
    /// then value bytes).
    fn freshness(record: &VersionedValue) -> (u64, bool, &[u8]) {
        (record.version, record.tombstone, record.value.as_slice())
    }

    /// Pushes read-repair records to stale replicas as fire-and-forget
    /// ULTs on the fan-out pool (one per member). Failures are counted,
    /// not retried — the next read of the key repairs again, and the
    /// anti-entropy of put-if-newer makes duplicate repairs harmless.
    fn spawn_repairs(&self, repairs: BTreeMap<String, Vec<(Vec<u8>, u64, Option<Vec<u8>>)>>) {
        for (member, batch) in repairs {
            let count = batch.len() as u64;
            self.stats.read_repairs.fetch_add(count, Ordering::AcqRel);
            let Ok(leg) = self.leg(&member) else {
                self.stats.repair_failures.fetch_add(count, Ordering::AcqRel);
                continue;
            };
            let stats = Arc::clone(&self.stats);
            let repair = move || {
                if leg.vput_multi(&batch, 1).is_err() {
                    stats.repair_failures.fetch_add(count, Ordering::AcqRel);
                }
            };
            if self.fanout_ok {
                let ult = Ult::new("routed-read-repair".to_string(), repair);
                if self.margo.abt().submit(FANOUT_POOL, ult).is_err() {
                    // The closure is consumed by the failed submit; the
                    // repair is lost until the next read finds the gap.
                    self.stats.repair_failures.fetch_add(count, Ordering::AcqRel);
                }
            } else {
                repair();
            }
        }
    }

    // -----------------------------------------------------------------
    // Multi-key operations (scatter-gather)
    // -----------------------------------------------------------------

    /// Splits `keys` into per-destination batches under the snapshot: a
    /// stable key lands in its owner's batch, a moving key in both
    /// owners' batches (dual write). Returns member → key indices.
    fn write_batches<K: AsRef<[u8]>>(
        snap: &RouteSnapshot,
        keys: &[K],
    ) -> BTreeMap<String, Vec<usize>> {
        let mut by_dest: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, key) in keys.iter().enumerate() {
            let (owner, moving) = snap.owners(key.as_ref());
            if let Some(owner) = owner {
                by_dest.entry(owner.to_string()).or_default().push(i);
            }
            if let Some(next) = moving {
                by_dest.entry(next.to_string()).or_default().push(i);
            }
        }
        by_dest
    }

    /// Stores many pairs, one concurrent batched RPC per destination.
    /// Partial-failure contract: slot `i` is `Ok` only if *every* leg
    /// holding key `i` acked its batch (during a move a moving key needs
    /// both owners); a failed leg fails exactly its own keys' slots.
    /// Slots that fail with a *transport-class* error retry once against
    /// a fresh routing snapshot before being reported — a breaker that
    /// opened (or a cutover that landed) mid-fan-out reroutes instead of
    /// failing the whole slot.
    pub fn put_multi(&self, pairs: &[(&[u8], &[u8])]) -> Vec<Result<(), MargoError>> {
        let _shared = self.barrier.read();
        let snap = self.snapshot();
        if snap.ring.is_empty() {
            return pairs.iter().map(|_| Err(Self::empty_ring())).collect();
        }
        if self.config.replicated() {
            let records: Vec<(Vec<u8>, u64, Option<Vec<u8>>)> = pairs
                .iter()
                .map(|(k, v)| (k.to_vec(), self.next_version(), Some(v.to_vec())))
                .collect();
            return self
                .quorum_write_multi(&snap, &records)
                .into_iter()
                .map(|slot| slot.map(|_existed| ()))
                .collect();
        }
        let keys: Vec<&[u8]> = pairs.iter().map(|(k, _)| *k).collect();
        let mut slots: Vec<Result<(), MargoError>> =
            pairs.iter().map(|_| Ok(())).collect();
        self.put_round(pairs, &snap, (0..pairs.len()).collect(), &mut slots);
        // Reroute round: a fresh snapshot re-resolves keys whose leg
        // failed with a reroutable error (stale breaker / moved owner).
        let retry: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| matches!(slot, Err(err) if Leg::reroutable(err)))
            .map(|(i, _)| i)
            .collect();
        let snap = if retry.is_empty() {
            snap
        } else {
            let fresh = self.snapshot();
            for &i in &retry {
                slots[i] = Ok(()); // re-armed; the round below re-fails it
            }
            self.put_round(pairs, &fresh, retry, &mut slots);
            fresh
        };
        // Acked puts supersede earlier logged erases of the same key.
        if snap.to_ring.is_some() {
            self.erase_log.lock().retain(|logged| {
                !pairs.iter().enumerate().any(|(i, (key, _))| {
                    slots[i].is_ok() && *key == logged.as_slice()
                })
            });
        }
        slots
    }

    /// One put fan-out round over `subset` (indices into `pairs`),
    /// merging failures into `slots`.
    fn put_round(
        &self,
        pairs: &[(&[u8], &[u8])],
        snap: &RouteSnapshot,
        subset: Vec<usize>,
        slots: &mut [Result<(), MargoError>],
    ) {
        let subset_keys: Vec<&[u8]> = subset.iter().map(|&i| pairs[i].0).collect();
        let by_dest: BTreeMap<String, Vec<usize>> = Self::write_batches(snap, &subset_keys)
            .into_iter()
            .map(|(dest, local)| (dest, local.into_iter().map(|j| subset[j]).collect()))
            .collect();
        let mut tasks = Vec::with_capacity(by_dest.len());
        let mut routes: Vec<Vec<usize>> = Vec::with_capacity(by_dest.len());
        for (dest, indices) in by_dest {
            let batch: Vec<(Vec<u8>, Vec<u8>)> = indices
                .iter()
                .map(|&i| (pairs[i].0.to_vec(), pairs[i].1.to_vec()))
                .collect();
            let leg = self.leg(&dest);
            routes.push(indices);
            tasks.push(move || match leg {
                Ok(leg) => leg.put_multi(&batch),
                Err(err) => Err(err),
            });
        }
        for (indices, outcome) in routes.iter().zip(self.scatter(tasks)) {
            if let Err(err) = outcome {
                for &i in indices {
                    if slots[i].is_ok() {
                        slots[i] = Err(err.clone());
                    }
                }
            }
        }
    }

    /// Fetches many values, one concurrent batched RPC per owner, with
    /// per-key error slots. During a move window, keys the old owner
    /// misses retry on their new owner in a second fan-out round; keys
    /// whose leg failed with a transport-class error retry once against
    /// a fresh routing snapshot (stale-breaker reroute).
    pub fn get_multi(&self, keys: &[&[u8]]) -> Vec<Result<Option<Vec<u8>>, MargoError>> {
        let snap = self.snapshot();
        if self.config.replicated() {
            let owned: Vec<Vec<u8>> = keys.iter().map(|k| k.to_vec()).collect();
            return self.quorum_read_multi(&snap, &owned);
        }
        let mut slots: Vec<Result<Option<Vec<u8>>, MargoError>> =
            keys.iter().map(|_| Err(Self::empty_ring())).collect();
        // Round 1: serving owners only.
        let mut primary: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, key) in keys.iter().enumerate() {
            if let Some(owner) = snap.ring.owner(key) {
                primary.entry(owner.to_string()).or_default().push(i);
            }
        }
        self.gather_gets(keys, primary, &mut slots);
        // Round 2: moving keys the old owner missed.
        if snap.to_ring.is_some() {
            let mut fallback: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            for (i, key) in keys.iter().enumerate() {
                if matches!(slots[i], Ok(None)) {
                    if let (_, Some(next)) = snap.owners(key) {
                        fallback.entry(next.to_string()).or_default().push(i);
                    }
                }
            }
            if !fallback.is_empty() {
                self.gather_gets(keys, fallback, &mut slots);
            }
        }
        // Round 3 (reroute): transport-failed slots retry once under a
        // fresh snapshot — the serving owner may have moved, or the
        // failed leg's breaker opened mid-fan-out.
        let failed: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| matches!(slot, Err(err) if Leg::reroutable(err)))
            .map(|(i, _)| i)
            .collect();
        if !failed.is_empty() {
            let fresh = self.snapshot();
            let mut retry: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            for i in failed {
                if let Some(owner) = fresh.ring.owner(keys[i]) {
                    retry.entry(owner.to_string()).or_default().push(i);
                }
            }
            self.gather_gets(keys, retry, &mut slots);
        }
        slots
    }

    /// One fan-out round of batched gets, merging results into `slots`.
    fn gather_gets(
        &self,
        keys: &[&[u8]],
        batches: BTreeMap<String, Vec<usize>>,
        slots: &mut [Result<Option<Vec<u8>>, MargoError>],
    ) {
        let mut tasks = Vec::with_capacity(batches.len());
        let mut routes: Vec<Vec<usize>> = Vec::with_capacity(batches.len());
        for (dest, indices) in batches {
            let batch: Vec<Vec<u8>> = indices.iter().map(|&i| keys[i].to_vec()).collect();
            let leg = self.leg(&dest);
            routes.push(indices);
            tasks.push(move || match leg {
                Ok(leg) => leg.get_multi(&batch),
                Err(err) => Err(err),
            });
        }
        for (indices, outcome) in routes.iter().zip(self.scatter(tasks)) {
            match outcome {
                Ok(values) => {
                    for (&i, value) in indices.iter().zip(values) {
                        slots[i] = Ok(value);
                    }
                }
                Err(err) => {
                    for &i in indices {
                        slots[i] = Err(err.clone());
                    }
                }
            }
        }
    }

    /// Removes many keys with per-key slots (`Ok(existed)`), batching
    /// per destination. Moving keys erase on both owners and are logged
    /// for replay, like [`Self::erase`]. Transport-failed slots retry
    /// once against a fresh routing snapshot.
    pub fn erase_multi(&self, keys: &[&[u8]]) -> Vec<Result<bool, MargoError>> {
        // Erase has per-key replies only in its single-key form, so the
        // batched surface degrades to one fan-out of single erases per
        // destination leg — still one concurrent leg per destination.
        let _shared = self.barrier.read();
        let snap = self.snapshot();
        if snap.ring.is_empty() {
            return keys.iter().map(|_| Err(Self::empty_ring())).collect();
        }
        if self.config.replicated() {
            let records: Vec<(Vec<u8>, u64, Option<Vec<u8>>)> = keys
                .iter()
                .map(|k| (k.to_vec(), self.next_version(), None))
                .collect();
            return self.quorum_write_multi(&snap, &records);
        }
        let mut slots: Vec<Result<bool, MargoError>> =
            keys.iter().map(|_| Ok(false)).collect();
        self.erase_round(keys, &snap, (0..keys.len()).collect(), &mut slots);
        // Reroute round for transport-failed slots (fresh snapshot).
        let retry: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| matches!(slot, Err(err) if Leg::reroutable(err)))
            .map(|(i, _)| i)
            .collect();
        if !retry.is_empty() {
            let fresh = self.snapshot();
            for &i in &retry {
                slots[i] = Ok(false); // re-armed; the round re-fails it
            }
            self.erase_round(keys, &fresh, retry, &mut slots);
        }
        slots
    }

    /// One erase fan-out round over `subset` (indices into `keys`),
    /// logging moving keys and merging outcomes into `slots`.
    fn erase_round(
        &self,
        keys: &[&[u8]],
        snap: &RouteSnapshot,
        subset: Vec<usize>,
        slots: &mut [Result<bool, MargoError>],
    ) {
        if snap.to_ring.is_some() {
            let mut log = self.erase_log.lock();
            for &i in &subset {
                let (_, moving) = snap.owners(keys[i]);
                if moving.is_some() {
                    log.push(keys[i].to_vec());
                }
            }
        }
        let subset_keys: Vec<&[u8]> = subset.iter().map(|&i| keys[i]).collect();
        let by_dest: BTreeMap<String, Vec<usize>> = Self::write_batches(snap, &subset_keys)
            .into_iter()
            .map(|(dest, local)| (dest, local.into_iter().map(|j| subset[j]).collect()))
            .collect();
        let mut tasks = Vec::with_capacity(by_dest.len());
        let mut routes: Vec<Vec<usize>> = Vec::with_capacity(by_dest.len());
        for (dest, indices) in by_dest {
            let batch: Vec<Vec<u8>> = indices.iter().map(|&i| keys[i].to_vec()).collect();
            let leg = self.leg(&dest);
            routes.push(indices);
            tasks.push(move || -> Vec<Result<bool, MargoError>> {
                match leg {
                    Ok(leg) => batch.iter().map(|k| leg.erase(k)).collect(),
                    Err(err) => batch.iter().map(|_| Err(err.clone())).collect(),
                }
            });
        }
        for (indices, outcome) in routes.iter().zip(self.scatter(tasks)) {
            for (&i, result) in indices.iter().zip(outcome) {
                slots[i] = match (std::mem::replace(&mut slots[i], Ok(false)), result) {
                    (Ok(prev), Ok(existed)) => Ok(prev || existed),
                    (Ok(_), Err(err)) => Err(err),
                    (prev @ Err(_), _) => prev,
                };
            }
        }
    }

    /// Lists up to `max` keys with `prefix` after `start_after`, merging
    /// the per-member result streams into one sorted, deduplicated view
    /// (dual copies exist mid-move; dedup hides them). In replicated
    /// mode the merged page is quorum-read to drop tombstoned keys, so a
    /// page can come back shorter than `max` while more keys remain —
    /// keep paginating until an *empty* page.
    pub fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, MargoError> {
        let raw = self.merged_keys(prefix, start_after, max)?;
        if !self.config.replicated() {
            return Ok(raw);
        }
        self.filter_live(raw)
    }

    /// Raw merged key listing across members (replica copies deduped,
    /// tombstones *included* — replicas store them as records).
    fn merged_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, MargoError> {
        let snap = self.snapshot();
        let mut members = snap.ring.members().to_vec();
        if let Some(to) = &snap.to_ring {
            members.extend(to.members().iter().cloned());
            members.sort();
            members.dedup();
        }
        let mut tasks = Vec::with_capacity(members.len());
        for member in &members {
            let leg = self.leg(member);
            let prefix = prefix.to_vec();
            let start_after = start_after.map(<[u8]>::to_vec);
            tasks.push(move || match leg {
                Ok(leg) => leg.list_keys(&prefix, start_after.as_deref(), max),
                Err(err) => Err(err),
            });
        }
        let mut merged: Vec<Vec<u8>> = Vec::new();
        for outcome in self.scatter(tasks) {
            merged.extend(outcome?);
        }
        merged.sort();
        merged.dedup();
        merged.truncate(max);
        Ok(merged)
    }

    /// Drops keys whose quorum-merged record is a tombstone (or gone).
    fn filter_live(&self, keys: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, MargoError> {
        if keys.is_empty() {
            return Ok(keys);
        }
        let snap = self.snapshot();
        let outcomes = self.quorum_read_multi(&snap, &keys);
        let mut live = Vec::with_capacity(keys.len());
        for (key, outcome) in keys.into_iter().zip(outcomes) {
            if outcome?.is_some() {
                live.push(key);
            }
        }
        Ok(live)
    }

    /// Total keys across the keyspace. At `replication_factor 1` this is
    /// one concurrent `len` per member (mid-move the count can include
    /// dual copies — exact again once the post-cutover cleanup
    /// finishes). Replicated mode must discount replica copies and
    /// tombstones, so it degrades to an O(n) paged scan with quorum
    /// reads — treat it as an admin/debug operation there.
    pub fn len(&self) -> Result<u64, MargoError> {
        if self.config.replicated() {
            let mut total = 0u64;
            let mut cursor: Option<Vec<u8>> = None;
            loop {
                let raw = self.merged_keys(b"", cursor.as_deref(), self.config.drain_batch)?;
                let Some(last) = raw.last() else { break };
                cursor = Some(last.clone());
                total += self.filter_live(raw)?.len() as u64;
            }
            return Ok(total);
        }
        let members = self.members();
        let mut tasks = Vec::with_capacity(members.len());
        for member in &members {
            let leg = self.leg(member);
            tasks.push(move || match leg {
                Ok(leg) => leg.len(),
                Err(err) => Err(err),
            });
        }
        let mut total = 0u64;
        for outcome in self.scatter(tasks) {
            total += outcome?;
        }
        Ok(total)
    }

    /// Whether the keyspace holds no keys.
    pub fn is_empty(&self) -> Result<bool, MargoError> {
        Ok(self.len()? == 0)
    }

    /// Ships every leg's coalesced writes.
    pub fn sync(&self) -> Result<(), MargoError> {
        let legs: Vec<Arc<Leg>> = self.legs.read().values().cloned().collect();
        for leg in legs {
            leg.sync()?;
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Live rebalance
    // -----------------------------------------------------------------

    /// Adds `member` (an existing Yokan provider) to the ring and drains
    /// the minimal moved-slice set to it while traffic continues.
    ///
    /// Protocol (all while ops keep flowing):
    ///
    /// 1. **Open the move window.** Routing snapshots now carry both
    ///    rings: writes to moving keys dual-write, reads fall back
    ///    old-then-new, erases log themselves.
    /// 2. **Drain.** Per source member, page through its keys, keep the
    ///    ones whose owner changes ([`HashRing::moved_arcs`] minimality:
    ///    only arcs adjacent to the new member's points move), and ship
    ///    them per destination: `slice_export` spills the pairs on the
    ///    source and pushes the file through REMI into the destination
    ///    provider's directory; `slice_import` (under the exclusive
    ///    write barrier) loads them *put-if-absent*, so a dual-written
    ///    value newer than the export snapshot always wins.
    /// 3. **Cutover.** Under the exclusive barrier: replay the erase
    ///    log on the new owners, swap the serving ring, close the
    ///    window.
    /// 4. **Cleanup.** Source copies of moved keys are now stale (reads
    ///    no longer route to them) — erase them batch-wise.
    pub fn join(&self, member: &str) -> Result<RebalanceReport, MargoError> {
        let to_ring = {
            let snap = self.state.read();
            if snap.ring.contains(member) {
                return Err(MargoError::Handler(format!(
                    "'{member}' is already a keyspace member"
                )));
            }
            snap.ring.with_member(member)
        };
        self.rebalance_to(to_ring)
    }

    /// Removes `member` from the ring, draining everything it owns to
    /// the surviving members (same protocol as [`Self::join`]), then
    /// clears the provider. The provider itself keeps running — retiring
    /// it from the keyspace is independent of stopping its process.
    pub fn retire(&self, member: &str) -> Result<RebalanceReport, MargoError> {
        let to_ring = {
            let snap = self.state.read();
            if !snap.ring.contains(member) {
                return Err(MargoError::Handler(format!(
                    "'{member}' is not a keyspace member"
                )));
            }
            if snap.ring.len() == 1 {
                return Err(MargoError::Handler(
                    "cannot retire the last keyspace member".into(),
                ));
            }
            snap.ring.without_member(member)
        };
        self.rebalance_to(to_ring)
    }

    /// Picks the least-loaded service node (Pufferscale placement over
    /// the live provider weights) to host a joining provider.
    pub fn plan_host(&self, weights: &Weights) -> Option<Address> {
        let placement = self.service.placement();
        placement.least_loaded(weights)?.parse().ok()
    }

    /// Starts `spec` on `host` (or on the Pufferscale-chosen least
    /// loaded node when `None`) and joins it to the keyspace.
    pub fn join_provider(
        &self,
        spec: &ProviderSpec,
        host: Option<&Address>,
    ) -> Result<RebalanceReport, MargoError> {
        let host = match host {
            Some(addr) => addr.clone(),
            None => self
                .plan_host(&Weights::default())
                .ok_or_else(|| MargoError::Handler("no service node to host provider".into()))?,
        };
        let server = self
            .service
            .server(&host)
            .ok_or_else(|| MargoError::Handler(format!("{host} is not a service member")))?;
        server
            .start_provider(spec)
            .map_err(|e| MargoError::Handler(format!("start provider: {e}")))?;
        self.join(&spec.name)
    }

    fn rebalance_to(&self, to_ring: HashRing) -> Result<RebalanceReport, MargoError> {
        let _coordinator = self.rebalance_lock.lock();
        let from_ring = self.state.read().ring.clone();
        // Legs for joining members must exist before the window opens
        // (dual writes route to them immediately).
        {
            let mut legs = self.legs.write();
            for member in to_ring.members() {
                legs.entry(member.clone()).or_insert_with(|| {
                    Arc::new(Leg::new(&self.service, &self.margo, member, &self.config))
                });
            }
        }
        // Ship coalesced writes so the server-side listings see them —
        // only the members whose arcs the rebalance touches need the
        // flush (ring-aware: an untouched member's buffered writes are
        // invisible to this drain).
        self.sync_affected(&from_ring, &to_ring)?;
        // Open the move window.
        self.erase_log.lock().clear();
        self.state.write().to_ring = Some(to_ring.clone());
        // Epoch fence: writes hold the barrier shared across snapshot
        // and RPCs, so one exclusive acquisition here waits out every
        // write still routing under the steady ring — after this, all
        // in-flight writes dual-write, and the drain's listings cannot
        // miss a single-owner write that landed behind an export.
        drop(self.barrier.write());
        let throttle = Throttle::new(&self.config);
        let result = self.drain(&from_ring, &to_ring, &throttle);
        if result.is_err() {
            // Close the window; copied keys on the target are harmless
            // (reads route by the serving ring) and a later successful
            // rebalance's put-if-absent import + cleanup reconciles them.
            self.state.write().to_ring = None;
        }
        let mut report = result?;
        // Cutover: replay erases, swap rings — atomically w.r.t. writes.
        {
            let _exclusive = self.barrier.write();
            let log = std::mem::take(&mut *self.erase_log.lock());
            report.replayed_erases = log.len() as u64;
            if !log.is_empty() {
                let mut by_dest: BTreeMap<&str, Vec<Vec<u8>>> = BTreeMap::new();
                for key in &log {
                    if let Some(owner) = to_ring.owner(key) {
                        by_dest.entry(owner).or_default().push(key.clone());
                    }
                }
                for (dest, batch) in by_dest {
                    self.leg(dest)?.erase_multi(&batch)?;
                }
            }
            let mut snap = self.state.write();
            snap.ring = to_ring.clone();
            snap.to_ring = None;
        }
        report.erased_stale = self.cleanup(&from_ring, &to_ring)?;
        // Drop legs of members that left the ring.
        self.legs.write().retain(|name, _| to_ring.contains(name));
        Ok(report)
    }

    /// Flushes the coalescers of exactly the members a rebalance
    /// touches: at `replication_factor 1` the union of `from`/`to` ends
    /// of every moved arc; replicated mode flushes everything (replica
    /// sets shift near every arc — and its write path never buffers, so
    /// "everything" is a set of no-ops).
    fn sync_affected(
        &self,
        from_ring: &HashRing,
        to_ring: &HashRing,
    ) -> Result<(), MargoError> {
        if self.config.replicated() {
            return self.sync();
        }
        let mut affected: Vec<String> = from_ring
            .moved_arcs(to_ring)
            .into_iter()
            .flat_map(|arc| [arc.from, arc.to])
            .collect();
        affected.sort();
        affected.dedup();
        for member in &affected {
            // A joiner's leg exists by now (pre-created above); a member
            // unknown to the map has no coalescer to flush.
            if let Ok(leg) = self.leg(member) {
                leg.sync()?;
            }
        }
        Ok(())
    }

    /// Pages through every source member's keys and drains the moved
    /// ones, slice by slice, to their new owners. With replication each
    /// key's *primary* old owner pushes to every new-owner-set member
    /// that is not already a replica.
    fn drain(
        &self,
        from_ring: &HashRing,
        to_ring: &HashRing,
        throttle: &Throttle,
    ) -> Result<RebalanceReport, MargoError> {
        let rf = self.config.rf();
        let mut report = RebalanceReport::default();
        for member in from_ring.members() {
            let source = self.leg(member)?;
            let mut start_after: Option<Vec<u8>> = None;
            loop {
                let page =
                    source.list_keys(b"", start_after.as_deref(), self.config.drain_batch)?;
                let Some(last) = page.last() else { break };
                start_after = Some(last.clone());
                let mut by_dest: BTreeMap<&str, Vec<Vec<u8>>> = BTreeMap::new();
                for key in &page {
                    let old_owners = from_ring.owners(key, rf);
                    if old_owners.first().copied() != Some(member.as_str()) {
                        continue; // stale copy, or a non-primary replica
                    }
                    for dest in to_ring.owners(key, rf) {
                        if !old_owners.contains(&dest) {
                            by_dest.entry(dest).or_default().push(key.clone());
                        }
                    }
                }
                for (dest, keys) in by_dest {
                    report.moved_keys += keys.len() as u64;
                    report.slices += 1;
                    self.drain_slice(&source, member, dest, &keys, throttle)?;
                }
            }
        }
        Ok(report)
    }

    /// Ships one slice of keys from `member` to `dest`: REMI-backed
    /// export on the source, put-if-absent (put-if-newer when the
    /// keyspace is replicated and stores versioned records) import on
    /// the destination under the exclusive write barrier. Transfers are
    /// charged against the rebalance throttle's byte budget.
    fn drain_slice(
        &self,
        source: &Leg,
        member: &str,
        dest: &str,
        keys: &[Vec<u8>],
        throttle: &Throttle,
    ) -> Result<(), MargoError> {
        let dest_leg = self.leg(dest)?;
        let (dest_addr, _) = dest_leg.failover.resolve().ok_or_else(|| {
            MargoError::Handler(format!("cannot resolve keyspace member '{dest}'"))
        })?;
        let tag = format!("mv{}-{member}-to-{dest}", unique_u64());
        let dest_subdir = format!("providers/{dest}/slices/{tag}");
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let exported = source.failover.with_handle(|h| {
            h.slice_export(&refs, &tag, &dest_addr, REMI_PROVIDER_ID, &dest_subdir)
        })?;
        throttle.consume(exported.bytes);
        let versioned = self.config.replicated();
        // Exclusive barrier: no dual-write may interleave with the
        // import, so "absent" on the destination is authoritative (and
        // the versioned compare races with nothing).
        let _exclusive = self.barrier.write();
        dest_leg.failover.with_handle(|h| h.slice_import(&tag, versioned))?;
        // Erases logged before this import exported a pre-erase
        // snapshot of these keys; replay them on the destination now so
        // the import cannot resurrect them even transiently. (The
        // cutover replay still covers erases that arrive later.)
        let logged: Vec<Vec<u8>> = {
            let in_slice: std::collections::BTreeSet<&[u8]> =
                keys.iter().map(Vec::as_slice).collect();
            let log = self.erase_log.lock();
            log.iter().filter(|k| in_slice.contains(k.as_slice())).cloned().collect()
        };
        if !logged.is_empty() {
            dest_leg.erase_multi(&logged)?;
        }
        Ok(())
    }

    /// Erases post-cutover stale source copies: keys a surviving member
    /// still stores but no longer owns (at `replication_factor > 1`: is
    /// no longer in the owner *set* of). The retired member (absent from
    /// the new ring) is swept the same way — it owns nothing anymore, so
    /// everything it stores goes.
    fn cleanup(&self, from_ring: &HashRing, to_ring: &HashRing) -> Result<u64, MargoError> {
        let rf = self.config.rf();
        let mut erased = 0u64;
        for member in from_ring.members() {
            let leg = self.leg(member).or_else(|_| -> Result<_, MargoError> {
                // Retired member: its leg may already be dropped from
                // the map on a repeat cleanup; build a transient one.
                Ok(Arc::new(Leg::new(&self.service, &self.margo, member, &self.config)))
            })?;
            let mut start_after: Option<Vec<u8>> = None;
            loop {
                let page = leg.list_keys(b"", start_after.as_deref(), self.config.drain_batch)?;
                let Some(last) = page.last() else { break };
                start_after = Some(last.clone());
                let stale: Vec<Vec<u8>> = page
                    .iter()
                    .filter(|key| !to_ring.owners(key, rf).contains(&member.as_str()))
                    .cloned()
                    .collect();
                if !stale.is_empty() {
                    erased += leg.erase_multi(&stale)?;
                }
            }
        }
        Ok(erased)
    }

    // -----------------------------------------------------------------
    // Provider death (replicated mode)
    // -----------------------------------------------------------------

    /// Retires a *dead* member from the keyspace **without draining it**
    /// — the explicit provider-death path. Requires `replication_factor
    /// > 1`: every key the dead member served still has `rf - 1` live
    /// replicas, so quorum reads and writes keep working throughout; the
    /// only follow-up is a re-replication catch-up restoring the `rf`-th
    /// copy from the survivors.
    ///
    /// Protocol:
    ///
    /// 1. Swap the serving ring to `ring ∖ member` immediately. No move
    ///    window opens — there is nothing to drain from a corpse.
    /// 2. Epoch-fence on the write barrier: every write still fanning
    ///    under the old ring completes first (its share on the dead
    ///    member either landed — unreadable now, but re-replicated from
    ///    a survivor below — or was hinted onto a live successor).
    /// 3. Catch-up: each affected key's first surviving replica pushes
    ///    the record to the members that joined its owner set, via
    ///    put-if-newer, under the rebalance byte-budget throttle.
    /// 4. Replay hints: writes parked *for* the dead member while it was
    ///    flapping re-route to the keys' current owner sets.
    ///
    /// For draining a *live* member out of the keyspace, use
    /// [`Self::retire`].
    pub fn fail_member(&self, member: &str) -> Result<CatchUpReport, MargoError> {
        if !self.config.replicated() {
            return Err(MargoError::Handler(
                "fail_member requires replication_factor > 1 \
                 (an unreplicated member's data exists nowhere else; \
                 use retire() to drain a live member)"
                    .into(),
            ));
        }
        let _coordinator = self.rebalance_lock.lock();
        let (from_ring, to_ring) = {
            let snap = self.state.read();
            if !snap.ring.contains(member) {
                return Err(MargoError::Handler(format!(
                    "'{member}' is not a keyspace member"
                )));
            }
            if snap.ring.len() == 1 {
                return Err(MargoError::Handler(
                    "cannot fail the last keyspace member".into(),
                ));
            }
            if snap.to_ring.is_some() {
                return Err(MargoError::Handler(
                    "cannot fail a member while a rebalance window is open".into(),
                ));
            }
            (snap.ring.clone(), snap.ring.without_member(member))
        };
        self.state.write().ring = to_ring.clone();
        self.legs.write().remove(member);
        // Epoch fence (see step 2 above).
        drop(self.barrier.write());
        let throttle = Throttle::new(&self.config);
        let mut report = self.catch_up(&from_ring, &to_ring, member, &throttle)?;
        report.replayed_hints = self.drain_hints_now();
        Ok(report)
    }

    /// Restores the replication factor after [`Self::fail_member`]: for
    /// every key that counted `dead` among its `rf` owners, the first
    /// *surviving* old replica (exactly one per key — dedup by
    /// designation, not by probing) pushes its record to the members
    /// that entered the key's new owner set. Push is put-if-newer, so
    /// racing foreground writes and hint replays all converge.
    fn catch_up(
        &self,
        from_ring: &HashRing,
        to_ring: &HashRing,
        dead: &str,
        throttle: &Throttle,
    ) -> Result<CatchUpReport, MargoError> {
        let rf = self.config.rf();
        let mut report = CatchUpReport::default();
        for member in to_ring.members() {
            let leg = self.leg(member)?;
            let mut start_after: Option<Vec<u8>> = None;
            loop {
                let page =
                    leg.list_keys(b"", start_after.as_deref(), self.config.drain_batch)?;
                let Some(last) = page.last() else { break };
                start_after = Some(last.clone());
                // Keys this member is the designated repairer of.
                let mut repair: Vec<(Vec<u8>, Vec<String>)> = Vec::new();
                for key in &page {
                    let old_owners = from_ring.owners(key, rf);
                    if !old_owners.contains(&dead) {
                        continue;
                    }
                    let pusher = old_owners.iter().find(|m| **m != dead).copied();
                    if pusher != Some(member.as_str()) {
                        continue;
                    }
                    let targets: Vec<String> = to_ring
                        .owners(key, rf)
                        .into_iter()
                        .filter(|m| !old_owners.contains(m))
                        .map(str::to_string)
                        .collect();
                    if !targets.is_empty() {
                        repair.push((key.clone(), targets));
                    }
                }
                if repair.is_empty() {
                    continue;
                }
                let keys: Vec<Vec<u8>> = repair.iter().map(|(k, _)| k.clone()).collect();
                let records = leg.vget_multi(&keys, self.config.leg_max_rounds)?;
                let mut by_target: BTreeMap<String, Vec<(Vec<u8>, u64, Option<Vec<u8>>)>> =
                    BTreeMap::new();
                for ((key, targets), record) in repair.into_iter().zip(records) {
                    // A vanished record means a fresher erase+cleanup won;
                    // nothing to re-replicate.
                    let Some(record) = record else { continue };
                    let value = (!record.tombstone).then_some(record.value);
                    for target in targets {
                        by_target.entry(target).or_default().push((
                            key.clone(),
                            record.version,
                            value.clone(),
                        ));
                    }
                }
                for (target, batch) in by_target {
                    let bytes: u64 = batch
                        .iter()
                        .map(|(key, _, value)| {
                            (key.len()
                                + value.as_ref().map_or(0, Vec::len)
                                + mochi_yokan::version::RECORD_OVERHEAD)
                                as u64
                        })
                        .sum();
                    throttle.consume(bytes);
                    // Patient rounds: this is recovery, not a quorum leg.
                    self.leg(&target)?.vput_multi(&batch, self.config.leg_max_rounds)?;
                    report.recopied_keys += batch.len() as u64;
                    report.recopied_bytes += bytes;
                }
            }
        }
        Ok(report)
    }
}

impl Drop for RoutedKv {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(drainer) = self.drainer.lock().take() {
            if drainer.join().is_err() {
                self.stats.drain_errors.fetch_add(1, Ordering::AcqRel);
            }
        }
    }
}

/// One hint-drain pass over every member (shared by the background
/// drainer thread, [`RoutedKv::drain_hints_now`], and
/// [`RoutedKv::fail_member`]): replay parked hints onto their target —
/// or, when the target left the ring, onto each key's current owner set
/// — then drop the replayed hints at the holder. Replays are
/// put-if-newer, so re-delivery is idempotent; any error leaves the
/// hint parked for the next pass. Returns the number of hints replayed.
fn hint_drain_pass(
    config: &RoutedConfig,
    state: &RwLock<RouteSnapshot>,
    legs: &RwLock<BTreeMap<String, Arc<Leg>>>,
    stats: &ReplicationStats,
) -> u64 {
    /// Hints listed per holder per pass (a busy holder drains over
    /// several passes rather than monopolizing one).
    const HINT_PAGE: usize = 1024;
    let snap = state.read().clone();
    let holders: Vec<(String, Arc<Leg>)> =
        legs.read().iter().map(|(name, leg)| (name.clone(), Arc::clone(leg))).collect();
    let mut replayed = 0u64;
    for (_, holder) in &holders {
        let hints = match holder.hint_list(HINT_PAGE, 2) {
            Ok(hints) => hints,
            Err(_) => {
                stats.drain_errors.fetch_add(1, Ordering::AcqRel);
                continue;
            }
        };
        if hints.is_empty() {
            continue;
        }
        let mut by_target: BTreeMap<String, Vec<HintEntry>> = BTreeMap::new();
        for hint in hints {
            by_target.entry(hint.target.clone()).or_default().push(hint);
        }
        for (target, entries) in by_target {
            let mut shipped: Vec<HintDropEntry> = Vec::new();
            if snap.ring.contains(&target) {
                // The owner is back (breaker half-open let a probe
                // through, or the member recovered): deliver directly.
                let Some((_, target_leg)) = holders.iter().find(|(name, _)| *name == target)
                else {
                    stats.drain_errors.fetch_add(1, Ordering::AcqRel);
                    continue;
                };
                let records: Vec<(Vec<u8>, u64, Option<Vec<u8>>)> = entries
                    .iter()
                    .map(|e| {
                        (e.key.clone(), e.version, (!e.tombstone).then(|| e.value.clone()))
                    })
                    .collect();
                if target_leg.vput_multi(&records, 2).is_ok() {
                    shipped = entries
                        .iter()
                        .map(|e| HintDropEntry {
                            target: target.clone(),
                            key: e.key.clone(),
                            version: e.version,
                        })
                        .collect();
                } else {
                    stats.drain_errors.fetch_add(1, Ordering::AcqRel);
                }
            } else {
                // The target died or retired: its records belong to each
                // key's *current* owner set now.
                for entry in &entries {
                    let (serving, future) = snap.write_set(&entry.key, config.rf());
                    let mut delivered = !serving.is_empty();
                    let record = vec![(
                        entry.key.clone(),
                        entry.version,
                        (!entry.tombstone).then(|| entry.value.clone()),
                    )];
                    for owner in serving.iter().chain(&future) {
                        let Some((_, owner_leg)) =
                            holders.iter().find(|(name, _)| name == owner)
                        else {
                            delivered = false;
                            break;
                        };
                        if owner_leg.vput_multi(&record, 2).is_err() {
                            delivered = false;
                            break;
                        }
                    }
                    if delivered {
                        shipped.push(HintDropEntry {
                            target: target.clone(),
                            key: entry.key.clone(),
                            version: entry.version,
                        });
                    } else {
                        stats.drain_errors.fetch_add(1, Ordering::AcqRel);
                    }
                }
            }
            if !shipped.is_empty() {
                replayed += shipped.len() as u64;
                if holder.hint_drop(&shipped, 2).is_err() {
                    stats.drain_errors.fetch_add(1, Ordering::AcqRel);
                }
            }
        }
    }
    if replayed > 0 {
        stats.hint_replays.fetch_add(replayed, Ordering::AcqRel);
    }
    replayed
}

/// Applies a provider's declarative `"keyspace"` Bedrock-config object
/// onto a [`RoutedConfig`] (absent fields keep their current value; see
/// [`RoutedKv::for_keyspace`]).
fn apply_keyspace_config(config: &mut RoutedConfig, value: &serde_json::Value) {
    if !value.is_object() {
        return;
    }
    if let Some(rf) = value["replication_factor"].as_u64() {
        config.replication_factor = rf.max(1) as usize;
    }
    if let Some(w) = value["write_quorum"].as_u64() {
        config.write_quorum = Some(w.max(1) as usize);
    }
    if let Some(r) = value["read_quorum"].as_u64() {
        config.read_quorum = Some(r.max(1) as usize);
    }
    if let Some(bytes) = value["drain_bytes_per_tick"].as_u64() {
        config.drain_bytes_per_tick = Some(bytes);
    }
    if let Some(ms) = value["drain_tick_ms"].as_u64() {
        config.drain_tick = Duration::from_millis(ms.max(1));
    }
    if let Some(ms) = value["hint_drain_interval_ms"].as_u64() {
        config.hint_drain_interval = Duration::from_millis(ms.max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(members: &[&str], to: Option<&[&str]>) -> RouteSnapshot {
        RouteSnapshot {
            ring: HashRing::new(members),
            to_ring: to.map(HashRing::new),
        }
    }

    #[test]
    fn config_defaults_are_sane() {
        let config = RoutedConfig::default();
        assert_eq!(config.vnodes, DEFAULT_VNODES);
        assert!(config.fanout_streams >= 1);
        assert!(config.leg_reroute_backoff < Duration::from_millis(50));
        assert!(config.coalescer.is_none());
        assert!(config.drain_batch > 0);
        // Replication defaults: off, majority quorums, unthrottled.
        assert_eq!(config.replication_factor, 1);
        assert!(!config.replicated());
        assert!(config.write_quorum.is_none());
        assert!(config.read_quorum.is_none());
        assert!(config.drain_bytes_per_tick.is_none());
        assert!(config.hint_drain_interval > Duration::ZERO);
        assert!(config.drain_tick > Duration::ZERO);
    }

    #[test]
    fn quorums_default_to_majority_and_clamp() {
        let mut config = RoutedConfig { replication_factor: 3, ..RoutedConfig::default() };
        assert_eq!(config.write_quorum_for(3), 2);
        assert_eq!(config.read_quorum_for(3), 2);
        // Quorums clamp into 1..=replicas (a member loss shrank the set).
        config.write_quorum = Some(5);
        assert_eq!(config.write_quorum_for(3), 3);
        config.write_quorum = Some(0);
        assert_eq!(config.write_quorum_for(3), 1);
        config.read_quorum = Some(1);
        assert_eq!(config.read_quorum_for(3), 1);
        // Degenerate single-replica set always quorums at 1.
        assert_eq!(config.write_quorum_for(1), 1);
        assert_eq!(config.read_quorum_for(1), 1);
    }

    #[test]
    fn write_set_unions_serving_and_future_owners() {
        let rf = 2;
        let steady = snap(&["db0", "db1", "db2"], None);
        let moving = snap(&["db0", "db1", "db2"], Some(&["db0", "db1", "db2", "db3"]));
        let mut saw_future = false;
        for i in 0..500 {
            let key = format!("key-{i}").into_bytes();
            let (serving, future) = steady.write_set(&key, rf);
            assert_eq!(serving, steady.replicas(&key, rf));
            assert!(future.is_empty(), "no window, no future owners");
            let (serving, future) = moving.write_set(&key, rf);
            assert_eq!(serving.len(), rf);
            for member in &future {
                assert!(!serving.contains(member), "future owners are disjoint");
                saw_future = true;
            }
        }
        assert!(saw_future, "some key must gain db3 as a future replica");
    }

    #[test]
    fn freshness_orders_by_version_then_record_bytes() {
        let old = VersionedValue { version: 5, tombstone: false, value: b"zzz".to_vec() };
        let new = VersionedValue { version: 9, tombstone: false, value: b"aaa".to_vec() };
        assert!(RoutedKv::freshness(&new) > RoutedKv::freshness(&old));
        // Same version: the tombstone flag byte (1 > 0) breaks the tie,
        // mirroring the server's bytewise record comparison.
        let live = VersionedValue { version: 7, tombstone: false, value: b"x".to_vec() };
        let dead = VersionedValue { version: 7, tombstone: true, value: Vec::new() };
        assert!(RoutedKv::freshness(&dead) > RoutedKv::freshness(&live));
        // Same version and flag: value bytes decide, deterministically.
        let a = VersionedValue { version: 7, tombstone: false, value: b"a".to_vec() };
        let b = VersionedValue { version: 7, tombstone: false, value: b"b".to_vec() };
        assert!(RoutedKv::freshness(&b) > RoutedKv::freshness(&a));
    }

    #[test]
    fn keyspace_config_overrides_apply() {
        let mut config = RoutedConfig::default();
        apply_keyspace_config(
            &mut config,
            &serde_json::json!({
                "replication_factor": 3,
                "write_quorum": 2,
                "read_quorum": 2,
                "drain_bytes_per_tick": 65536,
                "drain_tick_ms": 20,
                "hint_drain_interval_ms": 250,
            }),
        );
        assert_eq!(config.replication_factor, 3);
        assert!(config.replicated());
        assert_eq!(config.write_quorum, Some(2));
        assert_eq!(config.read_quorum, Some(2));
        assert_eq!(config.drain_bytes_per_tick, Some(65536));
        assert_eq!(config.drain_tick, Duration::from_millis(20));
        assert_eq!(config.hint_drain_interval, Duration::from_millis(250));
        // Non-object (absent) config is a no-op.
        let before = config;
        apply_keyspace_config(&mut config, &serde_json::Value::Null);
        assert_eq!(config.replication_factor, before.replication_factor);
    }

    #[test]
    fn throttle_sleeps_once_budget_is_spent() {
        let config = RoutedConfig {
            drain_bytes_per_tick: Some(1024),
            drain_tick: Duration::from_millis(20),
            ..RoutedConfig::default()
        };
        let throttle = Throttle::new(&config);
        let start = Instant::now();
        throttle.consume(800); // fits the first tick
        throttle.consume(800); // fits (budget not yet exhausted at check)
        throttle.consume(100); // must wait for the next tick
        assert!(
            start.elapsed() >= Duration::from_millis(10),
            "third transfer should have slept into the next tick"
        );
        // Unthrottled config never sleeps.
        let free = Throttle::new(&RoutedConfig::default());
        let start = Instant::now();
        free.consume(u64::MAX);
        free.consume(u64::MAX);
        assert!(start.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn owners_reports_moving_keys() {
        let steady = snap(&["db0", "db1"], None);
        let moving = snap(&["db0", "db1"], Some(&["db0", "db1", "db2"]));
        let mut saw_move = false;
        for i in 0..500 {
            let key = format!("key-{i}").into_bytes();
            let (owner, next) = steady.owners(&key);
            assert!(owner.is_some());
            assert!(next.is_none(), "no move window, nothing moves");
            let (owner, next) = moving.owners(&key);
            if let Some(next) = next {
                assert_eq!(next, "db2", "adds move keys only toward the joiner");
                assert_ne!(Some(next), owner);
                saw_move = true;
            }
        }
        assert!(saw_move, "some key must move toward db2");
    }

    #[test]
    fn write_batches_dual_route_moving_keys() {
        let moving = snap(&["db0", "db1"], Some(&["db0", "db1", "db2"]));
        let keys: Vec<Vec<u8>> =
            (0..500).map(|i| format!("key-{i}").into_bytes()).collect();
        let batches = RoutedKv::write_batches(&moving, &keys);
        let joiner = batches.get("db2").expect("joiner receives dual writes");
        for &i in joiner {
            let (owner, next) = moving.owners(&keys[i]);
            assert_eq!(next, Some("db2"));
            // The same index must also sit in its serving owner's batch.
            let owner = owner.expect("owned");
            assert!(batches[owner].contains(&i), "dual write covers the old owner");
        }
        // Every key routes somewhere, and non-moving keys exactly once.
        let total: usize = batches.values().map(Vec::len).sum();
        let moving_count = keys
            .iter()
            .filter(|k| moving.owners(k).1.is_some())
            .count();
        assert_eq!(total, keys.len() + moving_count);
    }

    #[test]
    fn write_batches_steady_state_is_a_partition() {
        let steady = snap(&["db0", "db1", "db2"], None);
        let keys: Vec<Vec<u8>> =
            (0..300).map(|i| format!("key-{i}").into_bytes()).collect();
        let batches = RoutedKv::write_batches(&steady, &keys);
        let mut seen: Vec<usize> = batches.values().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..300).collect::<Vec<_>>());
    }
}
