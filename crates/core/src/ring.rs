//! Consistent-hash ring: the keyspace router behind [`RoutedKv`].
//!
//! The same FNV-1a router that spreads keys across in-process shards
//! (memory backend) and WAL stripes (LSM) here spreads them across
//! *providers*: each member contributes `vnodes` points on a `u64` ring,
//! a key hashes to a point, and the first member point at or after it
//! (wrapping) owns the key. Virtual nodes keep the per-member share near
//! `1/N` and — the property the rebalance path depends on — make a
//! membership change move only the arcs adjacent to the changed member's
//! points, not reshuffle the whole keyspace.
//!
//! [`RoutedKv`]: crate::routed::RoutedKv

use std::collections::BTreeMap;

use mochi_util::{fnv1a64, mix64};

/// Default virtual nodes per member (enough that the max/min member
/// share stays within ~2x at small N; raise for tighter balance).
pub const DEFAULT_VNODES: usize = 64;

/// An immutable virtual-node consistent-hash ring over member names.
///
/// Construction order does not matter: the ring is a pure function of
/// the member *set* (and `vnodes`), so two clients that learn the same
/// membership in different orders route identically.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    /// ring point -> member index in `members`.
    points: BTreeMap<u64, usize>,
    /// Sorted member names (index space of `points`).
    members: Vec<String>,
}

/// One contiguous arc of the hash space whose owner changes between two
/// rings — the unit of the minimal moved-slice set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MovedArc {
    /// First hash covered by the arc.
    pub start: u64,
    /// Last hash covered by the arc (inclusive; `start > end` never
    /// occurs — the wrapping arc is split at 0).
    pub end: u64,
    /// Owner in the old ring.
    pub from: String,
    /// Owner in the new ring.
    pub to: String,
}

impl HashRing {
    /// Builds a ring over `members` with [`DEFAULT_VNODES`] points each.
    pub fn new<S: AsRef<str>>(members: &[S]) -> Self {
        Self::with_vnodes(members, DEFAULT_VNODES)
    }

    /// Builds a ring with `vnodes` points per member.
    pub fn with_vnodes<S: AsRef<str>>(members: &[S], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut names: Vec<String> =
            members.iter().map(|m| m.as_ref().to_string()).collect();
        names.sort();
        names.dedup();
        let mut points = BTreeMap::new();
        for (index, name) in names.iter().enumerate() {
            for replica in 0..vnodes {
                // Ties (astronomically unlikely with 64-bit FNV) resolve
                // to the lexicographically *last* member because later
                // indices overwrite — deterministic either way, which is
                // all the stability property needs.
                points.insert(Self::point(name, replica), index);
            }
        }
        Self { vnodes, points, members: names }
    }

    fn point(member: &str, replica: usize) -> u64 {
        let mut buf = Vec::with_capacity(member.len() + 9);
        buf.extend_from_slice(member.as_bytes());
        buf.push(b'#');
        buf.extend_from_slice(&(replica as u64).to_le_bytes());
        // Raw FNV clusters on near-identical inputs (member#0, member#1,
        // …) — the finalizer spreads the points uniformly over the ring.
        mix64(fnv1a64(&buf))
    }

    /// Members, sorted by name.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Whether `member` is on the ring.
    pub fn contains(&self, member: &str) -> bool {
        self.members.iter().any(|m| m == member)
    }

    /// The member owning hash `h`: the first ring point at or after `h`,
    /// wrapping past the top of the hash space.
    pub fn owner_of_hash(&self, h: u64) -> Option<&str> {
        let index = self
            .points
            .range(h..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, i)| *i)?;
        Some(&self.members[index])
    }

    /// The member owning `key`.
    pub fn owner(&self, key: &[u8]) -> Option<&str> {
        self.owner_of_hash(fnv1a64(key))
    }

    /// The first `r` *distinct* members whose points follow hash `h` in
    /// ring order (wrapping) — the replica set for `h` under R-successor
    /// replication. The first element is [`owner_of_hash`]; duplicate
    /// physical members (adjacent virtual nodes of the same member) are
    /// skipped, so the list holds `min(r, len())` unique names.
    ///
    /// [`owner_of_hash`]: HashRing::owner_of_hash
    pub fn owners_of_hash(&self, h: u64, r: usize) -> Vec<&str> {
        let want = r.min(self.members.len());
        let mut seen: Vec<usize> = Vec::with_capacity(want);
        for (_, index) in self.points.range(h..).chain(self.points.range(..h)) {
            if seen.contains(index) {
                continue;
            }
            seen.push(*index);
            if seen.len() == want {
                break;
            }
        }
        seen.into_iter().map(|i| self.members[i].as_str()).collect()
    }

    /// The replica set for `key`: `r` distinct members in successor
    /// order, primary first.
    pub fn owners(&self, key: &[u8], r: usize) -> Vec<&str> {
        self.owners_of_hash(fnv1a64(key), r)
    }

    /// A new ring with `member` added (same `vnodes`).
    pub fn with_member(&self, member: &str) -> Self {
        let mut names = self.members.clone();
        names.push(member.to_string());
        Self::with_vnodes(&names, self.vnodes)
    }

    /// A new ring with `member` removed (same `vnodes`).
    pub fn without_member(&self, member: &str) -> Self {
        let names: Vec<String> =
            self.members.iter().filter(|m| m.as_str() != member).cloned().collect();
        Self::with_vnodes(&names, self.vnodes)
    }

    /// The minimal moved-slice set between `self` and `to`: the arcs of
    /// the hash space whose owner differs, merged where adjacent. For a
    /// single add/remove these are exactly the arcs bounded by the
    /// changed member's virtual-node points — everything else stays put.
    pub fn moved_arcs(&self, to: &HashRing) -> Vec<MovedArc> {
        // Owner can only change at a ring point of either ring, so the
        // union of both point sets partitions the hash space into
        // segments of constant (from, to) ownership.
        let mut cuts: Vec<u64> = self
            .points
            .keys()
            .chain(to.points.keys())
            .copied()
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        if cuts.is_empty() {
            return Vec::new();
        }
        let mut arcs: Vec<MovedArc> = Vec::new();
        // Segment i covers (cuts[i-1], cuts[i]] — i.e. hashes whose
        // successor point is cuts[i]; the segment below cuts[0] wraps.
        let mut push = |start: u64, end: u64| {
            let (Some(from), Some(to_owner)) =
                (self.owner_of_hash(end), to.owner_of_hash(end))
            else {
                return;
            };
            if from == to_owner {
                return;
            }
            let (from, to_owner) = (from.to_string(), to_owner.to_string());
            match arcs.last_mut() {
                // Merge with the previous arc when contiguous and
                // same-owned (start == 0 never merges across the wrap).
                Some(last)
                    if start > 0
                        && last.end == start - 1
                        && last.from == from
                        && last.to == to_owner =>
                {
                    last.end = end;
                }
                _ => arcs.push(MovedArc { start, end, from, to: to_owner }),
            }
        };
        for i in 0..cuts.len() {
            let start = if i == 0 { 0 } else { cuts[i - 1] + 1 };
            push(start, cuts[i]);
        }
        // The wrapping tail (last point, u64::MAX] owns like hash
        // u64::MAX, whose successor wraps to the first point.
        if *cuts.last().expect("non-empty") < u64::MAX {
            push(cuts.last().expect("non-empty") + 1, u64::MAX);
        }
        arcs
    }

    /// Whether `key`'s owner differs between `self` and `to`.
    pub fn moves(&self, to: &HashRing, key: &[u8]) -> bool {
        self.owner(key) != to.owner(key)
    }

    /// Splits `keys` by owner: a map from member to the indices of the
    /// keys it owns (indices into `keys`, preserving order).
    pub fn partition<'k, K: AsRef<[u8]>>(
        &'k self,
        keys: &[K],
    ) -> BTreeMap<&'k str, Vec<usize>> {
        let mut by_owner: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, key) in keys.iter().enumerate() {
            if let Some(owner) = self.owner(key.as_ref()) {
                by_owner.entry(owner).or_default().push(i);
            }
        }
        by_owner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key-{i:06}").into_bytes()).collect()
    }

    #[test]
    fn single_member_owns_everything() {
        let ring = HashRing::new(&["only"]);
        for key in keys(100) {
            assert_eq!(ring.owner(&key), Some("only"));
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new::<&str>(&[]);
        assert_eq!(ring.owner(b"k"), None);
        assert!(ring.moved_arcs(&ring).is_empty());
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let a = HashRing::new(&["db0", "db1", "db2"]);
        let b = HashRing::new(&["db2", "db0", "db1"]);
        for key in keys(500) {
            assert_eq!(a.owner(&key), b.owner(&key));
        }
    }

    #[test]
    fn shares_are_roughly_balanced() {
        let ring = HashRing::new(&["db0", "db1", "db2", "db3"]);
        let ks = keys(4000);
        let parts = ring.partition(&ks);
        for member in ring.members() {
            let share = parts.get(member.as_str()).map_or(0, Vec::len);
            // 4000/4 = 1000 expected; vnode variance stays within ~2x.
            assert!(
                (400..=2000).contains(&share),
                "{member} owns {share} of 4000"
            );
        }
    }

    #[test]
    fn add_moves_only_toward_the_new_member() {
        let old = HashRing::new(&["db0", "db1", "db2"]);
        let new = old.with_member("db3");
        for key in keys(2000) {
            if old.moves(&new, &key) {
                assert_eq!(new.owner(&key), Some("db3"));
            }
        }
    }

    #[test]
    fn remove_moves_only_away_from_the_removed_member() {
        let old = HashRing::new(&["db0", "db1", "db2", "db3"]);
        let new = old.without_member("db3");
        for key in keys(2000) {
            if old.moves(&new, &key) {
                assert_eq!(old.owner(&key), Some("db3"));
            }
        }
    }

    #[test]
    fn moved_arcs_agree_with_per_key_diff() {
        let old = HashRing::new(&["db0", "db1", "db2"]);
        let new = old.with_member("db3");
        let arcs = old.moved_arcs(&new);
        assert!(!arcs.is_empty());
        for arc in &arcs {
            assert!(arc.start <= arc.end);
            assert_eq!(arc.to, "db3");
        }
        let in_arcs = |h: u64| arcs.iter().any(|a| (a.start..=a.end).contains(&h));
        for key in keys(2000) {
            let h = mochi_util::fnv1a64(&key);
            assert_eq!(old.moves(&new, &key), in_arcs(h), "hash {h:#x}");
        }
    }

    #[test]
    fn owners_are_distinct_and_led_by_the_primary() {
        let ring = HashRing::new(&["db0", "db1", "db2", "db3"]);
        for key in keys(500) {
            for r in 1..=5 {
                let owners = ring.owners(&key, r);
                assert_eq!(owners.len(), r.min(4));
                assert_eq!(owners.first().copied(), ring.owner(&key));
                let mut sorted = owners.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), owners.len(), "duplicate member in {owners:?}");
            }
        }
    }

    #[test]
    fn owners_wrap_past_the_top_of_the_hash_space() {
        let ring = HashRing::new(&["db0", "db1", "db2"]);
        let owners = ring.owners_of_hash(u64::MAX, 3);
        assert_eq!(owners.len(), 3);
        assert_eq!(owners.first().copied(), ring.owner_of_hash(u64::MAX));
        let mut sorted = owners.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, ring.members().iter().map(String::as_str).collect::<Vec<_>>());
    }

    #[test]
    fn owners_clamp_to_membership() {
        let ring = HashRing::new(&["db0"]);
        assert_eq!(ring.owners(b"k", 3), vec!["db0"]);
        let empty = HashRing::new::<&str>(&[]);
        assert!(empty.owners(b"k", 3).is_empty());
    }

    #[test]
    fn partition_preserves_order_and_covers_all() {
        let ring = HashRing::new(&["db0", "db1"]);
        let ks = keys(64);
        let parts = ring.partition(&ks);
        let mut seen: Vec<usize> = parts.values().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
        for indices in parts.values() {
            assert!(indices.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
