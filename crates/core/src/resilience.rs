//! Top-down resilience (paper §7): periodic checkpoints to the parallel
//! file system plus SWIM-triggered recovery on fresh nodes.
//!
//! "Should a node die, another node can be provisioned and restarted with
//! the same components restoring their respective checkpoint"
//! (Observation 9) — detection comes from SSG's SWIM notifications
//! (Observation 12). The manager is deliberately *outside* the
//! components: they only implement `checkpoint`/`restore` hooks, keeping
//! the coupling the paper warns about to a minimum.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use mochi_mercury::Address;
use mochi_ssg::swim::MembershipEvent;
use mochi_ssg::SsgGroup;

use crate::service::{DynamicService, MemberRecord, SSG_PROVIDER_ID};

/// Resilience tuning.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Interval between checkpoint sweeps.
    pub checkpoint_interval: Duration,
    /// Recover dead members onto fresh nodes automatically.
    pub auto_recover: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self { checkpoint_interval: Duration::from_millis(500), auto_recover: true }
    }
}

/// Statistics for tests and reports.
#[derive(Debug, Default)]
pub struct ResilienceStats {
    /// Completed checkpoint sweeps.
    pub checkpoints: AtomicU64,
    /// Successful recoveries.
    pub recoveries: AtomicU64,
}

/// The resilience manager attached to a service.
pub struct ResilienceManager {
    service: Arc<DynamicService>,
    config: ResilienceConfig,
    stats: Arc<ResilienceStats>,
    stopped: Arc<AtomicBool>,
    recovering: Arc<Mutex<HashSet<Address>>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ResilienceManager {
    /// Attaches the manager: starts the checkpoint sweeper and subscribes
    /// to membership events on every current member.
    pub fn attach(service: &Arc<DynamicService>, config: ResilienceConfig) -> Arc<Self> {
        let manager = Arc::new(Self {
            service: Arc::clone(service),
            config,
            stats: Arc::new(ResilienceStats::default()),
            stopped: Arc::new(AtomicBool::new(false)),
            recovering: Arc::new(Mutex::new(HashSet::new())),
            threads: Mutex::new(Vec::new()),
        });
        // Checkpoint sweeper.
        {
            let m = Arc::clone(&manager);
            let handle = std::thread::Builder::new()
                .name("resilience-ckpt".into())
                .spawn(move || {
                    while !m.stopped.load(Ordering::SeqCst) {
                        std::thread::sleep(m.config.checkpoint_interval);
                        if m.stopped.load(Ordering::SeqCst) {
                            break;
                        }
                        m.checkpoint_sweep();
                    }
                })
                .expect("spawn checkpoint sweeper");
            manager.threads.lock().push(handle);
        }
        // Death subscriptions.
        if config.auto_recover {
            for addr in service.addresses() {
                if let Some(group) = service.group(&addr) {
                    manager.subscribe(&group);
                }
            }
        }
        manager
    }

    fn subscribe(self: &Arc<Self>, group: &Arc<SsgGroup>) {
        let manager = Arc::clone(self);
        group.on_change(Arc::new(move |event| {
            if let MembershipEvent::Died(dead) = event {
                if manager.stopped.load(Ordering::SeqCst) {
                    return;
                }
                let dead = dead.clone();
                let manager = Arc::clone(&manager);
                // Recover off the callback thread (it holds SWIM state).
                std::thread::Builder::new()
                    .name("resilience-recover".into())
                    .spawn(move || {
                        manager.recover(&dead);
                    })
                    .expect("spawn recovery thread");
            }
        }));
    }

    /// Counters.
    pub fn stats(&self) -> &Arc<ResilienceStats> {
        &self.stats
    }

    fn checkpoint_dir(&self, addr: &Address, provider: &str) -> std::path::PathBuf {
        let sanitized: String = addr
            .to_string()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        self.service.cluster().pfs_dir().join(sanitized).join(provider)
    }

    /// One checkpoint sweep over all members and providers.
    pub fn checkpoint_sweep(&self) {
        let targets: Vec<(Address, Vec<String>)> = {
            let members = self.service.members.lock();
            members
                .iter()
                .map(|(addr, record)| (addr.clone(), record.server.provider_names()))
                .collect()
        };
        for (addr, providers) in targets {
            let Some(server) = self.service.server(&addr) else { continue };
            for provider in providers {
                let dir = self.checkpoint_dir(&addr, &provider);
                let _ = std::fs::create_dir_all(&dir);
                // Providers without checkpoint support simply error; fine.
                let _ = server.checkpoint_provider(&provider, &dir.to_string_lossy());
            }
        }
        self.stats.checkpoints.fetch_add(1, Ordering::SeqCst);
    }

    /// Rebuilds the member that ran at `dead` on a freshly allocated
    /// node, restoring each of its providers from its latest checkpoint.
    pub fn recover(&self, dead: &Address) {
        // Deduplicate: several members will report the same death.
        {
            let mut recovering = self.recovering.lock();
            if !recovering.insert(dead.clone()) {
                return;
            }
        }
        let result = self.recover_inner(dead);
        self.recovering.lock().remove(dead);
        if result {
            self.stats.recoveries.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn recover_inner(&self, dead: &Address) -> bool {
        // Fetch and drop the dead member's record.
        let Some(record) = self.service.members.lock().remove(dead) else {
            return false; // already recovered or never a member
        };
        let MemberRecord { node: old_node, config, .. } = record;
        self.service.cluster().release_node(&old_node);
        let cluster = self.service.cluster();

        let Ok(new_node) = cluster.allocate_node() else {
            return false;
        };
        let Ok(server) = cluster.spawn(&new_node, &config) else {
            cluster.release_node(&new_node);
            return false;
        };
        // Restore provider state from the checkpoints of the dead
        // incarnation.
        for provider in server.provider_names() {
            let dir = self.checkpoint_dir(dead, &provider);
            if dir.exists() {
                let _ = server.restore_provider(&provider, &dir.to_string_lossy());
            }
        }
        // Join the group through any survivor.
        let seed = self.service.addresses().into_iter().next();
        let group = match seed {
            Some(seed) => {
                SsgGroup::join(server.margo(), SSG_PROVIDER_ID, self.service.config().swim, &seed)
            }
            None => SsgGroup::create(
                server.margo(),
                SSG_PROVIDER_ID,
                self.service.config().swim,
                &[server.address()],
            ),
        };
        let Ok(group) = group else {
            return false;
        };
        self.subscribe_arc(&group);
        self.service.members.lock().insert(
            server.address(),
            MemberRecord { server, group, node: new_node, config },
        );
        true
    }

    fn subscribe_arc(&self, group: &Arc<SsgGroup>) {
        // Reconstruct an Arc<Self> for the subscription closure.
        // SAFETY-free approach: we clone the fields we need instead.
        let service = Arc::clone(&self.service);
        let stats = Arc::clone(&self.stats);
        let stopped = Arc::clone(&self.stopped);
        let recovering = Arc::clone(&self.recovering);
        let config = self.config;
        group.on_change(Arc::new(move |event| {
            if let MembershipEvent::Died(dead) = event {
                if stopped.load(Ordering::SeqCst) || !config.auto_recover {
                    return;
                }
                let helper = ResilienceManager {
                    service: Arc::clone(&service),
                    config,
                    stats: Arc::clone(&stats),
                    stopped: Arc::clone(&stopped),
                    recovering: Arc::clone(&recovering),
                    threads: Mutex::new(Vec::new()),
                };
                let dead = dead.clone();
                std::thread::Builder::new()
                    .name("resilience-recover".into())
                    .spawn(move || helper.recover(&dead))
                    .expect("spawn recovery thread");
            }
        }));
    }

    /// Stops the sweeper; in-flight recoveries complete.
    pub fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        let threads = std::mem::take(&mut *self.threads.lock());
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl Drop for ResilienceManager {
    fn drop(&mut self) {
        self.stopped.store(true, Ordering::SeqCst);
    }
}
