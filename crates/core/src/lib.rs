//! `mochi-core` — the dynamic data service methodology, assembled.
//!
//! Everything below composes the components of this workspace into the
//! four capabilities the paper demands of dynamic services (§2.3), with
//! the dependency order the paper observes — each builds on the previous:
//!
//! 1. **performance introspection** — Margo monitoring, consumed by
//!    [`adaptive::AdaptiveController`];
//! 2. **online reconfiguration** — Bedrock processes managed by a
//!    [`cluster::Cluster`] (the simulated machine + a Flux-like resource
//!    manager granting and revoking nodes);
//! 3. **elasticity** — [`service::DynamicService`] grows/shrinks its node
//!    set, rebalancing provider placement with Pufferscale plans executed
//!    through REMI migrations;
//! 4. **resilience** — [`resilience::ResilienceManager`] subscribes to
//!    SSG/SWIM failure notifications and restores dead processes from
//!    checkpoints on freshly allocated nodes (the top-down loop of §7).
//!
//! [`workflow`] provides the HEPnOS/NOvA-inspired synthetic workload whose
//! phases have contrasting I/O patterns — the motivation for dynamic
//! reconfiguration in the paper's introduction and the workload of
//! experiment E11.

//! [`ring`] + [`routed`] extend capability 3 horizontally: one logical
//! keyspace consistent-hash-routed across N Yokan providers, with
//! concurrent scatter-gather multi-ops and zero-loss live rebalance
//! (experiment A9).

pub mod adaptive;
pub mod cluster;
pub mod consistent;
pub mod failover;
pub mod resilience;
pub mod ring;
pub mod routed;
pub mod service;
pub mod workflow;

pub use adaptive::{AdaptiveController, ScalingPolicy};
pub use cluster::{default_catalog, Cluster, ClusterError};
pub use consistent::ConsistentGroup;
pub use failover::FailoverKv;
pub use resilience::{ResilienceConfig, ResilienceManager};
pub use ring::{HashRing, MovedArc};
pub use routed::{RebalanceReport, RoutedConfig, RoutedKv};
pub use service::{DynamicService, ServiceConfig};
pub use workflow::{Phase, PhaseReport, WorkloadSpec};
