//! Strongly consistent group views over Raft — the paper's stated next
//! step (§6): "In the future, however, we plan to build a consistent view
//! by using the RAFT protocol to coordinate configuration changes across
//! a set of Bedrock-managed processes."
//!
//! SSG gives *eventual* consistency: members may briefly disagree about
//! the view, which Colza papers over with view hashes and two-phase
//! commits. [`ConsistentGroup`] instead runs the membership list itself
//! as a Raft-replicated state machine: every change is linearized, every
//! member applies the same sequence of views, and a client can read a
//! view that is guaranteed current as of its commit point.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use mochi_margo::{MargoError, MargoRuntime};
use mochi_mercury::Address;
use mochi_raft::{RaftClient, RaftConfig, RaftNode, StateMachine};
use mochi_ssg::GroupView;

/// Commands applied to the replicated membership list.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum ViewCommand {
    /// Adds a member (idempotent).
    Add(Address),
    /// Removes a member (idempotent).
    Remove(Address),
    /// Linearizable read: changes nothing, returns the current view.
    Read,
}

/// The replicated state: a versioned member list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ViewState {
    version: u64,
    members: Vec<Address>,
}

impl ViewState {
    fn to_view(&self) -> GroupView {
        GroupView::new(self.version, self.members.clone())
    }
}

struct ViewMachine {
    state: Arc<Mutex<ViewState>>,
}

impl StateMachine for ViewMachine {
    fn apply(&mut self, command: &[u8]) -> Vec<u8> {
        let mut state = self.state.lock();
        match serde_json::from_slice(command) {
            Ok(ViewCommand::Add(addr)) => {
                if !state.members.contains(&addr) {
                    state.members.push(addr);
                    state.members.sort();
                    state.version += 1;
                }
            }
            Ok(ViewCommand::Remove(addr)) => {
                let before = state.members.len();
                state.members.retain(|a| *a != addr);
                if state.members.len() != before {
                    state.version += 1;
                }
            }
            Ok(ViewCommand::Read) | Err(_) => {}
        }
        serde_json::to_vec(&*state).expect("view state serializes")
    }

    fn snapshot(&self) -> Vec<u8> {
        serde_json::to_vec(&*self.state.lock()).expect("view state serializes")
    }

    fn restore(&mut self, snapshot: &[u8]) {
        if let Ok(state) = serde_json::from_slice(snapshot) {
            *self.state.lock() = state;
        }
    }
}

/// One member's handle on the consistent group.
pub struct ConsistentGroup {
    node: RaftNode,
    state: Arc<Mutex<ViewState>>,
    client: RaftClient,
}

impl ConsistentGroup {
    /// Starts this process's member of the consistent group. Every
    /// initial member calls this with the same `initial` list (which
    /// doubles as the Raft cluster membership).
    pub fn create(
        margo: &MargoRuntime,
        provider_id: u16,
        initial: &[Address],
        data_dir: impl Into<std::path::PathBuf>,
        config: RaftConfig,
    ) -> Result<Arc<Self>, MargoError> {
        let state = Arc::new(Mutex::new(ViewState {
            version: 0,
            members: {
                let mut members = initial.to_vec();
                members.sort();
                members
            },
        }));
        let node = RaftNode::start(
            margo,
            provider_id,
            initial,
            Box::new(ViewMachine { state: Arc::clone(&state) }),
            data_dir,
            config,
        )?;
        let client = RaftClient::new(margo, provider_id, initial.to_vec())
            .with_rpc_timeout(Duration::from_millis(500));
        Ok(Arc::new(Self { node, state, client }))
    }

    fn submit(&self, command: &ViewCommand) -> Result<GroupView, MargoError> {
        let bytes = serde_json::to_vec(command).map_err(|e| MargoError::Codec(e.to_string()))?;
        let reply = self.client.submit(&bytes)?;
        let state: ViewState =
            serde_json::from_slice(&reply).map_err(|e| MargoError::Codec(e.to_string()))?;
        Ok(state.to_view())
    }

    /// Adds a *view* member through consensus (this does not change the
    /// Raft cluster itself; pair with [`RaftClient::add_server`] when the
    /// new member should also vote). Returns the resulting view.
    pub fn add_member(&self, addr: &Address) -> Result<GroupView, MargoError> {
        self.submit(&ViewCommand::Add(addr.clone()))
    }

    /// Removes a view member through consensus. Returns the resulting view.
    pub fn remove_member(&self, addr: &Address) -> Result<GroupView, MargoError> {
        self.submit(&ViewCommand::Remove(addr.clone()))
    }

    /// Linearizable view read: the returned view reflects every change
    /// committed before this call returned.
    pub fn view(&self) -> Result<GroupView, MargoError> {
        self.submit(&ViewCommand::Read)
    }

    /// This member's locally applied view — may lag the linearizable
    /// view by in-flight commits, but every member applies the *same
    /// sequence* of views (unlike SSG's eventual consistency).
    pub fn local_view(&self) -> GroupView {
        self.state.lock().to_view()
    }

    /// Whether this member currently leads the coordination cluster.
    pub fn is_leader(&self) -> bool {
        self.node.is_leader()
    }

    /// Stops this member's Raft node.
    pub fn stop(&self) {
        self.node.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mochi_mercury::Fabric;
    use mochi_util::time::wait_until;
    use mochi_util::TempDir;

    fn boot_group(
        fabric: &Fabric,
        n: usize,
        dir: &TempDir,
    ) -> (Vec<MargoRuntime>, Vec<Arc<ConsistentGroup>>, Vec<Address>) {
        let addresses: Vec<Address> =
            (0..n).map(|i| Address::tcp(format!("cv{i}"), 1)).collect();
        let mut margos = Vec::new();
        let mut groups = Vec::new();
        for (i, addr) in addresses.iter().enumerate() {
            let margo = MargoRuntime::init_default(fabric, addr.clone()).unwrap();
            let group = ConsistentGroup::create(
                &margo,
                11,
                &addresses,
                dir.path().join(format!("n{i}")),
                RaftConfig::fast(),
            )
            .unwrap();
            margos.push(margo);
            groups.push(group);
        }
        (margos, groups, addresses)
    }

    #[test]
    fn linearizable_view_changes() {
        let fabric = Fabric::new();
        let dir = TempDir::new("consistent-view").unwrap();
        let (margos, groups, addresses) = boot_group(&fabric, 3, &dir);

        // Initial linearizable view = the bootstrap list.
        let view = groups[0].view().unwrap();
        assert_eq!(view.members, {
            let mut a = addresses.clone();
            a.sort();
            a
        });

        // Add then remove an external member; reads from *any* member see
        // the committed result immediately.
        let extra = Address::tcp("extra", 1);
        let view = groups[1].add_member(&extra).unwrap();
        assert!(view.contains(&extra));
        let from_other = groups[2].view().unwrap();
        assert!(from_other.contains(&extra));
        assert_eq!(from_other.epoch, view.epoch);

        let view = groups[0].remove_member(&extra).unwrap();
        assert!(!view.contains(&extra));

        // Idempotence: removing again changes nothing (same version).
        let again = groups[0].remove_member(&extra).unwrap();
        assert_eq!(again.epoch, view.epoch);

        // Local views converge to the same sequence end state.
        assert!(wait_until(
            std::time::Duration::from_secs(10),
            std::time::Duration::from_millis(10),
            || groups.iter().all(|g| g.local_view().hash() == view.hash())
        ));

        for group in &groups {
            group.stop();
        }
        for margo in &margos {
            margo.finalize();
        }
    }

    #[test]
    fn concurrent_changes_are_totally_ordered() {
        let fabric = Fabric::new();
        let dir = TempDir::new("consistent-race").unwrap();
        let (margos, groups, _addresses) = boot_group(&fabric, 3, &dir);

        // Two members concurrently add distinct addresses; both must land,
        // and every member must observe the same final version/hash.
        let a = Address::tcp("joiner-a", 1);
        let b = Address::tcp("joiner-b", 1);
        let g1 = Arc::clone(&groups[1]);
        let g2 = Arc::clone(&groups[2]);
        let (a2, b2) = (a.clone(), b.clone());
        let t1 = std::thread::spawn(move || g1.add_member(&a2).unwrap());
        let t2 = std::thread::spawn(move || g2.add_member(&b2).unwrap());
        t1.join().unwrap();
        t2.join().unwrap();

        let final_view = groups[0].view().unwrap();
        assert!(final_view.contains(&a));
        assert!(final_view.contains(&b));
        assert_eq!(final_view.epoch, 2, "exactly two committed changes");

        for group in &groups {
            group.stop();
        }
        for margo in &margos {
            margo.finalize();
        }
    }

    #[test]
    fn view_survives_leader_failure() {
        let fabric = Fabric::new();
        let dir = TempDir::new("consistent-failover").unwrap();
        let (margos, groups, _addresses) = boot_group(&fabric, 3, &dir);
        let extra = Address::tcp("extra", 1);
        groups[0].add_member(&extra).unwrap();

        // Kill the leader; the view remains readable and writable.
        assert!(wait_until(
            std::time::Duration::from_secs(10),
            std::time::Duration::from_millis(10),
            || groups.iter().any(|g| g.is_leader())
        ));
        let leader_idx = groups.iter().position(|g| g.is_leader()).unwrap();
        groups[leader_idx].stop();
        margos[leader_idx].finalize();

        let survivor = (leader_idx + 1) % 3;
        let view = groups[survivor].view().unwrap();
        assert!(view.contains(&extra), "committed change survived failover");
        groups[survivor].add_member(&Address::tcp("post-failover", 1)).unwrap();

        for (i, group) in groups.iter().enumerate() {
            if i != leader_idx {
                group.stop();
                margos[i].finalize();
            }
        }
    }
}
