//! Synthetic HEPnOS/NOvA-style workflow (paper §1).
//!
//! "The high-energy physics NOvA workflow … presents steps with vastly
//! different I/O patterns. Our work in autotuning HEPnOS showed that the
//! best configuration of the service for one step of the workflow is not
//! necessarily the best for other steps." This module generates a
//! multi-phase workload with exactly that property:
//!
//! * [`Phase::Ingest`] — a storm of small puts (event ingestion): bound
//!   by per-RPC handler throughput, it loves many execution streams;
//! * [`Phase::Analysis`] — large scans and big-value reads: bound by
//!   data movement, it loves few streams (less contention) and bulk
//!   transfers.
//!
//! Experiment E11 runs this workload against static configurations and a
//! dynamically reconfigured service and compares makespans.

use serde::{Deserialize, Serialize};

use mochi_margo::MargoError;
use mochi_util::time::Stopwatch;
use mochi_util::SeededRng;
use mochi_yokan::DatabaseHandle;

/// One workflow step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// Many small writes (event ingestion).
    Ingest {
        /// Number of put operations.
        ops: usize,
        /// Value size in bytes.
        value_size: usize,
    },
    /// Scan-heavy analysis over previously ingested data.
    Analysis {
        /// Number of scan passes.
        scans: usize,
        /// Keys listed (and fetched) per pass.
        keys_per_scan: usize,
    },
}

/// A whole workflow: named phases in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Phases in execution order.
    pub phases: Vec<(String, Phase)>,
    /// RNG seed for key/value generation.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The two-step NOvA-like default: ingest then analysis.
    pub fn hepnos_like(scale: usize) -> Self {
        Self {
            phases: vec![
                ("ingest".into(), Phase::Ingest { ops: 40 * scale, value_size: 128 }),
                (
                    "analysis".into(),
                    Phase::Analysis { scans: 4 * scale, keys_per_scan: 32 },
                ),
            ],
            seed: 0x0a57,
        }
    }
}

/// Outcome of one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase label.
    pub name: String,
    /// Operations performed.
    pub ops: u64,
    /// Wall-clock seconds.
    pub duration_s: f64,
    /// Operations per second.
    pub throughput: f64,
}

/// Runs one phase against a database handle.
pub fn run_phase(
    db: &DatabaseHandle,
    name: &str,
    phase: &Phase,
    rng: &mut SeededRng,
) -> Result<PhaseReport, MargoError> {
    let stopwatch = Stopwatch::start();
    let mut ops = 0u64;
    match phase {
        Phase::Ingest { ops: count, value_size } => {
            let mut value = vec![0u8; *value_size];
            for i in 0..*count {
                rng.fill_bytes(&mut value);
                let key = format!("event/{:010}/{:04}", i, rng.range(0, 10_000));
                db.put(key.as_bytes(), &value)?;
                ops += 1;
            }
        }
        Phase::Analysis { scans, keys_per_scan } => {
            for _ in 0..*scans {
                let keys = db.list_keys(b"event/", None, *keys_per_scan)?;
                ops += 1;
                if keys.is_empty() {
                    continue;
                }
                let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                let values = db.get_multi(&refs)?;
                ops += values.len() as u64;
            }
        }
    }
    let duration_s = stopwatch.elapsed_secs();
    Ok(PhaseReport {
        name: name.to_string(),
        ops,
        duration_s,
        throughput: if duration_s > 0.0 { ops as f64 / duration_s } else { 0.0 },
    })
}

/// Runs a whole workflow, returning per-phase reports.
pub fn run_workload(
    db: &DatabaseHandle,
    spec: &WorkloadSpec,
) -> Result<Vec<PhaseReport>, MargoError> {
    let mut rng = SeededRng::new(spec.seed);
    let mut reports = Vec::with_capacity(spec.phases.len());
    for (name, phase) in &spec.phases {
        reports.push(run_phase(db, name, phase, &mut rng)?);
    }
    Ok(reports)
}

/// The sharded variant of the workflow, used by experiment E11 and the
/// `hepnos_workflow` example: data spread over K databases, with a
/// *globally ordered* analysis scan that must merge across shards. The
/// two phases have opposite optimal shard counts — many shards amortize
/// LSM compaction during ingest; one shard minimizes scatter-gather RPCs
/// during ordered analysis — which is the paper's §1 motivation for
/// per-step reconfiguration.
pub mod sharded {
    use std::collections::VecDeque;

    use mochi_bedrock::{BedrockServer, ProviderSpec};
    use mochi_margo::MargoRuntime;
    use mochi_util::time::Stopwatch;
    use mochi_yokan::DatabaseHandle;

    /// Ingest-tuned shard config: small memtable, eager compaction (the
    /// durability-oriented tuning that makes maintenance cost visible).
    pub fn ingest_shard_config() -> serde_json::Value {
        serde_json::json!({"backend": "lsm", "memtable_bytes": 16384, "max_tables": 3})
    }

    /// Scan-tuned shard config: big memtable, no compaction churn.
    pub fn scan_shard_config() -> serde_json::Value {
        serde_json::json!({"backend": "lsm", "memtable_bytes": 67108864, "max_tables": 8})
    }

    /// Ingests `events` fixed-size values round-robin over the shards in
    /// batched `put_multi` calls; returns seconds taken.
    pub fn ingest(handles: &[DatabaseHandle], events: usize, value_size: usize) -> f64 {
        let stopwatch = Stopwatch::start();
        let value = vec![0xEEu8; value_size];
        let mut batches: Vec<Vec<(Vec<u8>, Vec<u8>)>> = vec![Vec::new(); handles.len()];
        let flush = |batches: &mut Vec<Vec<(Vec<u8>, Vec<u8>)>>| {
            for (shard, batch) in batches.iter_mut().enumerate() {
                if !batch.is_empty() {
                    let refs: Vec<(&[u8], &[u8])> =
                        batch.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
                    handles[shard].put_multi(&refs).unwrap();
                    batch.clear();
                }
            }
        };
        for event in 0..events {
            batches[event % handles.len()]
                .push((format!("event/{event:08}").into_bytes(), value.clone()));
            if event % 64 == 63 {
                flush(&mut batches);
            }
        }
        flush(&mut batches);
        stopwatch.elapsed_secs()
    }

    /// Runs `scans` globally ordered full scans (merge across shards with
    /// per-shard cursors, scatter-gather gets); asserts every scan sees
    /// exactly `events` keys. Returns seconds taken.
    pub fn ordered_analysis(
        handles: &[DatabaseHandle],
        scans: usize,
        page: usize,
        events: usize,
    ) -> f64 {
        let stopwatch = Stopwatch::start();
        for _ in 0..scans {
            let mut seen = 0usize;
            let mut buffers: Vec<VecDeque<Vec<u8>>> = vec![Default::default(); handles.len()];
            let mut cursors: Vec<Option<Option<Vec<u8>>>> = vec![Some(None); handles.len()];
            loop {
                for (shard, db) in handles.iter().enumerate() {
                    if buffers[shard].is_empty() {
                        if let Some(cursor) = cursors[shard].clone() {
                            let keys =
                                db.list_keys(b"event/", cursor.as_deref(), page).unwrap();
                            if keys.is_empty() {
                                cursors[shard] = None;
                            } else {
                                cursors[shard] = Some(Some(keys.last().unwrap().clone()));
                                buffers[shard].extend(keys);
                            }
                        }
                    }
                }
                let mut batch: Vec<(usize, Vec<u8>)> = Vec::with_capacity(page);
                while batch.len() < page {
                    let mut best: Option<usize> = None;
                    for shard in 0..handles.len() {
                        if let Some(front) = buffers[shard].front() {
                            if best.is_none_or(|b| front < buffers[b].front().unwrap()) {
                                best = Some(shard);
                            }
                        }
                    }
                    let Some(shard) = best else { break };
                    batch.push((shard, buffers[shard].pop_front().unwrap()));
                    if buffers[shard].is_empty() && cursors[shard].is_some() {
                        break; // refill before risking out-of-order keys
                    }
                }
                if batch.is_empty() {
                    if cursors.iter().all(Option::is_none)
                        && buffers.iter().all(|b| b.is_empty())
                    {
                        break;
                    }
                    continue;
                }
                for (shard, db) in handles.iter().enumerate() {
                    let keys: Vec<&[u8]> = batch
                        .iter()
                        .filter(|(s, _)| *s == shard)
                        .map(|(_, k)| k.as_slice())
                        .collect();
                    if keys.is_empty() {
                        continue;
                    }
                    let values = db.get_multi(&keys).unwrap();
                    seen += values.iter().filter(|v| v.is_some()).count();
                }
            }
            assert_eq!(seen, events, "ordered scan must see every event");
        }
        stopwatch.elapsed_secs()
    }

    /// The online reconfiguration step: start one scan-tuned provider,
    /// stream every shard's contents into it, stop the old shards.
    /// Returns (seconds, handle to the merged database).
    pub fn reshard(
        server: &BedrockServer,
        client: &MargoRuntime,
        old: &[DatabaseHandle],
        old_names: &[String],
        merged_name: &str,
        merged_provider_id: u16,
    ) -> (f64, DatabaseHandle) {
        let stopwatch = Stopwatch::start();
        server
            .start_provider(
                &ProviderSpec::new(merged_name, "yokan", merged_provider_id)
                    .with_config(scan_shard_config()),
            )
            .unwrap();
        let merged = DatabaseHandle::new(client, server.address(), merged_provider_id);
        for db in old {
            let mut cursor: Option<Vec<u8>> = None;
            loop {
                let keys = db.list_keys(b"", cursor.as_deref(), 256).unwrap();
                if keys.is_empty() {
                    break;
                }
                let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                let values = db.get_multi(&refs).unwrap();
                let pairs: Vec<(&[u8], Vec<u8>)> = keys
                    .iter()
                    .zip(values)
                    .filter_map(|(k, v)| v.map(|v| (k.as_slice(), v)))
                    .collect();
                let refs2: Vec<(&[u8], &[u8])> =
                    pairs.iter().map(|(k, v)| (*k, v.as_slice())).collect();
                merged.put_multi(&refs2).unwrap();
                cursor = keys.last().cloned();
            }
        }
        for name in old_names {
            server.stop_provider(name).unwrap();
        }
        merged.flush().unwrap();
        (stopwatch.elapsed_secs(), merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mochi_mercury::{Address, Fabric};
    use mochi_yokan::backend::memory::MemoryDatabase;
    use mochi_yokan::YokanProvider;
    use std::sync::Arc;

    #[test]
    fn workload_runs_end_to_end() {
        let fabric = Fabric::new();
        let server =
            mochi_margo::MargoRuntime::init_default(&fabric, Address::tcp("s", 1)).unwrap();
        let client =
            mochi_margo::MargoRuntime::init_default(&fabric, Address::tcp("c", 1)).unwrap();
        let _provider =
            YokanProvider::register(&server, 1, None, Arc::new(MemoryDatabase::new())).unwrap();
        let db = DatabaseHandle::new(&client, server.address(), 1);
        let spec = WorkloadSpec::hepnos_like(1);
        let reports = run_workload(&db, &spec).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].name, "ingest");
        assert_eq!(reports[0].ops, 40);
        assert!(reports[1].ops > 0, "analysis found ingested data");
        assert!(reports.iter().all(|r| r.throughput > 0.0));
        server.finalize();
        client.finalize();
    }

    #[test]
    fn spec_serializes() {
        let spec = WorkloadSpec::hepnos_like(2);
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
