//! The simulated cluster: a fabric, a node pool, and Bedrock processes.
//!
//! The paper expects dynamic services to "pair well with high-level HPC
//! resource managers such as Flux that support the elastic allocation of
//! cluster resources" (§2.3). [`Cluster`] plays that role: it owns a
//! fixed pool of node names (the machine), grants and revokes them, boots
//! Bedrock processes on granted nodes, and crashes them on demand. A
//! shared directory stands in for the parallel file system where
//! checkpoints live (§7, Observation 9).

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use mochi_bedrock::{BedrockServer, ModuleCatalog, ProcessConfig};
use mochi_mercury::{Address, Fabric, NetworkModel};
use mochi_util::TempDir;

/// Errors raised by cluster operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The resource manager has no free nodes.
    NoFreeNodes,
    /// No process runs at this address.
    NoSuchProcess(String),
    /// A node name outside the machine.
    UnknownNode(String),
    /// Underlying Bedrock failure.
    Bedrock(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoFreeNodes => write!(f, "no free nodes in the pool"),
            ClusterError::NoSuchProcess(a) => write!(f, "no process at {a}"),
            ClusterError::UnknownNode(n) => write!(f, "unknown node '{n}'"),
            ClusterError::Bedrock(m) => write!(f, "bedrock: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The module catalog with every component of this workspace installed —
/// the "software available on the machine".
pub fn default_catalog() -> ModuleCatalog {
    let mut catalog = ModuleCatalog::new();
    catalog.install(mochi_yokan::bedrock::LIBRARY, mochi_yokan::bedrock::bedrock_module());
    catalog.install(
        mochi_yokan::bedrock::VIRTUAL_LIBRARY,
        mochi_yokan::bedrock::virtual_bedrock_module(),
    );
    catalog.install(mochi_warabi::bedrock::LIBRARY, mochi_warabi::bedrock::bedrock_module());
    catalog
}

struct Pool {
    free: Vec<String>,
    granted: Vec<String>,
}

/// The simulated machine.
pub struct Cluster {
    fabric: Fabric,
    catalog: ModuleCatalog,
    root: TempDir,
    pool: Mutex<Pool>,
    processes: Mutex<BTreeMap<Address, BedrockServer>>,
    /// Port counter so re-spawns on the same node get fresh addresses
    /// unless the caller wants address reuse.
    next_port: Mutex<u32>,
}

impl Cluster {
    /// Creates a cluster of `node_count` nodes with the default catalog
    /// and an instant network.
    pub fn new(node_count: usize) -> Arc<Self> {
        Self::with_options(node_count, default_catalog(), NetworkModel::instant())
    }

    /// Full-control constructor.
    pub fn with_options(
        node_count: usize,
        catalog: ModuleCatalog,
        model: NetworkModel,
    ) -> Arc<Self> {
        let fabric = Fabric::with_model(model);
        let root = TempDir::new("cluster").expect("create cluster temp dir");
        Arc::new(Self {
            fabric,
            catalog,
            root,
            pool: Mutex::new(Pool {
                free: (0..node_count).rev().map(|i| format!("node{i:02}")).collect(),
                granted: Vec::new(),
            }),
            processes: Mutex::new(BTreeMap::new()),
            next_port: Mutex::new(1),
        })
    }

    /// The interconnect (fault injection lives here).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The shared "parallel file system" directory for checkpoints.
    pub fn pfs_dir(&self) -> PathBuf {
        let dir = self.root.path().join("pfs");
        std::fs::create_dir_all(&dir).expect("create pfs dir");
        dir
    }

    /// Asks the resource manager for a node (Flux-style grant).
    pub fn allocate_node(&self) -> Result<String, ClusterError> {
        let mut pool = self.pool.lock();
        let node = pool.free.pop().ok_or(ClusterError::NoFreeNodes)?;
        pool.granted.push(node.clone());
        Ok(node)
    }

    /// Returns a node to the pool.
    pub fn release_node(&self, node: &str) {
        let mut pool = self.pool.lock();
        if let Some(pos) = pool.granted.iter().position(|n| n == node) {
            pool.granted.remove(pos);
            pool.free.push(node.to_string());
        }
    }

    /// Free node count.
    pub fn free_nodes(&self) -> usize {
        self.pool.lock().free.len()
    }

    /// Boots a Bedrock process on `node`. Each spawn gets a fresh port,
    /// so a node can be reused after a crash without address collisions
    /// (callers that want address *reuse* pass the old address to
    /// [`Cluster::spawn_at`]).
    pub fn spawn(
        &self,
        node: &str,
        config: &ProcessConfig,
    ) -> Result<BedrockServer, ClusterError> {
        let port = {
            let mut next = self.next_port.lock();
            let p = *next;
            *next += 1;
            p
        };
        self.spawn_at(Address::tcp(node, port), config)
    }

    /// Boots a Bedrock process at an exact address.
    pub fn spawn_at(
        &self,
        addr: Address,
        config: &ProcessConfig,
    ) -> Result<BedrockServer, ClusterError> {
        let data_dir = self
            .root
            .path()
            .join("nodes")
            .join(addr.host())
            .join(format!("p{}", addr.port()));
        let server = BedrockServer::bootstrap(
            &self.fabric,
            addr.clone(),
            config,
            self.catalog.clone(),
            data_dir,
        )
        .map_err(|e| ClusterError::Bedrock(e.to_string()))?;
        self.processes.lock().insert(addr, server.clone());
        Ok(server)
    }

    /// The process at `addr`, if any.
    pub fn process(&self, addr: &Address) -> Option<BedrockServer> {
        self.processes.lock().get(addr).cloned()
    }

    /// Addresses of all live processes.
    pub fn process_addresses(&self) -> Vec<Address> {
        self.processes.lock().keys().cloned().collect()
    }

    /// Crashes the process at `addr` abruptly: no provider shutdown, no
    /// farewell — peers learn about it through SWIM timeouts. Data on the
    /// node's local "disk" survives for a later restart.
    pub fn crash(&self, addr: &Address) -> Result<(), ClusterError> {
        let server = self
            .processes
            .lock()
            .remove(addr)
            .ok_or_else(|| ClusterError::NoSuchProcess(addr.to_string()))?;
        // Finalizing Margo kills the endpoint and joins its threads; the
        // Bedrock providers are *not* stopped gracefully.
        server.margo().finalize();
        Ok(())
    }

    /// Gracefully stops the process at `addr` (providers stopped, Margo
    /// finalized).
    pub fn stop(&self, addr: &Address) -> Result<(), ClusterError> {
        let server = self
            .processes
            .lock()
            .remove(addr)
            .ok_or_else(|| ClusterError::NoSuchProcess(addr.to_string()))?;
        server.shutdown();
        Ok(())
    }

    /// Stops everything (test teardown).
    pub fn shutdown_all(&self) {
        let processes = std::mem::take(&mut *self.processes.lock());
        for (_, server) in processes {
            server.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release_nodes() {
        let cluster = Cluster::new(2);
        let a = cluster.allocate_node().unwrap();
        let b = cluster.allocate_node().unwrap();
        assert_ne!(a, b);
        assert_eq!(cluster.free_nodes(), 0);
        assert!(matches!(cluster.allocate_node(), Err(ClusterError::NoFreeNodes)));
        cluster.release_node(&a);
        assert_eq!(cluster.free_nodes(), 1);
        assert_eq!(cluster.allocate_node().unwrap(), a);
    }

    #[test]
    fn spawn_and_stop_processes() {
        let cluster = Cluster::new(2);
        let node = cluster.allocate_node().unwrap();
        let config = ProcessConfig::default();
        let server = cluster.spawn(&node, &config).unwrap();
        let addr = server.address();
        assert_eq!(cluster.process_addresses(), vec![addr.clone()]);
        assert!(cluster.process(&addr).is_some());
        cluster.stop(&addr).unwrap();
        assert!(cluster.process(&addr).is_none());
        assert!(matches!(cluster.stop(&addr), Err(ClusterError::NoSuchProcess(_))));
    }

    #[test]
    fn crash_leaves_peers_to_time_out() {
        let cluster = Cluster::new(2);
        let n1 = cluster.allocate_node().unwrap();
        let n2 = cluster.allocate_node().unwrap();
        let config = ProcessConfig::default();
        let s1 = cluster.spawn(&n1, &config).unwrap();
        let s2 = cluster.spawn(&n2, &config).unwrap();
        cluster.crash(&s2.address()).unwrap();
        // Talking to the crashed process times out.
        let err = s1
            .margo()
            .forward_timeout::<(), serde_json::Value>(
                &s2.address(),
                mochi_bedrock::proto::GET_CONFIG,
                0,
                &(),
                std::time::Duration::from_millis(50),
            )
            .unwrap_err();
        assert!(err.is_timeout());
        cluster.shutdown_all();
    }

    #[test]
    fn default_catalog_has_all_components() {
        let catalog = default_catalog();
        assert!(catalog.resolve("libyokan.so").is_some());
        assert!(catalog.resolve("libyokan-virtual.so").is_some());
        assert!(catalog.resolve("libwarabi.so").is_some());
    }
}
