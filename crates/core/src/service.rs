//! The dynamic service: a group of Bedrock processes tracked by SSG and
//! rescaled with Pufferscale + REMI (paper §6).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use mochi_bedrock::{BedrockServer, ProcessConfig, ProviderSpec};
use mochi_mercury::Address;
use mochi_pufferscale::{plan_rebalance, Placement, RebalancePlan, Resource, Weights};
use mochi_remi::Strategy;
use mochi_ssg::{GroupView, SsgGroup, SwimConfig};

use crate::cluster::{Cluster, ClusterError};

/// Provider id every service member uses for its SSG group.
pub const SSG_PROVIDER_ID: u16 = 64_000;

/// How a service is deployed.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Template for each process: libraries to load; providers listed
    /// here are instantiated on *every* initial member (per-node
    /// providers come from the `provider_namer` closure passed to
    /// [`DynamicService::deploy`]).
    pub process: ProcessConfig,
    /// SWIM tuning.
    pub swim: SwimConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let mut process = ProcessConfig::default();
        process.libraries.insert("yokan".into(), mochi_yokan::bedrock::LIBRARY.into());
        process.libraries.insert("warabi".into(), mochi_warabi::bedrock::LIBRARY.into());
        // Service-level SWIM: a bit more patient than the raw test
        // config, since members also serve data RPCs on the same pools
        // and transient handler delays must not read as deaths.
        let swim = SwimConfig {
            period_ms: 20,
            ping_timeout_ms: 10,
            suspicion_periods: 5,
            ..SwimConfig::default()
        };
        Self { process, swim }
    }
}

/// Errors raised by service operations.
#[derive(Debug)]
pub enum ServiceError {
    /// Cluster-level failure.
    Cluster(ClusterError),
    /// Bedrock-level failure.
    Bedrock(mochi_bedrock::BedrockError),
    /// Margo-level failure.
    Margo(mochi_margo::MargoError),
    /// The address is not a member.
    NotAMember(Address),
    /// The service would become empty.
    LastNode,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Cluster(e) => write!(f, "cluster: {e}"),
            ServiceError::Bedrock(e) => write!(f, "bedrock: {e}"),
            ServiceError::Margo(e) => write!(f, "margo: {e}"),
            ServiceError::NotAMember(a) => write!(f, "{a} is not a service member"),
            ServiceError::LastNode => write!(f, "cannot remove the last node"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ClusterError> for ServiceError {
    fn from(e: ClusterError) -> Self {
        ServiceError::Cluster(e)
    }
}
impl From<mochi_bedrock::BedrockError> for ServiceError {
    fn from(e: mochi_bedrock::BedrockError) -> Self {
        ServiceError::Bedrock(e)
    }
}
impl From<mochi_margo::MargoError> for ServiceError {
    fn from(e: mochi_margo::MargoError) -> Self {
        ServiceError::Margo(e)
    }
}

pub(crate) struct MemberRecord {
    pub server: BedrockServer,
    pub group: Arc<SsgGroup>,
    pub node: String,
    /// The process config this member was booted with (used by the
    /// resilience manager to rebuild it elsewhere).
    pub config: ProcessConfig,
}

/// A running dynamic service.
pub struct DynamicService {
    cluster: Arc<Cluster>,
    config: ServiceConfig,
    pub(crate) members: Mutex<BTreeMap<Address, MemberRecord>>,
}

impl DynamicService {
    /// Deploys the service on `n` freshly allocated nodes. Each process
    /// boots from `config.process`; member `i` additionally instantiates
    /// the providers produced by `provider_namer(i)` (so each node can
    /// host distinctly named providers).
    pub fn deploy(
        cluster: &Arc<Cluster>,
        config: ServiceConfig,
        n: usize,
        provider_namer: impl Fn(usize) -> Vec<ProviderSpec>,
    ) -> Result<Arc<Self>, ServiceError> {
        let mut servers: Vec<(String, ProcessConfig, BedrockServer)> = Vec::with_capacity(n);
        for i in 0..n {
            let node = cluster.allocate_node()?;
            let mut process = config.process.clone();
            process.providers.extend(provider_namer(i));
            let server = cluster.spawn(&node, &process)?;
            servers.push((node, process, server));
        }
        let addresses: Vec<Address> =
            servers.iter().map(|(_, _, s)| s.address()).collect();
        let mut members = BTreeMap::new();
        for (node, process, server) in servers {
            let group = SsgGroup::create(
                server.margo(),
                SSG_PROVIDER_ID,
                config.swim,
                &addresses,
            )?;
            members.insert(
                server.address(),
                MemberRecord { server, group, node, config: process },
            );
        }
        Ok(Arc::new(Self { cluster: Arc::clone(cluster), config, members: Mutex::new(members) }))
    }

    /// The cluster this service runs on.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Current member addresses (the service's own bookkeeping — the
    /// SSG view is the protocol-level equivalent).
    pub fn addresses(&self) -> Vec<Address> {
        self.members.lock().keys().cloned().collect()
    }

    /// The Bedrock server of a member.
    pub fn server(&self, addr: &Address) -> Option<BedrockServer> {
        self.members.lock().get(addr).map(|m| m.server.clone())
    }

    /// The SSG group handle of a member (for callbacks and views).
    pub fn group(&self, addr: &Address) -> Option<Arc<SsgGroup>> {
        self.members.lock().get(addr).map(|m| Arc::clone(&m.group))
    }

    /// A membership view from any live member.
    pub fn view(&self) -> Option<GroupView> {
        self.members.lock().values().next().map(|m| m.group.view())
    }

    /// Scales out by one node: allocate, boot the library-only template
    /// (no providers — data arrives via rebalancing), join the group.
    pub fn add_node(&self) -> Result<Address, ServiceError> {
        let node = self.cluster.allocate_node()?;
        let mut process = self.config.process.clone();
        process.providers.clear();
        let server = self.cluster.spawn(&node, &process)?;
        let seed = self
            .addresses()
            .first()
            .cloned()
            .ok_or(ServiceError::LastNode)?;
        let group = SsgGroup::join(server.margo(), SSG_PROVIDER_ID, self.config.swim, &seed)?;
        let addr = server.address();
        self.members.lock().insert(
            addr.clone(),
            MemberRecord { server, group, node, config: process },
        );
        Ok(addr)
    }

    /// Scales in: migrates all providers off `addr` (per a Pufferscale
    /// plan restricted to forced moves), leaves the group, stops the
    /// process, and returns the node to the pool.
    pub fn remove_node(
        &self,
        addr: &Address,
        strategy: Strategy,
        weights: &Weights,
    ) -> Result<RebalancePlan, ServiceError> {
        {
            let members = self.members.lock();
            if !members.contains_key(addr) {
                return Err(ServiceError::NotAMember(addr.clone()));
            }
            if members.len() == 1 {
                return Err(ServiceError::LastNode);
            }
        }
        let placement = self.placement();
        let survivors: Vec<String> = self
            .addresses()
            .into_iter()
            .filter(|a| a != addr)
            .map(|a| a.to_string())
            .collect();
        let plan = plan_rebalance(&placement, &survivors, weights);
        self.execute_plan(&plan, strategy)?;
        // Graceful departure.
        let record = self.members.lock().remove(addr).expect("checked above");
        record.group.leave();
        self.cluster.stop(addr)?;
        self.cluster.release_node(&record.node);
        Ok(plan)
    }

    /// Builds the current provider placement: one Pufferscale resource
    /// per provider, sized by its reported state (`keys`/`blobs` count if
    /// the component exposes one, else 1) — enough signal for balancing
    /// without coupling the planner to component internals.
    pub fn placement(&self) -> Placement {
        let members = self.members.lock();
        let mut placement =
            Placement::empty(&members.keys().map(|a| a.to_string()).collect::<Vec<_>>());
        for (addr, record) in members.iter() {
            let config = record.server.get_config();
            if let Some(providers) = config["providers"].as_array() {
                for provider in providers {
                    let name = provider["name"].as_str().unwrap_or_default().to_string();
                    if name.is_empty() {
                        continue;
                    }
                    let weight = provider["state"]["keys"]
                        .as_u64()
                        .or_else(|| provider["state"]["blobs"].as_u64())
                        .unwrap_or(0)
                        .max(1);
                    placement.nodes.get_mut(&addr.to_string()).expect("member").push(Resource {
                        id: name,
                        load: weight as f64,
                        size: weight,
                    });
                }
            }
        }
        placement
    }

    /// Rebalances providers across the current members under `weights`.
    pub fn rebalance(
        &self,
        strategy: Strategy,
        weights: &Weights,
    ) -> Result<RebalancePlan, ServiceError> {
        let placement = self.placement();
        let targets: Vec<String> =
            self.addresses().iter().map(|a| a.to_string()).collect();
        let plan = plan_rebalance(&placement, &targets, weights);
        self.execute_plan(&plan, strategy)?;
        Ok(plan)
    }

    fn execute_plan(
        &self,
        plan: &RebalancePlan,
        strategy: Strategy,
    ) -> Result<(), ServiceError> {
        for step in &plan.moves {
            let from: Address = step
                .from
                .parse()
                .map_err(|e: mochi_mercury::MercuryError| ServiceError::Margo(e.into()))?;
            let to: Address = step
                .to
                .parse()
                .map_err(|e: mochi_mercury::MercuryError| ServiceError::Margo(e.into()))?;
            let server = self
                .server(&from)
                .ok_or_else(|| ServiceError::NotAMember(from.clone()))?;
            server
                .migrate_provider(&step.resource, &to, strategy)
                .map_err(ServiceError::Bedrock)?;
        }
        Ok(())
    }

    /// Stops every member (teardown).
    pub fn shutdown(&self) {
        let members = std::mem::take(&mut *self.members.lock());
        for (addr, record) in members {
            record.group.stop();
            let _ = self.cluster.stop(&addr);
            self.cluster.release_node(&record.node);
        }
    }
}
