//! The introspection→decision loop (paper §2.3 and §4): monitoring data
//! drives online reconfiguration.
//!
//! The [`AdaptiveController`] watches a pool's queue depth through the
//! very statistics Margo publishes and adds or removes execution streams
//! in response — the minimal but complete instance of "performance
//! introspection … provides the empirical data necessary for informed
//! decisions about changes made to the service".

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use mochi_margo::MargoRuntime;

/// Scaling policy for one pool.
#[derive(Debug, Clone)]
pub struct ScalingPolicy {
    /// Pool to manage.
    pub pool: String,
    /// Add an ES when the average queue depth since the last tick
    /// exceeds this.
    pub high_watermark: f64,
    /// Remove an ES when it falls below this.
    pub low_watermark: f64,
    /// Never fewer ESs than this.
    pub min_xstreams: usize,
    /// Never more ESs than this.
    pub max_xstreams: usize,
    /// Decision interval.
    pub period: Duration,
}

impl Default for ScalingPolicy {
    fn default() -> Self {
        Self {
            pool: "__primary__".into(),
            high_watermark: 4.0,
            low_watermark: 0.5,
            min_xstreams: 1,
            max_xstreams: 8,
            period: Duration::from_millis(100),
        }
    }
}

/// Decision log entry.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalingDecision {
    /// Added an execution stream (new total).
    ScaledUp(usize),
    /// Removed an execution stream (new total).
    ScaledDown(usize),
}

/// A running controller.
pub struct AdaptiveController {
    margo: MargoRuntime,
    policy: ScalingPolicy,
    stopped: Arc<AtomicBool>,
    decisions: Arc<Mutex<Vec<ScalingDecision>>>,
    managed: Arc<Mutex<Vec<String>>>,
    ticks: Arc<AtomicU64>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl AdaptiveController {
    /// Starts controlling `policy.pool` on `margo`.
    pub fn start(margo: &MargoRuntime, policy: ScalingPolicy) -> Arc<Self> {
        let controller = Arc::new(Self {
            margo: margo.clone(),
            policy,
            stopped: Arc::new(AtomicBool::new(false)),
            decisions: Arc::new(Mutex::new(Vec::new())),
            managed: Arc::new(Mutex::new(Vec::new())),
            ticks: Arc::new(AtomicU64::new(0)),
            thread: Mutex::new(None),
        });
        let c = Arc::clone(&controller);
        let handle = std::thread::Builder::new()
            .name("adaptive-controller".into())
            .spawn(move || {
                let mut last_popped = 0u64;
                let mut last_pushed = 0u64;
                while !c.stopped.load(Ordering::SeqCst) {
                    std::thread::sleep(c.policy.period);
                    if c.stopped.load(Ordering::SeqCst) {
                        break;
                    }
                    c.ticks.fetch_add(1, Ordering::SeqCst);
                    c.tick(&mut last_pushed, &mut last_popped);
                }
            })
            .expect("spawn adaptive controller");
        *controller.thread.lock() = Some(handle);
        controller
    }

    fn tick(&self, last_pushed: &mut u64, last_popped: &mut u64) {
        let stats = self.margo.abt().pool_stats();
        let Some(pool) = stats.iter().find(|p| p.name == self.policy.pool) else {
            return;
        };
        // Backlog growth between ticks is the pressure signal; the
        // instantaneous queue depth is the level signal.
        let pushed = pool.total_pushed - *last_pushed;
        let popped = pool.total_popped - *last_popped;
        *last_pushed = pool.total_pushed;
        *last_popped = pool.total_popped;
        let pressure = pool.size as f64 + (pushed.saturating_sub(popped)) as f64;

        let current = self.margo.abt().xstreams_using_pool(&self.policy.pool).len();
        if pressure > self.policy.high_watermark && current < self.policy.max_xstreams {
            let name = format!("adaptive-{}-{}", self.policy.pool, mochi_util::unique_u64());
            let spec = format!(
                r#"{{"name": "{name}", "scheduler": {{"type": "basic_wait", "pools": ["{}"]}}}}"#,
                self.policy.pool
            );
            if self.margo.add_xstream_from_json(&spec).is_ok() {
                self.managed.lock().push(name);
                self.decisions.lock().push(ScalingDecision::ScaledUp(current + 1));
            }
        } else if pressure < self.policy.low_watermark && current > self.policy.min_xstreams {
            // Only remove streams we added ourselves.
            let candidate = self.managed.lock().pop();
            if let Some(name) = candidate {
                if self.margo.remove_xstream(&name).is_ok() {
                    self.decisions.lock().push(ScalingDecision::ScaledDown(current - 1));
                } else {
                    self.managed.lock().push(name);
                }
            }
        }
    }

    /// Decisions so far.
    pub fn decisions(&self) -> Vec<ScalingDecision> {
        self.decisions.lock().clone()
    }

    /// Number of control ticks executed (test synchronization).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::SeqCst)
    }

    /// Stops the controller, removing the streams it added.
    pub fn stop(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
        for name in self.managed.lock().drain(..) {
            let _ = self.margo.remove_xstream(&name);
        }
    }
}

impl Drop for AdaptiveController {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mochi_argobots::Ult;
    use mochi_mercury::{Address, Fabric};
    use mochi_util::time::wait_until;

    #[test]
    fn scales_up_under_backlog_and_down_when_idle() {
        let fabric = Fabric::new();
        let margo = MargoRuntime::init_default(&fabric, Address::tcp("ctrl", 1)).unwrap();
        let policy = ScalingPolicy {
            high_watermark: 3.0,
            low_watermark: 0.5,
            max_xstreams: 4,
            period: Duration::from_millis(10),
            ..Default::default()
        };
        let controller = AdaptiveController::start(&margo, policy);

        // Flood the pool with slow ULTs to build a backlog.
        let pool = margo.abt().find_pool("__primary__").unwrap();
        for _ in 0..60 {
            pool.push(Ult::new("slow", || {
                std::thread::sleep(Duration::from_millis(4));
            }));
        }
        assert!(wait_until(Duration::from_secs(10), Duration::from_millis(5), || {
            controller
                .decisions()
                .iter()
                .any(|d| matches!(d, ScalingDecision::ScaledUp(_)))
        }));
        // Once drained, it scales back down.
        assert!(wait_until(Duration::from_secs(15), Duration::from_millis(10), || {
            controller
                .decisions()
                .iter()
                .any(|d| matches!(d, ScalingDecision::ScaledDown(_)))
        }));
        controller.stop();
        // All adaptive streams removed again.
        assert_eq!(margo.abt().xstreams_using_pool("__primary__").len(), 1);
        margo.finalize();
    }

    #[test]
    fn respects_max_xstreams() {
        let fabric = Fabric::new();
        let margo = MargoRuntime::init_default(&fabric, Address::tcp("ctrl2", 1)).unwrap();
        let policy = ScalingPolicy {
            high_watermark: 0.0, // always scale up
            low_watermark: -1.0, // never scale down
            max_xstreams: 3,
            period: Duration::from_millis(5),
            ..Default::default()
        };
        let controller = AdaptiveController::start(&margo, policy);
        let pool = margo.abt().find_pool("__primary__").unwrap();
        for _ in 0..500 {
            pool.push(Ult::new("slow", || {
                std::thread::sleep(Duration::from_millis(2));
            }));
        }
        assert!(wait_until(Duration::from_secs(10), Duration::from_millis(5), || {
            controller.ticks() > 20
        }));
        assert!(margo.abt().xstreams_using_pool("__primary__").len() <= 3);
        controller.stop();
        margo.finalize();
    }
}
