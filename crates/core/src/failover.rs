//! SSG-view-driven failover for resource handles (paper §7).
//!
//! A [`DatabaseHandle`](mochi_yokan::client::DatabaseHandle) pins one
//! `(address, provider_id)`; when the [`ResilienceManager`] rebuilds a
//! dead member on a fresh node, that pinned address points at a grave.
//! [`FailoverKv`] closes the loop: it resolves the provider's *current*
//! location from the service's own bookkeeping filtered by the SSG view
//! (Observation 12 — SWIM tells us who is actually alive), issues the
//! operation through the regular retry-aware client, and on a
//! transport-class failure or an open breaker re-resolves and tries the
//! next incarnation.
//!
//! [`ResilienceManager`]: crate::resilience::ResilienceManager

use std::time::Duration;

use mochi_margo::{MargoError, MargoRuntime};
use mochi_mercury::Address;
use mochi_yokan::client::DatabaseHandle;

use crate::service::DynamicService;
use std::sync::Arc;

/// Default wait between re-resolution rounds while the service recovers
/// a member (SWIM detection + respawn are not instantaneous). Override
/// with [`FailoverKv::with_reroute_backoff`].
const REROUTE_BACKOFF: Duration = Duration::from_millis(50);

/// Default resolution rounds before giving up. Override with
/// [`FailoverKv::with_max_rounds`].
const MAX_ROUNDS: u32 = 40;

/// A Yokan database handle that follows its provider across failovers.
pub struct FailoverKv {
    service: Arc<DynamicService>,
    margo: MargoRuntime,
    provider: String,
    /// Resolution rounds before giving up (each round re-reads the view).
    max_rounds: u32,
    /// Wait between re-resolution rounds.
    reroute_backoff: Duration,
    /// Per-operation timeout; kept short so a stale location fails fast
    /// and the next round re-resolves.
    timeout: Duration,
}

impl FailoverKv {
    /// Creates a failover handle for the provider named `provider`,
    /// issuing RPCs from `margo` (typically a client process outside the
    /// service).
    pub fn new(service: &Arc<DynamicService>, margo: &MargoRuntime, provider: &str) -> Self {
        Self {
            service: Arc::clone(service),
            margo: margo.clone(),
            provider: provider.to_string(),
            max_rounds: MAX_ROUNDS,
            reroute_backoff: REROUTE_BACKOFF,
            timeout: Duration::from_millis(250),
        }
    }

    /// Overrides the number of re-resolution rounds.
    pub fn with_max_rounds(mut self, rounds: u32) -> Self {
        self.max_rounds = rounds.max(1);
        self
    }

    /// Overrides the wait between re-resolution rounds (default 50ms).
    /// The routed keyspace tunes this down so a whole scatter-gather
    /// fan-out is not held hostage by one slow leg's backoff.
    pub fn with_reroute_backoff(mut self, backoff: Duration) -> Self {
        self.reroute_backoff = backoff;
        self
    }

    /// The provider name this handle follows.
    pub fn provider(&self) -> &str {
        &self.provider
    }

    /// Overrides the per-operation timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Resolves the provider's current location: a member that is both in
    /// the service's records and alive per the SSG view, and that reports
    /// hosting `self.provider`.
    pub fn resolve(&self) -> Option<(Address, u16)> {
        let view = self.service.view()?;
        for addr in self.service.addresses() {
            if !view.contains(&addr) {
                continue;
            }
            let Some(server) = self.service.server(&addr) else { continue };
            if let Ok(info) = server.lookup_provider(&self.provider) {
                return Some((addr, info.provider_id));
            }
        }
        None
    }

    /// Runs `op` against the provider's current location, re-resolving
    /// and retrying when the location fails underneath it. Application
    /// errors (`Handler`) pass through untouched — failover only reroutes
    /// failures that mean "this *location* is unreachable": transport
    /// errors, missing handlers, exhausted deadlines, and open breakers.
    pub fn with_handle<T>(
        &self,
        op: impl Fn(&DatabaseHandle) -> Result<T, MargoError>,
    ) -> Result<T, MargoError> {
        self.with_handle_rounds(self.max_rounds, op)
    }

    /// [`Self::with_handle`] with an explicit round budget. Replicated
    /// fan-outs drive each leg with a small budget (fail fast, let the
    /// quorum/hint machinery absorb the loss) while keeping the default
    /// patient behavior for single-provider callers.
    pub fn with_handle_rounds<T>(
        &self,
        rounds: u32,
        op: impl Fn(&DatabaseHandle) -> Result<T, MargoError>,
    ) -> Result<T, MargoError> {
        let mut last_err = MargoError::Handler(format!(
            "provider '{}' not found on any live member",
            self.provider
        ));
        for round in 0..rounds.max(1) {
            if round > 0 {
                std::thread::sleep(self.reroute_backoff);
            }
            let Some((addr, provider_id)) = self.resolve() else {
                continue;
            };
            let handle =
                DatabaseHandle::new(&self.margo, addr, provider_id).with_timeout(self.timeout);
            match op(&handle) {
                Ok(value) => return Ok(value),
                Err(err) if Self::should_reroute(&err) => last_err = err,
                Err(err) => return Err(err),
            }
        }
        Err(last_err)
    }

    fn should_reroute(err: &MargoError) -> bool {
        err.is_retryable()
            || matches!(err, MargoError::BreakerOpen { .. } | MargoError::DeadlineExceeded)
    }

    /// Stores `value` under `key` at the provider's current location.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError> {
        self.with_handle(|h| h.put(key, value))
    }

    /// Fetches the value under `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        self.with_handle(|h| h.get(key))
    }

    /// Stores many pairs in one RPC at the provider's current location.
    pub fn put_multi(&self, pairs: &[(&[u8], &[u8])]) -> Result<(), MargoError> {
        self.with_handle(|h| h.put_multi(pairs))
    }

    /// Fetches many values in one RPC (entry is `None` for missing keys).
    pub fn get_multi(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>, MargoError> {
        self.with_handle(|h| h.get_multi(keys))
    }

    /// Removes `key`; returns whether it existed. Not retried by the
    /// transport (erase is not idempotent), but still re-resolved across
    /// rounds like every other op — so after a transport-class failure
    /// the erase may execute twice. The *effect* (key absent) is
    /// idempotent; only the returned bool can differ, same caveat the
    /// yokan client documents for erase-under-retry.
    pub fn erase(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.with_handle(|h| h.erase(key))
    }

    /// Lists up to `max` keys starting with `prefix`, after `start_after`.
    pub fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, MargoError> {
        self.with_handle(|h| h.list_keys(prefix, start_after, max))
    }

    /// Whether `key` exists.
    pub fn exists(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.with_handle(|h| h.exists(key))
    }

    /// Number of keys.
    pub fn len(&self) -> Result<u64, MargoError> {
        self.with_handle(|h| h.len())
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> Result<bool, MargoError> {
        Ok(self.len()? == 0)
    }
}
