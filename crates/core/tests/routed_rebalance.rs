//! End-to-end tests of the routed keyspace (`RoutedKv`): steady-state
//! scatter-gather routing, keyspace-tag discovery, and — the acceptance
//! bar of experiment A9 — a live rebalance soak where a provider joins
//! and another retires mid-traffic under a scripted fault plane, with
//! zero acked-write loss.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use serde_json::json;

use mochi_core::routed::{RoutedConfig, RoutedKv};
use mochi_core::{Cluster, DynamicService, FailoverKv, ServiceConfig};
use mochi_margo::{MargoConfig, MargoRuntime};
use mochi_mercury::{Address, LinkScript};
use mochi_util::time::wait_until;

const KEYSPACE: &str = "soak";

fn keyspace_namer(i: usize) -> Vec<mochi_bedrock::ProviderSpec> {
    vec![mochi_bedrock::ProviderSpec::new(format!("kv{i}"), "yokan", 10 + i as u16)
        .with_config(json!({"backend": "lsm"}))
        .with_tag(format!("keyspace:{KEYSPACE}"))]
}

/// Client runtime with patient retry settings: the soak injects message
/// drops, and a dropped idempotent RPC should be re-sent rather than
/// surface as a lost ack.
fn soak_client(cluster: &Cluster, name: &str) -> MargoRuntime {
    let mut config = MargoConfig::default();
    config.retry.max_attempts = 4;
    config.rpc_timeout_ms = 2_000;
    MargoRuntime::init(cluster.fabric(), Address::tcp(name, 1), &config).unwrap()
}

fn wait_for_view(service: &DynamicService, members: usize) {
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        service.view().is_some_and(|v| v.len() == members)
    }));
}

#[test]
fn routed_keyspace_spreads_and_serves() {
    let cluster = Cluster::new(3);
    let service =
        DynamicService::deploy(&cluster, ServiceConfig::default(), 2, |i| {
            // Two keyspace members per node → a 4-way ring over 2 nodes.
            vec![
                mochi_bedrock::ProviderSpec::new(format!("kv{i}a"), "yokan", 10 + 2 * i as u16)
                    .with_config(json!({"backend": "lsm"}))
                    .with_tag(format!("keyspace:{KEYSPACE}")),
                mochi_bedrock::ProviderSpec::new(format!("kv{i}b"), "yokan", 11 + 2 * i as u16)
                    .with_config(json!({"backend": "lsm"}))
                    .with_tag(format!("keyspace:{KEYSPACE}")),
            ]
        })
        .unwrap();
    wait_for_view(&service, 2);
    let client = soak_client(&cluster, "client");
    let routed =
        RoutedKv::for_keyspace(&service, &client, KEYSPACE, RoutedConfig::default()).unwrap();
    assert_eq!(routed.members(), vec!["kv0a", "kv0b", "kv1a", "kv1b"]);

    // Batched writes fan out per destination; every slot must ack.
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..200)
        .map(|i| (format!("key-{i:04}").into_bytes(), format!("value-{i}").into_bytes()))
        .collect();
    let refs: Vec<(&[u8], &[u8])> =
        pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
    for slot in routed.put_multi(&refs) {
        slot.unwrap();
    }
    assert_eq!(routed.len().unwrap(), 200);

    // The ring actually spreads the keyspace: every member holds keys.
    for member in routed.members() {
        let direct = FailoverKv::new(&service, &client, &member);
        assert!(direct.len().unwrap() > 0, "{member} owns no keys");
    }

    // Batched reads see every write; single-key ops agree.
    let key_refs: Vec<&[u8]> = pairs.iter().map(|(k, _)| k.as_slice()).collect();
    for (slot, (_, value)) in routed.get_multi(&key_refs).into_iter().zip(&pairs) {
        assert_eq!(slot.unwrap().as_deref(), Some(value.as_slice()));
    }
    assert_eq!(routed.get(b"key-0007").unwrap().as_deref(), Some(b"value-7".as_slice()));
    assert!(routed.exists(b"key-0199").unwrap());

    // Merged listing is globally sorted, deduplicated, and bounded.
    let listed = routed.list_keys(b"key-", None, 1000).unwrap();
    assert_eq!(listed.len(), 200);
    assert!(listed.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(routed.list_keys(b"key-", None, 10).unwrap().len(), 10);

    // Erase routes by owner and reports per-key existence.
    assert!(routed.erase(b"key-0000").unwrap());
    assert!(!routed.erase(b"key-0000").unwrap());
    let gone: Vec<&[u8]> = vec![b"key-0001".as_slice(), b"key-0002".as_slice(), b"no-such-key".as_slice()];
    let erased: Vec<bool> =
        routed.erase_multi(&gone).into_iter().map(|slot| slot.unwrap()).collect();
    assert_eq!(erased, vec![true, true, false]);
    assert_eq!(routed.len().unwrap(), 197);

    service.shutdown();
    client.finalize();
}

#[test]
fn join_and_retire_move_minimal_slices() {
    let cluster = Cluster::new(3);
    let service =
        DynamicService::deploy(&cluster, ServiceConfig::default(), 2, keyspace_namer).unwrap();
    wait_for_view(&service, 2);
    let client = soak_client(&cluster, "client");
    let routed =
        RoutedKv::for_keyspace(&service, &client, KEYSPACE, RoutedConfig::default()).unwrap();

    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..300)
        .map(|i| (format!("key-{i:04}").into_bytes(), format!("value-{i}").into_bytes()))
        .collect();
    let refs: Vec<(&[u8], &[u8])> =
        pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
    for slot in routed.put_multi(&refs) {
        slot.unwrap();
    }

    // Join: Pufferscale picks the host, REMI drains the moved slices.
    let spec = mochi_bedrock::ProviderSpec::new("kv2", "yokan", 12)
        .with_config(json!({"backend": "lsm"}))
        .with_tag(format!("keyspace:{KEYSPACE}"));
    let report = routed.join_provider(&spec, None).unwrap();
    assert!(report.moved_keys > 0, "the joiner must receive keys");
    assert!(report.slices > 0, "drain goes through REMI slices");
    assert!(
        report.moved_keys < 300,
        "minimal disruption: only the joiner's arcs move, not the keyspace"
    );
    assert_eq!(routed.members(), vec!["kv0", "kv1", "kv2"]);

    // No key was lost or duplicated: the global count is exact again
    // after cleanup, and every value reads back.
    assert_eq!(routed.len().unwrap(), 300);
    let joiner = FailoverKv::new(&service, &client, "kv2");
    assert_eq!(joiner.len().unwrap(), report.moved_keys);
    let key_refs: Vec<&[u8]> = pairs.iter().map(|(k, _)| k.as_slice()).collect();
    for (slot, (_, value)) in routed.get_multi(&key_refs).into_iter().zip(&pairs) {
        assert_eq!(slot.unwrap().as_deref(), Some(value.as_slice()));
    }

    // Retire kv0: everything it owned drains to the survivors; the
    // provider stays up but is empty and out of the ring.
    let report = routed.retire("kv0").unwrap();
    assert!(report.moved_keys > 0);
    assert_eq!(routed.members(), vec!["kv1", "kv2"]);
    assert_eq!(routed.len().unwrap(), 300);
    let retired = FailoverKv::new(&service, &client, "kv0");
    assert_eq!(retired.len().unwrap(), 0, "retired member keeps nothing");
    for (slot, (_, value)) in routed.get_multi(&key_refs).into_iter().zip(&pairs) {
        assert_eq!(slot.unwrap().as_deref(), Some(value.as_slice()));
    }

    service.shutdown();
    client.finalize();
}

/// The A9 acceptance soak: under a seeded fault plane (probabilistic
/// drops + deterministic delay spikes), a provider joins and another
/// retires while a writer hammers the keyspace. Every write the client
/// saw acked must read back with its exact value afterwards — zero
/// acked-write loss across both membership changes — for every seed.
#[test]
fn live_rebalance_soak_loses_no_acked_write() {
    const SEEDS: [u64; 3] = [1, 2, 3];
    for seed in SEEDS {
        live_rebalance_round(seed);
    }
}

fn live_rebalance_round(seed: u64) {
    let cluster = Cluster::new(4);
    let service =
        DynamicService::deploy(&cluster, ServiceConfig::default(), 3, keyspace_namer).unwrap();
    wait_for_view(&service, 3);
    let client = soak_client(&cluster, "client");
    let routed = RoutedKv::for_keyspace(
        &service,
        &client,
        KEYSPACE,
        RoutedConfig { leg_timeout: Duration::from_millis(500), ..RoutedConfig::default() },
    )
    .unwrap();

    // Preload so the join has slices to drain from the first moment.
    let preload: Vec<(Vec<u8>, Vec<u8>)> = (0..400)
        .map(|i| (format!("pre-{seed}-{i:04}").into_bytes(), format!("v{i}").into_bytes()))
        .collect();
    let refs: Vec<(&[u8], &[u8])> =
        preload.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
    for slot in routed.put_multi(&refs) {
        slot.unwrap();
    }

    // Scripted fault plane: seeded 1% drops everywhere plus a
    // deterministic delay spike on every 50th message.
    let faults = cluster.fabric().faults();
    faults.set_seed(seed);
    faults.set_drop_probability(None, None, 0.01);
    faults.push_script(
        None,
        None,
        LinkScript::DelaySpike { period: 50, spike: Duration::from_millis(2) },
    );

    let stop = AtomicBool::new(false);
    let acked: std::sync::Mutex<BTreeMap<Vec<u8>, Vec<u8>>> =
        std::sync::Mutex::new(preload.iter().cloned().collect());

    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                i += 1;
                let key = format!("live-{seed}-{i:06}").into_bytes();
                let value = format!("val-{seed}-{i}").into_bytes();
                if i % 7 == 0 {
                    // Erase a previously acked key. Erase is not
                    // idempotent: on error the server-side effect is
                    // unknown, so the expectation drops the key either
                    // way — zero-loss is asserted over acked *puts*.
                    let victim = acked.lock().unwrap().keys().next().cloned();
                    if let Some(victim) = victim {
                        acked.lock().unwrap().remove(&victim);
                        let _ = routed.erase(&victim);
                    }
                } else if routed.put(&key, &value).is_ok() {
                    acked.lock().unwrap().insert(key, value);
                }
            }
            i
        });

        // Mid-traffic: grow the service by a node, join a fresh provider
        // on it, then retire one of the founding members.
        let new_node = service.add_node().unwrap();
        wait_for_view(&service, 4);
        let spec = mochi_bedrock::ProviderSpec::new("kv3", "yokan", 13)
            .with_config(json!({"backend": "lsm"}))
            .with_tag(format!("keyspace:{KEYSPACE}"));
        let join = routed.join_provider(&spec, Some(&new_node)).unwrap();
        assert!(join.moved_keys > 0, "seed {seed}: join drained nothing");

        let retire = routed.retire("kv1").unwrap();
        assert!(retire.moved_keys > 0, "seed {seed}: retire drained nothing");

        stop.store(true, Ordering::Release);
        let ops = writer.join().unwrap();
        assert!(ops > 0);
    });

    // Heal the fabric for verification: the soak asserts durability of
    // acked writes, not availability under ongoing faults.
    faults.clear();

    assert_eq!(routed.members(), vec!["kv0", "kv2", "kv3"]);
    let expected = acked.into_inner().unwrap();
    let keys: Vec<&[u8]> = expected.keys().map(Vec::as_slice).collect();
    for (slot, (key, value)) in routed.get_multi(&keys).into_iter().zip(&expected) {
        let read = slot
            .unwrap_or_else(|e| panic!("seed {seed}: acked key {:?} unreadable: {e}",
                String::from_utf8_lossy(key)));
        assert_eq!(
            read.as_deref(),
            Some(value.as_slice()),
            "seed {seed}: acked write lost for {:?}",
            String::from_utf8_lossy(key)
        );
    }
    // The keyspace holds at least the acked state. (Strict equality
    // would be wrong: a put or erase that *errored* at the client may
    // still have executed server-side — those keys exist without being
    // expected, which is permitted; losing an acked key is not.)
    assert!(routed.len().unwrap() >= expected.len() as u64, "seed {seed}");

    service.shutdown();
    client.finalize();
}
