//! End-to-end tests of the dynamic service: deployment, elasticity
//! (scale-out/in with Pufferscale + REMI), and top-down resilience
//! (SWIM-detected death → checkpoint restore on a fresh node).

use std::time::Duration;

use serde_json::json;

use mochi_core::{Cluster, DynamicService, ResilienceConfig, ResilienceManager, ServiceConfig};
use mochi_margo::MargoRuntime;
use mochi_mercury::Address;
use mochi_pufferscale::Weights;
use mochi_remi::Strategy;
use mochi_util::time::wait_until;
use mochi_yokan::DatabaseHandle;

fn kv_namer(i: usize) -> Vec<mochi_bedrock::ProviderSpec> {
    vec![mochi_bedrock::ProviderSpec::new(format!("db{i}"), "yokan", 10 + i as u16)
        .with_config(json!({"backend": "lsm"}))]
}

fn client_margo(cluster: &Cluster, name: &str) -> MargoRuntime {
    MargoRuntime::init_default(cluster.fabric(), Address::tcp(name, 1)).unwrap()
}

#[test]
fn deploy_serves_kv_on_every_node() {
    let cluster = Cluster::new(4);
    let service =
        DynamicService::deploy(&cluster, ServiceConfig::default(), 3, kv_namer).unwrap();
    assert_eq!(service.addresses().len(), 3);
    // SSG view converges to 3 members.
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        service.view().is_some_and(|v| v.len() == 3)
    }));
    // Each node serves its own database.
    let client = client_margo(&cluster, "client");
    for (i, addr) in service.addresses().iter().enumerate() {
        let db = DatabaseHandle::new(&client, addr.clone(), 10 + i as u16);
        db.put(format!("k{i}").as_bytes(), b"v").unwrap();
        assert_eq!(db.len().unwrap(), 1);
    }
    service.shutdown();
    client.finalize();
}

#[test]
fn scale_out_and_rebalance_moves_providers() {
    let cluster = Cluster::new(4);
    let service =
        DynamicService::deploy(&cluster, ServiceConfig::default(), 2, |i| {
            // Two databases per node so rebalancing has moveable pieces.
            vec![
                mochi_bedrock::ProviderSpec::new(format!("db{i}a"), "yokan", 10 + 2 * i as u16)
                    .with_config(json!({"backend": "lsm"})),
                mochi_bedrock::ProviderSpec::new(format!("db{i}b"), "yokan", 11 + 2 * i as u16)
                    .with_config(json!({"backend": "lsm"})),
            ]
        })
        .unwrap();
    let client = client_margo(&cluster, "client");
    // Load data into db0a so it has weight.
    let addr0 = service.addresses()[0].clone();
    let db = DatabaseHandle::new(&client, addr0, 10);
    for i in 0..50u32 {
        db.put(format!("k{i}").as_bytes(), &[0u8; 64]).unwrap();
    }

    let new_addr = service.add_node().unwrap();
    assert_eq!(service.addresses().len(), 3);
    // The new member joins the SWIM group.
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        service.view().is_some_and(|v| v.contains(&new_addr))
    }));

    let plan = service
        .rebalance(Strategy::chunked_default(), &Weights { load: 1.0, data: 1.0, time: 0.05 })
        .unwrap();
    assert!(!plan.moves.is_empty(), "rebalance should move something to the new node");
    assert!(plan.moves.iter().any(|m| m.to == new_addr.to_string()));
    // Whatever moved is reachable at its new home: lookup via bedrock.
    for step in &plan.moves {
        let to: Address = step.to.parse().unwrap();
        let server = service.server(&to).unwrap();
        assert!(server.provider_names().contains(&step.resource));
    }
    service.shutdown();
    client.finalize();
}

#[test]
fn scale_in_preserves_data() {
    let cluster = Cluster::new(3);
    let service =
        DynamicService::deploy(&cluster, ServiceConfig::default(), 2, kv_namer).unwrap();
    let client = client_margo(&cluster, "client");
    let victim = service.addresses()[1].clone();
    let db = DatabaseHandle::new(&client, victim.clone(), 11);
    for i in 0..30u32 {
        db.put(format!("k{i}").as_bytes(), b"payload").unwrap();
    }

    let plan = service
        .remove_node(&victim, Strategy::Rdma, &Weights::default())
        .unwrap();
    assert!(plan.moves.iter().any(|m| m.resource == "db1"));
    assert_eq!(service.addresses().len(), 1);
    // The database moved to the survivor with its data.
    let survivor = service.addresses()[0].clone();
    let moved_db = DatabaseHandle::new(&client, survivor, 11);
    assert_eq!(moved_db.len().unwrap(), 30);
    assert_eq!(moved_db.get(b"k7").unwrap().as_deref(), Some(b"payload".as_slice()));
    // The node returned to the pool.
    assert_eq!(cluster.free_nodes(), 2);
    service.shutdown();
    client.finalize();
}

#[test]
fn resilience_recovers_crashed_member_from_checkpoint() {
    let cluster = Cluster::new(4); // 3 in use + 1 spare for recovery
    let service =
        DynamicService::deploy(&cluster, ServiceConfig::default(), 3, kv_namer).unwrap();
    let manager = ResilienceManager::attach(
        &service,
        ResilienceConfig { checkpoint_interval: Duration::from_millis(100), auto_recover: true },
    );
    let client = client_margo(&cluster, "client");
    let victim = service.addresses()[2].clone();
    let db = DatabaseHandle::new(&client, victim.clone(), 12);
    for i in 0..20u32 {
        db.put(format!("k{i}").as_bytes(), b"precious").unwrap();
    }
    // Let at least one checkpoint sweep capture the data.
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        manager.stats().checkpoints.load(std::sync::atomic::Ordering::SeqCst) >= 2
    }));

    // Crash the member abruptly.
    cluster.crash(&victim).unwrap();

    // SWIM detects it; the manager provisions a fresh node and restores.
    // Wait until the victim's address has been replaced in the service
    // (a recovery elsewhere — e.g. a false suspicion — doesn't count).
    assert!(
        wait_until(Duration::from_secs(30), Duration::from_millis(20), || {
            manager.stats().recoveries.load(std::sync::atomic::Ordering::SeqCst) >= 1
                && !service.addresses().contains(&victim)
        }),
        "victim was not replaced"
    );
    // The service is back to full strength.
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(20), || {
        service.addresses().len() == 3
    }));
    // The recovered provider serves the checkpointed data from wherever
    // db2 landed.
    let recovered_addr = service
        .addresses()
        .into_iter()
        .find(|a| {
            service
                .server(a)
                .is_some_and(|s| s.provider_names().contains(&"db2".to_string()))
        })
        .expect("db2 lives somewhere");
    let recovered = DatabaseHandle::new(&client, recovered_addr, 12)
        .with_timeout(Duration::from_secs(2));
    assert!(
        wait_until(Duration::from_secs(10), Duration::from_millis(50), || {
            recovered.len().map(|n| n == 20).unwrap_or(false)
        }),
        "recovered db2 does not serve the checkpointed data (len={:?})",
        recovered.len()
    );
    assert_eq!(recovered.get(b"k3").unwrap().as_deref(), Some(b"precious".as_slice()));

    manager.stop();
    service.shutdown();
    client.finalize();
}
