//! Provider-kill survival of the replicated routed keyspace (DESIGN.md
//! §18): at `replication_factor 3`, a member process is crashed abruptly
//! mid-traffic under a seeded fault plane. The acceptance bar:
//!
//! * zero acked-write loss — every put the client saw `Ok` reads back
//!   with its exact value after the dust settles,
//! * quorum reads keep serving *during* the outage (no rebalance, no
//!   manual intervention required to stay available),
//! * `fail_member` retires the corpse without a drain and the catch-up
//!   + hinted-handoff + read-repair machinery re-converges every
//!   surviving replica to byte-identical records,
//!
//! for every seed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use serde_json::json;

use mochi_core::routed::{RoutedConfig, RoutedKv};
use mochi_core::{Cluster, DynamicService, FailoverKv, ServiceConfig};
use mochi_margo::{MargoConfig, MargoRuntime};
use mochi_mercury::{Address, LinkScript};
use mochi_util::time::wait_until;
use mochi_yokan::version::decode_record;

const KEYSPACE: &str = "replicated";

fn keyspace_namer(i: usize) -> Vec<mochi_bedrock::ProviderSpec> {
    vec![
        mochi_bedrock::ProviderSpec::new(format!("kv{i}"), "yokan", 10 + i as u16)
            .with_config(json!({"backend": "lsm"}))
            .with_tag(format!("keyspace:{KEYSPACE}")),
    ]
}

/// Client runtime with patient retry settings (the fault plane drops
/// messages; idempotent RPCs should be re-sent, not surface as losses).
fn chaos_client(cluster: &Cluster, name: &str) -> MargoRuntime {
    let mut config = MargoConfig::default();
    config.retry.max_attempts = 4;
    config.rpc_timeout_ms = 2_000;
    MargoRuntime::init(cluster.fabric(), Address::tcp(name, 1), &config).unwrap()
}

fn wait_for_view(service: &DynamicService, members: usize) {
    assert!(wait_until(
        Duration::from_secs(10),
        Duration::from_millis(10),
        || { service.view().is_some_and(|v| v.len() == members) }
    ));
}

/// The headline acceptance test: kill a provider mid-traffic at rf=3,
/// lose nothing, stay serving, converge — for every seed.
#[test]
fn provider_kill_loses_no_acked_write() {
    const SEEDS: [u64; 3] = [11, 12, 13];
    for seed in SEEDS {
        provider_kill_round(seed);
    }
}

fn provider_kill_round(seed: u64) {
    const VICTIM: &str = "kv1";
    let cluster = Cluster::new(5);
    let service =
        DynamicService::deploy(&cluster, ServiceConfig::default(), 4, keyspace_namer).unwrap();
    wait_for_view(&service, 4);
    let client = chaos_client(&cluster, "client");
    let routed = RoutedKv::for_keyspace(
        &service,
        &client,
        KEYSPACE,
        RoutedConfig {
            replication_factor: 3,
            leg_timeout: Duration::from_millis(500),
            hint_drain_interval: Duration::from_millis(50),
            ..RoutedConfig::default()
        },
    )
    .unwrap();
    assert_eq!(routed.members(), vec!["kv0", "kv1", "kv2", "kv3"]);

    // Preload: fully replicated state before any fault exists.
    let preload: Vec<(Vec<u8>, Vec<u8>)> = (0..300)
        .map(|i| {
            (
                format!("pre-{seed}-{i:04}").into_bytes(),
                format!("v{i}").into_bytes(),
            )
        })
        .collect();
    let refs: Vec<(&[u8], &[u8])> = preload
        .iter()
        .map(|(k, v)| (k.as_slice(), v.as_slice()))
        .collect();
    for slot in routed.put_multi(&refs) {
        slot.unwrap();
    }

    // Scripted fault plane: seeded 1% drops everywhere plus a
    // deterministic delay spike on every 50th message.
    let faults = cluster.fabric().faults();
    faults.set_seed(seed);
    faults.set_drop_probability(None, None, 0.01);
    faults.push_script(
        None,
        None,
        LinkScript::DelaySpike {
            period: 50,
            spike: Duration::from_millis(2),
        },
    );

    let stop = AtomicBool::new(false);
    let acked_puts = AtomicU64::new(0);
    let acked: std::sync::Mutex<BTreeMap<Vec<u8>, Vec<u8>>> =
        std::sync::Mutex::new(preload.iter().cloned().collect());

    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                i += 1;
                let key = format!("live-{seed}-{i:06}").into_bytes();
                let value = format!("val-{seed}-{i}").into_bytes();
                if i % 7 == 0 {
                    // Replicated erase is a versioned tombstone write;
                    // like the rebalance soak, the expectation drops the
                    // key whether or not the erase acked — zero-loss is
                    // asserted over acked *puts*.
                    // Only live-keys are erased: the outage assertions
                    // below sample the preload set directly.
                    let victim = acked
                        .lock()
                        .unwrap()
                        .keys()
                        .find(|k| k.starts_with(b"live-"))
                        .cloned();
                    if let Some(victim) = victim {
                        acked.lock().unwrap().remove(&victim);
                        let _ = routed.erase(&victim);
                    }
                } else if routed.put(&key, &value).is_ok() {
                    acked.lock().unwrap().insert(key, value);
                    acked_puts.fetch_add(1, Ordering::AcqRel);
                }
            }
            i
        });

        // Let the writer establish traffic, then kill the victim's node
        // abruptly: no provider shutdown, no farewell — SWIM finds out.
        let before_kill = acked_puts.load(Ordering::Acquire);
        assert!(
            wait_until(Duration::from_secs(10), Duration::from_millis(5), || {
                acked_puts.load(Ordering::Acquire) > before_kill + 10
            }),
            "seed {seed}: writer made no progress before the kill"
        );
        let dead_addr = service
            .addresses()
            .into_iter()
            .find(|addr| {
                service
                    .server(addr)
                    .is_some_and(|s| s.lookup_provider(VICTIM).is_ok())
            })
            .unwrap_or_else(|| panic!("seed {seed}: no node hosts {VICTIM}"));
        cluster.crash(&dead_addr).unwrap();
        wait_for_view(&service, 3);

        // Quorum reads serve *during* the outage: the victim is still a
        // ring member, but 2-of-3 replicas answer every sampled key.
        for (key, value) in preload.iter().step_by(12) {
            let read = routed.get(key).unwrap_or_else(|e| {
                panic!(
                    "seed {seed}: outage read of {:?} failed: {e}",
                    String::from_utf8_lossy(key)
                )
            });
            assert_eq!(read.as_deref(), Some(value.as_slice()), "seed {seed}");
        }

        // Writes keep acking during the outage too (quorum + hints).
        let during_outage = acked_puts.load(Ordering::Acquire);
        assert!(
            wait_until(Duration::from_secs(10), Duration::from_millis(5), || {
                acked_puts.load(Ordering::Acquire) > during_outage + 10
            }),
            "seed {seed}: no write acked during the outage"
        );

        // Retire the corpse: no drain, no rebalance — survivors already
        // hold every record; only re-replication catch-up runs.
        let report = routed.fail_member(VICTIM).unwrap();
        assert!(
            report.recopied_keys > 0,
            "seed {seed}: catch-up restored no replicas (report {report:?})"
        );
        assert_eq!(routed.members(), vec!["kv0", "kv2", "kv3"]);
        assert!(
            !routed.rebalancing(),
            "fail_member must not open a move window"
        );

        // A little more traffic on the shrunken ring, then stop.
        let after_fail = acked_puts.load(Ordering::Acquire);
        assert!(
            wait_until(Duration::from_secs(10), Duration::from_millis(5), || {
                acked_puts.load(Ordering::Acquire) > after_fail + 10
            }),
            "seed {seed}: no write acked after fail_member"
        );
        stop.store(true, Ordering::Release);
        let ops = writer.join().unwrap();
        assert!(ops > 0);
    });

    // Heal the fabric: the test asserts durability and convergence of
    // acked writes, not availability under ongoing faults.
    faults.clear();

    // Zero acked-write loss: every acked put reads back exactly.
    let expected = acked.into_inner().unwrap();
    let keys: Vec<&[u8]> = expected.keys().map(Vec::as_slice).collect();
    for (slot, (key, value)) in routed.get_multi(&keys).into_iter().zip(&expected) {
        let read = slot.unwrap_or_else(|e| {
            panic!(
                "seed {seed}: acked key {:?} unreadable: {e}",
                String::from_utf8_lossy(key)
            )
        });
        assert_eq!(
            read.as_deref(),
            Some(value.as_slice()),
            "seed {seed}: acked write lost for {:?}",
            String::from_utf8_lossy(key)
        );
    }

    // All parked hints replay now that the fabric is healed.
    assert!(
        wait_until(Duration::from_secs(10), Duration::from_millis(50), || {
            routed.drain_hints_now() == 0
        }),
        "seed {seed}: hints never fully drained"
    );

    // Digest convergence: with 3 members at rf=3 every survivor owns
    // every key, so all three must hold byte-identical versioned
    // records for every acked key. The quorum reads in the wait loop
    // double as the read-repair trigger for any laggard replica.
    let survivors = ["kv0", "kv2", "kv3"];
    let direct: Vec<FailoverKv> = survivors
        .iter()
        .map(|m| FailoverKv::new(&service, &client, m))
        .collect();
    let converged = wait_until(Duration::from_secs(15), Duration::from_millis(100), || {
        // Quorum-read everything (repairs stale replicas as a side
        // effect), then compare raw replica records bytewise.
        if routed
            .get_multi(&keys)
            .into_iter()
            .zip(&expected)
            .any(|(slot, (_, value))| !matches!(&slot, Ok(Some(read)) if read == value))
        {
            return false;
        }
        let mut replicas: Vec<Vec<Option<Vec<u8>>>> = Vec::with_capacity(direct.len());
        for handle in &direct {
            match handle.get_multi(&keys) {
                Ok(records) => replicas.push(records),
                Err(_) => return false,
            }
        }
        (0..keys.len()).all(|i| {
            let first = &replicas[0][i];
            first.is_some() && replicas.iter().all(|member| &member[i] == first)
        })
    });
    assert!(
        converged,
        "seed {seed}: replicas never converged to identical records"
    );

    // The raw records really are versioned envelopes of the acked data.
    for (i, (key, value)) in expected.iter().enumerate() {
        let raw = direct[0]
            .get(key)
            .unwrap()
            .unwrap_or_else(|| panic!("seed {seed}: converged key {i} vanished"));
        let record = decode_record(&raw);
        assert!(
            !record.tombstone,
            "seed {seed}: live key stored as tombstone"
        );
        assert_eq!(record.value, value.as_slice(), "seed {seed}");
        assert!(
            record.version > 0,
            "seed {seed}: replicated record kept version 0"
        );
    }

    let stats = routed.replication_stats();
    assert!(
        stats.read_repairs >= stats.repair_failures,
        "seed {seed}: stats accounting broke: {stats:?}"
    );

    service.shutdown();
    client.finalize();
}
