//! Property tests of the consistent-hash ring behind `RoutedKv`:
//!
//! * a 1-member ring degenerates to direct-handle semantics (everything
//!   routes to that member, always),
//! * routing is a pure function of the member *set* — permuting the
//!   construction order changes nothing,
//! * membership changes cause minimal disruption: an add moves roughly
//!   `keys/N` keys (all toward the joiner), a remove moves exactly the
//!   removed member's keys (all away from it).

use proptest::prelude::*;

use mochi_core::ring::HashRing;

/// Deterministic key set salted per case so cases explore different
/// regions of the hash space.
fn salted_keys(salt: u64, n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("key-{salt:x}-{i:06}").into_bytes()).collect()
}

fn member_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("kv{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// 1-provider ring ≡ direct handle: with a single member every key
    /// (arbitrary bytes included) routes to it, and `partition` returns
    /// the whole key set in order — the routed keyspace degenerates to a
    /// plain `DatabaseHandle` against that provider.
    #[test]
    fn single_member_ring_is_a_direct_handle(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..100),
    ) {
        let ring = HashRing::new(&["solo"]);
        for key in &keys {
            prop_assert_eq!(ring.owner(key), Some("solo"));
        }
        let parts = ring.partition(&keys);
        prop_assert_eq!(parts.len(), 1);
        prop_assert_eq!(&parts["solo"], &(0..keys.len()).collect::<Vec<_>>());
    }

    /// Key → owner is stable under any permutation of the member list:
    /// two clients that learn the membership in different orders agree
    /// on every key's owner.
    #[test]
    fn owner_is_stable_under_member_permutation(
        n in 2usize..8,
        salt in any::<u64>(),
        shuffle_seed in any::<u64>(),
    ) {
        let members = member_names(n);
        let mut shuffled = members.clone();
        // Deterministic Fisher–Yates driven by the generated seed.
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        let a = HashRing::new(&members);
        let b = HashRing::new(&shuffled);
        for key in salted_keys(salt, 500) {
            prop_assert_eq!(a.owner(&key), b.owner(&key));
        }
    }

    /// Adding a member moves about `keys/(N+1)` keys — bounded by twice
    /// the fair share plus slack for vnode variance — and every moved
    /// key moves *toward* the joiner.
    #[test]
    fn add_disruption_is_minimal(n in 1usize..8, salt in any::<u64>()) {
        const KEYS: usize = 2000;
        let old = HashRing::new(&member_names(n));
        let new = old.with_member("joiner");
        let mut moved = 0usize;
        for key in salted_keys(salt, KEYS) {
            if old.moves(&new, &key) {
                prop_assert_eq!(new.owner(&key), Some("joiner"));
                moved += 1;
            }
        }
        let fair_share = KEYS / (n + 1);
        prop_assert!(
            moved <= 2 * fair_share + 64,
            "add moved {moved} of {KEYS} keys (fair share {fair_share})"
        );
    }

    /// Removing a member moves exactly the keys it owned (no collateral
    /// movement among survivors), spread over the survivors.
    #[test]
    fn remove_moves_exactly_the_removed_members_keys(
        n in 2usize..8,
        salt in any::<u64>(),
    ) {
        let members = member_names(n);
        let victim = members[n / 2].clone();
        let old = HashRing::new(&members);
        let new = old.without_member(&victim);
        for key in salted_keys(salt, 1000) {
            let owned_by_victim = old.owner(&key) == Some(victim.as_str());
            prop_assert_eq!(
                old.moves(&new, &key),
                owned_by_victim,
                "a key moves iff the removed member owned it"
            );
            if owned_by_victim {
                let dest = new.owner(&key).expect("survivors own everything");
                prop_assert!(new.members().iter().any(|m| m == dest));
                prop_assert_ne!(dest, victim.as_str());
            }
        }
    }

    /// Replica sets (`owners`) hold exactly `min(r, N)` *distinct*
    /// members, led by the primary, for arbitrary keys and hash points —
    /// including the wrap-around at `u64::MAX`.
    #[test]
    fn owners_are_distinct_successors(
        n in 1usize..8,
        r in 1usize..6,
        salt in any::<u64>(),
        hash in prop_oneof![any::<u64>(), Just(u64::MAX), Just(0u64)],
    ) {
        let ring = HashRing::new(&member_names(n));
        for key in salted_keys(salt, 200) {
            let owners = ring.owners(&key, r);
            prop_assert_eq!(owners.len(), r.min(n));
            prop_assert_eq!(owners.first().copied(), ring.owner(&key));
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), owners.len(), "duplicate member in replica set");
        }
        // Direct hash-point probe (covers the exact top of the space).
        let owners = ring.owners_of_hash(hash, r);
        prop_assert_eq!(owners.len(), r.min(n));
        prop_assert_eq!(owners.first().copied(), ring.owner_of_hash(hash));
    }

    /// A single join/retire composes with successor lists the way the
    /// replication layer assumes: no key's replica *set* changes by more
    /// than one member, and every key inside a moved arc keeps `r - 1`
    /// of its old replicas.
    #[test]
    fn single_membership_change_shifts_owner_sets_by_at_most_one(
        n in 2usize..7,
        r in 2usize..4,
        salt in any::<u64>(),
        join in any::<bool>(),
    ) {
        let members = member_names(n);
        let old = HashRing::new(&members);
        let new = if join {
            old.with_member("joiner")
        } else {
            old.without_member(&members[n / 2])
        };
        let arcs = old.moved_arcs(&new);
        for key in salted_keys(salt, 500) {
            let before: std::collections::BTreeSet<&str> =
                old.owners(&key, r).into_iter().collect();
            let after: std::collections::BTreeSet<&str> =
                new.owners(&key, r).into_iter().collect();
            let lost = before.difference(&after).count();
            let gained = after.difference(&before).count();
            prop_assert!(
                lost <= 1 && gained <= 1,
                "key lost {lost}/gained {gained} replicas on a single change \
                 (before {before:?}, after {after:?})"
            );
            // Primary movement is exactly the moved-arc set; replica-set
            // movement is a superset (successor lists shift near every
            // changed point), but an *unchanged* primary inside no arc
            // may still swap a tail replica — assert only the arc⇒set
            // direction, which is what the drain planner relies on.
            let hash = mochi_util::fnv1a64(&key);
            let in_arcs = arcs.iter().any(|a| (a.start..=a.end).contains(&hash));
            if in_arcs {
                prop_assert!(
                    before != after || r.min(old.len()) != r.min(new.len()),
                    "a moved-arc key must see some ownership change \
                     unless clamping hides it"
                );
            }
        }
    }

    /// `moved_arcs` and the per-key diff agree for arbitrary member-set
    /// transitions (not just single add/remove).
    #[test]
    fn moved_arcs_match_per_key_diff(
        from_n in 1usize..6,
        to_n in 1usize..6,
        salt in any::<u64>(),
    ) {
        let from = HashRing::new(&member_names(from_n));
        // Overlapping but different member set: kv{to_n}..kv{to_n*2}.
        let to_members: Vec<String> = (to_n / 2..to_n / 2 + to_n).map(|i| format!("kv{i}")).collect();
        let to = HashRing::new(&to_members);
        let arcs = from.moved_arcs(&to);
        for key in salted_keys(salt, 500) {
            let hash = mochi_util::fnv1a64(&key);
            let in_arcs = arcs.iter().any(|a| (a.start..=a.end).contains(&hash));
            prop_assert_eq!(from.moves(&to, &key), in_arcs);
        }
    }
}
