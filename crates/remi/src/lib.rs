//! `mochi-remi` — REsource MIgration (paper §6, Observations 4–5).
//!
//! "Most data managed by Mochi components resides in files stored in a
//! local storage device. Migrating a resource from a node to another often
//! comes down to transferring files between two nodes." REMI does exactly
//! that, with the two strategies the paper describes:
//!
//! * [`Strategy::Rdma`] — each file is exposed as a bulk region and the
//!   destination pulls it whole ("memory mapping the files and using RDMA
//!   to transfer the data"). Best for large files: one handshake per file,
//!   then bandwidth-bound.
//! * [`Strategy::ChunkedRpc`] — files are packed together into fixed-size
//!   chunks sent as a *pipelined* window of RPCs ("more efficient when
//!   sending multiple small files, since they can be packed together into
//!   larger chunks and the transfer of chunks can be pipelined").
//!
//! Every file carries a CRC-64 checksum verified at the destination.
//! Experiment E5 reproduces the crossover between the two strategies.

pub mod client;
pub mod fileset;
pub mod protocol;
pub mod provider;
pub mod rpc_names;

pub use client::{MigrationOptions, MigrationReport, RemiClient};
pub use fileset::{FileEntry, FileSet};
pub use protocol::Strategy;
pub use provider::RemiProvider;
