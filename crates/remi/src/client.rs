//! The REMI client: source side of a migration.

use std::io::Read;
use std::time::Duration;

use bytes::Bytes;
use mochi_margo::{rpc_id_for_name, MargoError, MargoRuntime};
use mochi_mercury::{Address, BulkAccess, CallContext, PendingRequest, ResponseStatus};
use mochi_util::id::unique_token;
use mochi_util::time::Stopwatch;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::fileset::FileSet;
use crate::protocol::{
    self, rpc, ChunkHeader, ChunkSegment, EndArgs, PullArgs, StartArgs, Strategy, TransferSummary,
};

/// Options controlling a migration.
#[derive(Debug, Clone)]
pub struct MigrationOptions {
    /// Subdirectory (under the destination provider's root) to place the
    /// files in.
    pub dest_subdir: Option<String>,
    /// Delete source files after a successful transfer (migration), or
    /// keep them (copy).
    pub remove_source: bool,
    /// Per-RPC timeout.
    pub timeout: Duration,
}

impl Default for MigrationOptions {
    fn default() -> Self {
        Self { dest_subdir: None, remove_source: false, timeout: Duration::from_secs(30) }
    }
}

/// Outcome of a completed migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Files transferred.
    pub files: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Wall-clock duration in seconds.
    pub duration_s: f64,
    /// Strategy used.
    pub strategy: Strategy,
    /// Chunk RPCs issued (0 for the RDMA strategy).
    pub chunks: u64,
}

/// Source-side handle for migrating filesets to remote REMI providers.
#[derive(Clone)]
pub struct RemiClient {
    margo: MargoRuntime,
    context: CallContext,
}

impl RemiClient {
    /// Creates a client on `margo`.
    pub fn new(margo: &MargoRuntime) -> Self {
        // Restarting a session with the same token and re-pulling the same
        // exposed regions are safe; `end` and `chunk` are not (`end` tears
        // the session down, chunks are sequenced) and stay retry-free.
        margo.declare_idempotent(rpc::START);
        margo.declare_idempotent(rpc::PULL);
        Self { margo: margo.clone(), context: CallContext::TOP_LEVEL }
    }

    /// Threads a calling context (a handler passes
    /// `ctx.nested_context()`) so migration RPCs issued by this client
    /// count as nested calls and inherit the parent's remaining deadline
    /// budget instead of restarting it.
    pub fn with_context(mut self, context: CallContext) -> Self {
        self.context = context;
        self
    }

    /// Single chokepoint for typed RPCs: every forward in this client
    /// routes through here so retry, breaker, and deadline handling apply
    /// uniformly — `mochi-lint` MOCHI011 enforces this. (The windowed
    /// chunk pipeline drives the endpoint directly and is exempt.)
    fn call<I: Serialize, O: DeserializeOwned>(
        &self,
        rpc_name: &str,
        input: &I,
        dest: &Address,
        provider_id: u16,
        timeout: Duration,
    ) -> Result<O, MargoError> {
        self.margo.forward_full(dest, rpc_name, provider_id, input, self.context, timeout)
    }

    /// Migrates `fileset` to the REMI provider `(dest, provider_id)`.
    pub fn migrate(
        &self,
        dest: &Address,
        provider_id: u16,
        fileset: &FileSet,
        strategy: Strategy,
        options: &MigrationOptions,
    ) -> Result<MigrationReport, MargoError> {
        let stopwatch = Stopwatch::start();
        let token = unique_token();
        let start = StartArgs {
            token: token.clone(),
            files: fileset.files.clone(),
            dest_subdir: options.dest_subdir.clone(),
        };
        let _: bool = self.call(rpc::START, &start, dest, provider_id, options.timeout)?;

        let (summary, chunks) = match strategy {
            Strategy::Rdma => (self.run_rdma(dest, provider_id, fileset, &token, options)?, 0),
            Strategy::ChunkedRpc { chunk_size, window } => self.run_chunked(
                dest,
                provider_id,
                fileset,
                &token,
                chunk_size.max(1),
                window.max(1),
                options,
            )?,
        };

        if options.remove_source {
            fileset
                .remove_files()
                .map_err(|e| MargoError::Handler(format!("removing source files: {e}")))?;
        }

        Ok(MigrationReport {
            files: summary.files,
            bytes: summary.bytes,
            duration_s: stopwatch.elapsed_secs(),
            strategy,
            chunks,
        })
    }

    fn run_rdma(
        &self,
        dest: &Address,
        provider_id: u16,
        fileset: &FileSet,
        token: &str,
        options: &MigrationOptions,
    ) -> Result<TransferSummary, MargoError> {
        // Expose every file read-only (the mmap step), hand the handles to
        // the destination, let it pull, then revoke.
        let mut handles = Vec::with_capacity(fileset.len());
        for entry in &fileset.files {
            let handle = self
                .margo
                .expose_bulk_file(fileset.absolute(entry), entry.size as usize, BulkAccess::ReadOnly)
                .map_err(|e| MargoError::Handler(format!("exposing '{}': {e}", entry.path)))?;
            handles.push(handle);
        }
        let args = PullArgs { token: token.to_string(), bulk_handles: handles.clone() };
        let result: Result<TransferSummary, MargoError> =
            self.call(rpc::PULL, &args, dest, provider_id, options.timeout);
        for handle in &handles {
            self.margo.unexpose_bulk(handle);
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn run_chunked(
        &self,
        dest: &Address,
        provider_id: u16,
        fileset: &FileSet,
        token: &str,
        chunk_size: usize,
        window: usize,
        options: &MigrationOptions,
    ) -> Result<(TransferSummary, u64), MargoError> {
        let chunk_rpc_id = rpc_id_for_name(rpc::CHUNK);
        let mut pending: std::collections::VecDeque<PendingRequest> =
            std::collections::VecDeque::new();
        let mut chunks_sent = 0u64;

        let wait_one = |p: PendingRequest| -> Result<(), MargoError> {
            let response = p.wait(options.timeout)?;
            match response.status {
                ResponseStatus::Ok => Ok(()),
                ResponseStatus::Error(message) => Err(MargoError::Handler(message)),
                ResponseStatus::NoHandler => Err(MargoError::NoHandler {
                    rpc: rpc::CHUNK.to_string(),
                    provider_id,
                }),
            }
        };

        // Pack segments across file boundaries into chunk_size chunks and
        // keep up to `window` chunk RPCs in flight (the pipelining the
        // paper credits for small-file efficiency).
        let mut header = ChunkHeader { token: token.to_string(), seq: 0, segments: Vec::new() };
        let mut body: Vec<u8> = Vec::with_capacity(chunk_size);
        let flush = |header: &mut ChunkHeader,
                         body: &mut Vec<u8>,
                         pending: &mut std::collections::VecDeque<PendingRequest>,
                         chunks_sent: &mut u64|
         -> Result<(), MargoError> {
            if header.segments.is_empty() {
                return Ok(());
            }
            let frame = protocol::encode_chunk(header, body).map_err(MargoError::Codec)?;
            while pending.len() >= window {
                wait_one(pending.pop_front().expect("nonempty window"))?;
            }
            let request = self.margo.endpoint().send_request(
                dest,
                chunk_rpc_id,
                provider_id,
                self.context,
                Bytes::from(frame),
            )?;
            pending.push_back(request);
            *chunks_sent += 1;
            header.seq += 1;
            header.segments.clear();
            body.clear();
            Ok(())
        };

        let mut read_buf = vec![0u8; 64 * 1024];
        for (file_index, entry) in fileset.files.iter().enumerate() {
            let path = fileset.absolute(entry);
            let mut file = std::fs::File::open(&path)
                .map_err(|e| MargoError::Handler(format!("open {}: {e}", path.display())))?;
            let mut offset = 0u64;
            loop {
                let want = (chunk_size - body.len()).min(read_buf.len());
                if want == 0 {
                    flush(&mut header, &mut body, &mut pending, &mut chunks_sent)?;
                    continue;
                }
                let n = file
                    .read(&mut read_buf[..want])
                    .map_err(|e| MargoError::Handler(format!("read {}: {e}", path.display())))?;
                if n == 0 {
                    break;
                }
                // Coalesce with the previous segment when contiguous.
                match header.segments.last_mut() {
                    Some(last)
                        if last.file_index == file_index as u32
                            && last.offset + last.len as u64 == offset =>
                    {
                        last.len += n as u32;
                    }
                    _ => header.segments.push(ChunkSegment {
                        file_index: file_index as u32,
                        offset,
                        len: n as u32,
                    }),
                }
                body.extend_from_slice(&read_buf[..n]);
                offset += n as u64;
                if body.len() >= chunk_size {
                    flush(&mut header, &mut body, &mut pending, &mut chunks_sent)?;
                }
            }
        }
        flush(&mut header, &mut body, &mut pending, &mut chunks_sent)?;
        while let Some(p) = pending.pop_front() {
            wait_one(p)?;
        }

        let summary: TransferSummary = self.call(
            rpc::END,
            &EndArgs { token: token.to_string() },
            dest,
            provider_id,
            options.timeout,
        )?;
        Ok((summary, chunks_sent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::RemiProvider;
    use mochi_mercury::Fabric;
    use mochi_util::{SeededRng, TempDir};
    use std::path::Path;

    fn boot(fabric: &Fabric, host: &str) -> MargoRuntime {
        MargoRuntime::init_default(fabric, Address::tcp(host, 1)).unwrap()
    }

    fn make_files(dir: &Path, spec: &[(&str, usize)], seed: u64) -> FileSet {
        let mut rng = SeededRng::new(seed);
        for (name, size) in spec {
            let path = dir.join(name);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).unwrap();
            }
            let mut data = vec![0u8; *size];
            rng.fill_bytes(&mut data);
            std::fs::write(path, data).unwrap();
        }
        FileSet::scan(dir).unwrap()
    }

    fn assert_identical(src: &FileSet, dest_root: &Path) {
        let dest = FileSet::scan(dest_root).unwrap();
        assert_eq!(dest.len(), src.len());
        for (a, b) in src.files.iter().zip(dest.files.iter()) {
            assert_eq!(a.path, b.path);
            assert_eq!(a.size, b.size);
            assert_eq!(a.checksum, b.checksum, "checksum mismatch for {}", a.path);
        }
    }

    struct Env {
        _src_dir: TempDir,
        dest_dir: TempDir,
        source: MargoRuntime,
        dest: MargoRuntime,
        fileset: FileSet,
        client: RemiClient,
        _provider: std::sync::Arc<RemiProvider>,
    }

    fn env(spec: &[(&str, usize)]) -> Env {
        let fabric = Fabric::new();
        let source = boot(&fabric, "src");
        let dest = boot(&fabric, "dst");
        let src_dir = TempDir::new("remi-src").unwrap();
        let dest_dir = TempDir::new("remi-dst").unwrap();
        let fileset = make_files(src_dir.path(), spec, 42);
        let provider = RemiProvider::register(&dest, 1, dest_dir.path(), None).unwrap();
        let client = RemiClient::new(&source);
        Env {
            _src_dir: src_dir,
            dest_dir,
            source,
            dest,
            fileset,
            client,
            _provider: provider,
        }
    }

    #[test]
    fn rdma_migration_moves_files_intact() {
        let e = env(&[("big.bin", 200_000), ("dir/nested.bin", 5_000)]);
        let report = e
            .client
            .migrate(
                &e.dest.address(),
                1,
                &e.fileset,
                Strategy::Rdma,
                &MigrationOptions::default(),
            )
            .unwrap();
        assert_eq!(report.files, 2);
        assert_eq!(report.bytes, 205_000);
        assert_eq!(report.chunks, 0);
        assert_identical(&e.fileset, e.dest_dir.path());
        e.source.finalize();
        e.dest.finalize();
    }

    #[test]
    fn chunked_migration_moves_files_intact() {
        let spec: Vec<(String, usize)> =
            (0..20).map(|i| (format!("small/{i:02}.dat"), 1000 + i * 37)).collect();
        let spec_refs: Vec<(&str, usize)> =
            spec.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        let e = env(&spec_refs);
        let report = e
            .client
            .migrate(
                &e.dest.address(),
                1,
                &e.fileset,
                Strategy::ChunkedRpc { chunk_size: 4096, window: 4 },
                &MigrationOptions::default(),
            )
            .unwrap();
        assert_eq!(report.files, 20);
        assert!(report.chunks >= 5, "expected multiple chunks, got {}", report.chunks);
        assert_identical(&e.fileset, e.dest_dir.path());
        e.source.finalize();
        e.dest.finalize();
    }

    #[test]
    fn chunk_smaller_than_file_splits_and_reassembles() {
        let e = env(&[("one.bin", 10_000)]);
        let report = e
            .client
            .migrate(
                &e.dest.address(),
                1,
                &e.fileset,
                Strategy::ChunkedRpc { chunk_size: 1024, window: 2 },
                &MigrationOptions::default(),
            )
            .unwrap();
        assert_eq!(report.chunks, 10);
        assert_identical(&e.fileset, e.dest_dir.path());
        e.source.finalize();
        e.dest.finalize();
    }

    #[test]
    fn remove_source_deletes_after_success() {
        let e = env(&[("gone.bin", 500)]);
        let options = MigrationOptions { remove_source: true, ..Default::default() };
        e.client
            .migrate(&e.dest.address(), 1, &e.fileset, Strategy::Rdma, &options)
            .unwrap();
        assert!(FileSet::scan(&e.fileset.root).unwrap().is_empty());
        assert_identical(&e.fileset, e.dest_dir.path()); // checksums recorded pre-removal
        e.source.finalize();
        e.dest.finalize();
    }

    #[test]
    fn dest_subdir_honored() {
        let e = env(&[("f.bin", 100)]);
        let options =
            MigrationOptions { dest_subdir: Some("target-7".into()), ..Default::default() };
        e.client
            .migrate(&e.dest.address(), 1, &e.fileset, Strategy::Rdma, &options)
            .unwrap();
        assert!(e.dest_dir.path().join("target-7/f.bin").is_file());
        e.source.finalize();
        e.dest.finalize();
    }

    #[test]
    fn empty_fileset_migrates_trivially() {
        let e = env(&[]);
        for strategy in [Strategy::Rdma, Strategy::chunked_default()] {
            let report = e
                .client
                .migrate(
                    &e.dest.address(),
                    1,
                    &e.fileset,
                    strategy,
                    &MigrationOptions::default(),
                )
                .unwrap();
            assert_eq!(report.files, 0);
            assert_eq!(report.bytes, 0);
        }
        e.source.finalize();
        e.dest.finalize();
    }

    #[test]
    fn migration_to_missing_provider_fails() {
        let e = env(&[("f.bin", 10)]);
        let err = e
            .client
            .migrate(
                &e.dest.address(),
                99, // no such provider
                &e.fileset,
                Strategy::Rdma,
                &MigrationOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, MargoError::NoHandler { .. }));
        e.source.finalize();
        e.dest.finalize();
    }

    #[test]
    fn corrupted_source_detected_by_checksum() {
        let e = env(&[("f.bin", 1000)]);
        // Corrupt the file *after* scanning so the recorded checksum no
        // longer matches what gets transferred.
        std::fs::write(e.fileset.absolute(&e.fileset.files[0]), vec![0u8; 1000]).unwrap();
        let err = e
            .client
            .migrate(
                &e.dest.address(),
                1,
                &e.fileset,
                Strategy::Rdma,
                &MigrationOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, MargoError::Handler(ref m) if m.contains("checksum")), "{err}");
        e.source.finalize();
        e.dest.finalize();
    }
}
