//! The REMI RPC surface: every wire-visible RPC name, in one place.
//!
//! Registration sites (`provider.rs`) and client call sites
//! (`client.rs`) both pull names from this module, so a provider and its
//! clients can never drift apart — and `mochi-lint`'s contract checker
//! (MOCHI006/007/008) resolves these constants when it cross-checks
//! register/forward pairs.

/// Starts a migration (both strategies).
pub const START: &str = "remi_migration_start";
/// Carries one packed chunk (chunked strategy).
pub const CHUNK: &str = "remi_migration_chunk";
/// Finishes a migration: verify checksums, move into place.
pub const END: &str = "remi_migration_end";
/// RDMA strategy: asks the destination to pull the exposed files.
pub const PULL: &str = "remi_migration_pull";

/// Every name above (used for deregistration).
pub const ALL: [&str; 4] = [START, CHUNK, END, PULL];
