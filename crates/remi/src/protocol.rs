//! Wire protocol of REMI: RPC names, argument types, and the binary chunk
//! framing.
//!
//! Chunk payloads deliberately bypass the argument codec: a chunk is
//! `[u32 header-length][mochi-wire header][raw bytes]`, so the network
//! model charges realistic byte counts and the pipelined-chunk strategy is
//! not penalized by argument-encoding inflation (real REMI likewise ships
//! raw buffers).

use serde::{Deserialize, Serialize};

use mochi_mercury::BulkHandle;

use crate::fileset::FileEntry;

/// RPC names registered by a [`crate::provider::RemiProvider`].
/// The constants themselves live in [`crate::rpc_names`].
pub use crate::rpc_names as rpc;

/// Transfer strategy (paper §6, Observation 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Whole-file bulk transfers (mmap + RDMA in the original).
    Rdma,
    /// Files packed into `chunk_size`-byte chunks, with up to `window`
    /// chunk RPCs in flight.
    ChunkedRpc {
        /// Bytes per chunk.
        chunk_size: usize,
        /// Maximum chunk RPCs in flight.
        window: usize,
    },
}

impl Strategy {
    /// The chunked strategy with its defaults (1 MiB chunks, window 8).
    pub fn chunked_default() -> Self {
        Strategy::ChunkedRpc { chunk_size: 1 << 20, window: 8 }
    }
}

/// `remi_migration_start` arguments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StartArgs {
    /// Transfer token chosen by the source; correlates later RPCs.
    pub token: String,
    /// Files to be transferred (relative paths + sizes + checksums).
    pub files: Vec<FileEntry>,
    /// Optional subdirectory (under the provider root) to place files in.
    pub dest_subdir: Option<String>,
}

/// `remi_migration_pull` arguments (RDMA strategy): one bulk handle per
/// file, parallel to `StartArgs::files`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PullArgs {
    /// Transfer token.
    pub token: String,
    /// Bulk handle exposing each file at the source, in file order.
    pub bulk_handles: Vec<BulkHandle>,
}

/// Header of a chunk frame (the mochi-wire-encoded part).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkHeader {
    /// Transfer token.
    pub token: String,
    /// Chunk sequence number (diagnostics only; chunks may be applied in
    /// any order since each segment addresses an absolute file offset).
    pub seq: u64,
    /// Segments packed in this chunk, in payload order.
    pub segments: Vec<ChunkSegment>,
}

/// One file segment within a chunk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkSegment {
    /// Index into `StartArgs::files`.
    pub file_index: u32,
    /// Offset within the file.
    pub offset: u64,
    /// Length of this segment's bytes in the chunk body.
    pub len: u32,
}

/// `remi_migration_end` arguments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EndArgs {
    /// Transfer token.
    pub token: String,
}

/// Result of `remi_migration_end` / `remi_migration_pull`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferSummary {
    /// Files written.
    pub files: u64,
    /// Bytes written.
    pub bytes: u64,
}

/// Encodes a chunk frame: `[u32 LE header length][wire header][body]`.
pub fn encode_chunk(header: &ChunkHeader, body: &[u8]) -> Result<Vec<u8>, String> {
    let header_bytes = mochi_wire::to_vec(header).map_err(|e| e.to_string())?;
    let mut frame = Vec::with_capacity(4 + header_bytes.len() + body.len());
    frame.extend_from_slice(&(header_bytes.len() as u32).to_le_bytes());
    frame.extend_from_slice(&header_bytes);
    frame.extend_from_slice(body);
    Ok(frame)
}

/// Decodes a chunk frame into its header and body.
pub fn decode_chunk(frame: &[u8]) -> Result<(ChunkHeader, &[u8]), String> {
    if frame.len() < 4 {
        return Err("chunk frame shorter than header length".into());
    }
    let header_len =
        u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
    let rest = &frame[4..];
    if rest.len() < header_len {
        return Err(format!("chunk frame truncated: header {header_len} > {}", rest.len()));
    }
    let header: ChunkHeader =
        mochi_wire::from_slice(&rest[..header_len]).map_err(|e| e.to_string())?;
    let body = &rest[header_len..];
    let declared: usize = header.segments.iter().map(|s| s.len as usize).sum();
    if declared != body.len() {
        return Err(format!("chunk body {} bytes, segments declare {declared}", body.len()));
    }
    Ok((header, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_frame_round_trip() {
        let header = ChunkHeader {
            token: "t1".into(),
            seq: 3,
            segments: vec![
                ChunkSegment { file_index: 0, offset: 0, len: 5 },
                ChunkSegment { file_index: 2, offset: 100, len: 3 },
            ],
        };
        let body = b"aaaaabbb";
        let frame = encode_chunk(&header, body).unwrap();
        let (back, back_body) = decode_chunk(&frame).unwrap();
        assert_eq!(back, header);
        assert_eq!(back_body, body);
    }

    #[test]
    fn truncated_frames_rejected() {
        assert!(decode_chunk(&[1, 2]).is_err());
        let header = ChunkHeader { token: "t".into(), seq: 0, segments: vec![] };
        let mut frame = encode_chunk(&header, b"").unwrap();
        frame.truncate(frame.len() - 1);
        assert!(decode_chunk(&frame).is_err());
    }

    #[test]
    fn mismatched_body_length_rejected() {
        let header = ChunkHeader {
            token: "t".into(),
            seq: 0,
            segments: vec![ChunkSegment { file_index: 0, offset: 0, len: 10 }],
        };
        let frame = encode_chunk(&header, b"short").unwrap();
        assert!(decode_chunk(&frame).is_err());
    }

    #[test]
    fn strategy_serializes() {
        let s = Strategy::chunked_default();
        let json = serde_json::to_string(&s).unwrap();
        let back: Strategy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
