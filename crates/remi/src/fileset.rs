//! Filesets: the unit of migration.
//!
//! A [`FileSet`] is a root directory plus the relative paths, sizes, and
//! checksums of the files beneath it. Components that want their state to
//! be migratable expose it as a fileset (Yokan's LSM backend and Warabi's
//! file targets do).

use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use mochi_util::checksum::Crc64Hasher;

/// One file within a fileset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileEntry {
    /// Path relative to the fileset root, with `/` separators.
    pub path: String,
    /// Size in bytes.
    pub size: u64,
    /// CRC-64 of the contents.
    pub checksum: u64,
}

/// A set of files rooted at a directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSet {
    /// Absolute root directory.
    pub root: PathBuf,
    /// Files, sorted by path for determinism.
    pub files: Vec<FileEntry>,
}

/// Computes the CRC-64 of a file by streaming it.
pub fn checksum_file(path: &Path) -> io::Result<u64> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let mut hasher = Crc64Hasher::new();
    let mut buf = vec![0u8; 1 << 16];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        hasher.update(&buf[..n]);
    }
    Ok(hasher.finish())
}

impl FileSet {
    /// Scans `root` recursively and builds the fileset.
    pub fn scan(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        let mut files = Vec::new();
        let mut stack = vec![root.clone()];
        while let Some(dir) = stack.pop() {
            for entry in std::fs::read_dir(&dir)? {
                let entry = entry?;
                let path = entry.path();
                let file_type = entry.file_type()?;
                if file_type.is_dir() {
                    stack.push(path);
                } else if file_type.is_file() {
                    let rel = path
                        .strip_prefix(&root)
                        .expect("walked path under root")
                        .components()
                        .map(|c| c.as_os_str().to_string_lossy())
                        .collect::<Vec<_>>()
                        .join("/");
                    let size = entry.metadata()?.len();
                    let checksum = checksum_file(&path)?;
                    files.push(FileEntry { path: rel, size, checksum });
                }
            }
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Self { root, files })
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the fileset has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Absolute path of one entry.
    pub fn absolute(&self, entry: &FileEntry) -> PathBuf {
        self.root.join(&entry.path)
    }

    /// Deletes all files in the set (the "migration" half of
    /// migrate-vs-copy) and prunes now-empty directories best-effort.
    pub fn remove_files(&self) -> io::Result<()> {
        for entry in &self.files {
            std::fs::remove_file(self.absolute(entry))?;
        }
        // Prune empty subdirectories bottom-up, ignoring failures.
        let mut dirs: Vec<PathBuf> = self
            .files
            .iter()
            .filter_map(|f| self.absolute(f).parent().map(Path::to_path_buf))
            .collect();
        dirs.sort_by_key(|d| std::cmp::Reverse(d.components().count()));
        dirs.dedup();
        for dir in dirs {
            if dir != self.root {
                let _ = std::fs::remove_dir(dir);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mochi_util::TempDir;

    fn populate(dir: &Path) {
        std::fs::create_dir_all(dir.join("sub/deep")).unwrap();
        std::fs::write(dir.join("a.dat"), b"alpha").unwrap();
        std::fs::write(dir.join("sub/b.dat"), b"beta-data").unwrap();
        std::fs::write(dir.join("sub/deep/c.dat"), vec![7u8; 1000]).unwrap();
    }

    #[test]
    fn scan_finds_all_files_sorted() {
        let tmp = TempDir::new("fileset").unwrap();
        populate(tmp.path());
        let fs = FileSet::scan(tmp.path()).unwrap();
        let paths: Vec<&str> = fs.files.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(paths, vec!["a.dat", "sub/b.dat", "sub/deep/c.dat"]);
        assert_eq!(fs.total_bytes(), 5 + 9 + 1000);
        assert_eq!(fs.len(), 3);
    }

    #[test]
    fn checksums_match_contents() {
        let tmp = TempDir::new("fileset-crc").unwrap();
        populate(tmp.path());
        let fs = FileSet::scan(tmp.path()).unwrap();
        let a = fs.files.iter().find(|f| f.path == "a.dat").unwrap();
        assert_eq!(a.checksum, mochi_util::crc64(b"alpha"));
    }

    #[test]
    fn scan_empty_dir() {
        let tmp = TempDir::new("fileset-empty").unwrap();
        let fs = FileSet::scan(tmp.path()).unwrap();
        assert!(fs.is_empty());
        assert_eq!(fs.total_bytes(), 0);
    }

    #[test]
    fn remove_files_clears_contents() {
        let tmp = TempDir::new("fileset-rm").unwrap();
        populate(tmp.path());
        let fs = FileSet::scan(tmp.path()).unwrap();
        fs.remove_files().unwrap();
        let again = FileSet::scan(tmp.path()).unwrap();
        assert!(again.is_empty());
        assert!(tmp.path().exists(), "root is preserved");
    }

    #[test]
    fn entry_serializes() {
        let entry = FileEntry { path: "x/y".into(), size: 10, checksum: 42 };
        let json = serde_json::to_string(&entry).unwrap();
        let back: FileEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entry);
    }
}
