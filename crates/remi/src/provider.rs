//! The REMI provider: destination side of a migration.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use mochi_margo::{MargoRuntime, RpcContext};
use mochi_mercury::BulkAccess;

use crate::fileset::{checksum_file, FileEntry};
use crate::protocol::{self, rpc, EndArgs, PullArgs, StartArgs, TransferSummary};

struct Transfer {
    files: Vec<FileEntry>,
    dest_root: PathBuf,
    received_bytes: u64,
}

struct Inner {
    root: PathBuf,
    transfers: Mutex<HashMap<String, Transfer>>,
    /// Summaries of finished transfers, so a retried `end`/`pull` (both
    /// declared idempotent by the client) replays its recorded result
    /// instead of failing on the already-consumed session.
    completed: Mutex<HashMap<String, TransferSummary>>,
}

/// Destination-side migration endpoint. Registering one makes a process
/// able to receive filesets under `root`.
pub struct RemiProvider {
    margo: MargoRuntime,
    provider_id: u16,
    inner: Arc<Inner>,
}

fn ensure_parent(path: &Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
    }
    Ok(())
}

fn safe_join(root: &Path, rel: &str) -> Result<PathBuf, String> {
    if rel.split('/').any(|c| c == ".." || c.is_empty() && !rel.is_empty()) || rel.starts_with('/') {
        return Err(format!("unsafe relative path '{rel}'"));
    }
    Ok(root.join(rel))
}

impl Inner {
    fn start(&self, args: StartArgs) -> Result<(), String> {
        let dest_root = match &args.dest_subdir {
            Some(sub) => safe_join(&self.root, sub)?,
            None => self.root.clone(),
        };
        std::fs::create_dir_all(&dest_root).map_err(|e| e.to_string())?;
        // Pre-create every file at its final size so chunk segments can be
        // written at absolute offsets in any order.
        for entry in &args.files {
            let path = safe_join(&dest_root, &entry.path)?;
            ensure_parent(&path)?;
            let file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&path)
                .map_err(|e| format!("create {}: {e}", path.display()))?;
            file.set_len(entry.size).map_err(|e| e.to_string())?;
        }
        // A reused token supersedes any previous session: a retried
        // `start` (it is declared idempotent) resets the session it
        // started, and the files were just re-truncated above, so the
        // fresh record matches the on-disk state either way.
        self.completed.lock().remove(&args.token);
        self.transfers.lock().insert(
            args.token.clone(),
            Transfer { files: args.files, dest_root, received_bytes: 0 },
        );
        Ok(())
    }

    fn apply_chunk(&self, frame: &[u8]) -> Result<(), String> {
        let (header, body) = protocol::decode_chunk(frame)?;
        let mut transfers = self.transfers.lock();
        let transfer = transfers
            .get_mut(&header.token)
            .ok_or_else(|| format!("unknown transfer '{}'", header.token))?;
        let mut cursor = 0usize;
        for segment in &header.segments {
            let entry = transfer
                .files
                .get(segment.file_index as usize)
                .ok_or_else(|| format!("bad file index {}", segment.file_index))?;
            let end = segment.offset + segment.len as u64;
            if end > entry.size {
                return Err(format!("segment past EOF for '{}'", entry.path));
            }
            let path = safe_join(&transfer.dest_root, &entry.path)?;
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| format!("open {}: {e}", path.display()))?;
            file.write_all_at(&body[cursor..cursor + segment.len as usize], segment.offset)
                .map_err(|e| e.to_string())?;
            cursor += segment.len as usize;
            transfer.received_bytes += segment.len as u64;
        }
        Ok(())
    }

    fn verify_and_finish(&self, token: &str) -> Result<TransferSummary, String> {
        let transfer = match self.transfers.lock().remove(token) {
            Some(transfer) => transfer,
            // A retry of an `end`/`pull` that already finished: replay
            // the recorded summary.
            None => {
                return self
                    .completed
                    .lock()
                    .get(token)
                    .cloned()
                    .ok_or_else(|| format!("unknown transfer '{token}'"));
            }
        };
        let mut bytes = 0u64;
        for entry in &transfer.files {
            let path = safe_join(&transfer.dest_root, &entry.path)?;
            let checksum = checksum_file(&path).map_err(|e| e.to_string())?;
            if checksum != entry.checksum {
                return Err(format!(
                    "checksum mismatch for '{}': got {checksum:#x}, want {:#x}",
                    entry.path, entry.checksum
                ));
            }
            bytes += entry.size;
        }
        let summary = TransferSummary { files: transfer.files.len() as u64, bytes };
        self.completed.lock().insert(token.to_string(), summary.clone());
        Ok(summary)
    }

    fn pull(&self, ctx: &RpcContext, args: PullArgs) -> Result<TransferSummary, String> {
        let (files, dest_root) = {
            let transfers = self.transfers.lock();
            match transfers.get(&args.token) {
                Some(transfer) => (transfer.files.clone(), transfer.dest_root.clone()),
                // A retried `pull` whose predecessor completed the
                // transfer: replay the summary, skip the re-pull.
                None => {
                    return self
                        .completed
                        .lock()
                        .get(&args.token)
                        .cloned()
                        .ok_or_else(|| format!("unknown transfer '{}'", args.token));
                }
            }
        };
        if args.bulk_handles.len() != files.len() {
            return Err(format!(
                "{} bulk handles for {} files",
                args.bulk_handles.len(),
                files.len()
            ));
        }
        for (entry, remote) in files.iter().zip(&args.bulk_handles) {
            let path = safe_join(&dest_root, &entry.path)?;
            let local = ctx
                .margo()
                .expose_bulk_file(&path, entry.size as usize, BulkAccess::WriteOnly)
                .map_err(|e| e.to_string())?;
            let result = ctx.bulk_pull(remote, 0, &local, 0, entry.size as usize);
            ctx.margo().unexpose_bulk(&local);
            result.map_err(|e| format!("bulk pull of '{}': {e}", entry.path))?;
        }
        {
            let mut transfers = self.transfers.lock();
            if let Some(t) = transfers.get_mut(&args.token) {
                t.received_bytes = files.iter().map(|f| f.size).sum();
            }
        }
        self.verify_and_finish(&args.token)
    }
}

impl RemiProvider {
    /// Registers a REMI provider on `margo` with the given provider id;
    /// received filesets are written under `root`.
    pub fn register(
        margo: &MargoRuntime,
        provider_id: u16,
        root: impl Into<PathBuf>,
        pool: Option<&str>,
    ) -> Result<Arc<Self>, mochi_margo::MargoError> {
        let inner = Arc::new(Inner {
            root: root.into(),
            transfers: Mutex::new(HashMap::new()),
            completed: Mutex::new(HashMap::new()),
        });

        let start_inner = Arc::clone(&inner);
        margo.register_typed(rpc::START, provider_id, pool, move |args: StartArgs, _ctx| {
            start_inner.start(args).map(|()| true)
        })?;

        let chunk_inner = Arc::clone(&inner);
        margo.register(
            rpc::CHUNK,
            provider_id,
            pool,
            Arc::new(move |ctx: RpcContext| match chunk_inner.apply_chunk(ctx.payload()) {
                Ok(()) => {
                    let _ = ctx.respond(&true);
                }
                Err(message) => {
                    let _ = ctx.respond_err(message);
                }
            }),
        )?;

        let end_inner = Arc::clone(&inner);
        margo.register_typed(rpc::END, provider_id, pool, move |args: EndArgs, _ctx| {
            end_inner.verify_and_finish(&args.token)
        })?;

        let pull_inner = Arc::clone(&inner);
        margo.register_typed(rpc::PULL, provider_id, pool, move |args: PullArgs, ctx| {
            pull_inner.pull(ctx, args)
        })?;

        Ok(Arc::new(Self { margo: margo.clone(), provider_id, inner }))
    }

    /// This provider's id.
    pub fn provider_id(&self) -> u16 {
        self.provider_id
    }

    /// The root directory migrated filesets land in.
    pub fn root(&self) -> &Path {
        &self.inner.root
    }

    /// Number of transfers currently in progress.
    pub fn in_progress(&self) -> usize {
        self.inner.transfers.lock().len()
    }

    /// Unregisters the provider's RPCs (used when a Bedrock process stops
    /// the provider).
    pub fn deregister(&self) -> Result<(), mochi_margo::MargoError> {
        for name in [rpc::START, rpc::CHUNK, rpc::END, rpc::PULL] {
            self.margo.deregister(name, self.provider_id)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_join_rejects_escapes() {
        let root = Path::new("/tmp/x");
        assert!(safe_join(root, "ok/file").is_ok());
        assert!(safe_join(root, "../evil").is_err());
        assert!(safe_join(root, "a/../../evil").is_err());
        assert!(safe_join(root, "/abs").is_err());
    }
}
