//! Property tests: both blob-target backends behave identically to a
//! simple model under arbitrary operation sequences, and the file target
//! preserves everything across reopen.

use std::collections::BTreeMap;

use proptest::prelude::*;

use mochi_util::TempDir;
use mochi_warabi::target::{FileTarget, MemoryTarget};
use mochi_warabi::{BlobId, BlobTarget, WarabiError};

#[derive(Debug, Clone)]
enum Op {
    Create(u16),
    Write(usize, u16, Vec<u8>),
    Read(usize, u16, u16),
    Erase(usize),
    List,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (1u16..512).prop_map(Op::Create),
        4 => (any::<usize>(), any::<u16>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(b, o, d)| Op::Write(b, o, d)),
        3 => (any::<usize>(), any::<u16>(), 0u16..64).prop_map(|(b, o, l)| Op::Read(b, o, l)),
        1 => any::<usize>().prop_map(Op::Erase),
        1 => Just(Op::List),
    ]
}

fn run_against_model(target: &dyn BlobTarget, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut model: BTreeMap<BlobId, Vec<u8>> = BTreeMap::new();
    let mut ids: Vec<BlobId> = Vec::new();
    for op in ops {
        match op {
            Op::Create(size) => {
                let id = target.create(*size as u64).unwrap();
                model.insert(id, vec![0u8; *size as usize]);
                ids.push(id);
            }
            Op::Write(blob_sel, offset, data) => {
                if ids.is_empty() {
                    continue;
                }
                let id = ids[blob_sel % ids.len()];
                let result = target.write(id, *offset as u64, data);
                match model.get_mut(&id) {
                    Some(blob) if *offset as usize + data.len() <= blob.len() => {
                        result.unwrap();
                        blob[*offset as usize..*offset as usize + data.len()]
                            .copy_from_slice(data);
                    }
                    Some(_) => {
                        let out_of_bounds = matches!(result, Err(WarabiError::OutOfBounds { .. }));
                        prop_assert!(out_of_bounds);
                    }
                    None => prop_assert!(matches!(result, Err(WarabiError::NoSuchBlob(_)))),
                }
            }
            Op::Read(blob_sel, offset, len) => {
                if ids.is_empty() {
                    continue;
                }
                let id = ids[blob_sel % ids.len()];
                let result = target.read(id, *offset as u64, *len as u64);
                match model.get(&id) {
                    Some(blob) if (*offset as usize + *len as usize) <= blob.len() => {
                        let expected =
                            blob[*offset as usize..*offset as usize + *len as usize].to_vec();
                        prop_assert_eq!(result.unwrap(), expected);
                    }
                    Some(_) => {
                        let out_of_bounds = matches!(result, Err(WarabiError::OutOfBounds { .. }));
                        prop_assert!(out_of_bounds);
                    }
                    None => prop_assert!(matches!(result, Err(WarabiError::NoSuchBlob(_)))),
                }
            }
            Op::Erase(blob_sel) => {
                if ids.is_empty() {
                    continue;
                }
                let id = ids[blob_sel % ids.len()];
                let existed = target.erase(id).unwrap();
                prop_assert_eq!(existed, model.remove(&id).is_some());
            }
            Op::List => {
                let listed = target.list().unwrap();
                let expected: Vec<BlobId> = model.keys().copied().collect();
                prop_assert_eq!(listed, expected);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn memory_target_matches_model(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        run_against_model(&MemoryTarget::new(), &ops)?;
    }

    #[test]
    fn file_target_matches_model_and_survives_reopen(
        ops in proptest::collection::vec(op_strategy(), 0..40),
    ) {
        let dir = TempDir::new("warabi-prop").unwrap();
        let target = FileTarget::open(dir.path()).unwrap();
        run_against_model(&target, &ops)?;
        // Reopen: contents identical.
        let expected: Vec<(BlobId, Vec<u8>)> = target
            .list()
            .unwrap()
            .into_iter()
            .map(|id| {
                let size = target.size(id).unwrap();
                (id, target.read(id, 0, size).unwrap())
            })
            .collect();
        drop(target);
        let reopened = FileTarget::open(dir.path()).unwrap();
        for (id, data) in expected {
            prop_assert_eq!(reopened.read(id, 0, data.len() as u64).unwrap(), data);
        }
    }
}
