//! Integration tests for Warabi over the fabric, including the bulk
//! (RDMA-model) transfer paths and the Bedrock module.

use std::sync::Arc;

use mochi_bedrock::{BedrockServer, Client, ModuleCatalog, ProcessConfig};
use mochi_margo::MargoRuntime;
use mochi_mercury::{Address, Fabric};
use mochi_util::{SeededRng, TempDir};
use mochi_warabi::target::MemoryTarget;
use mochi_warabi::{TargetHandle, WarabiProvider};

fn boot(fabric: &Fabric, host: &str) -> MargoRuntime {
    MargoRuntime::init_default(fabric, Address::tcp(host, 1)).unwrap()
}

fn setup(fabric: &Fabric) -> (MargoRuntime, MargoRuntime, Arc<WarabiProvider>, TargetHandle) {
    let server = boot(fabric, "server");
    let client = boot(fabric, "client");
    let provider = WarabiProvider::register(&server, 1, None, Arc::new(MemoryTarget::new())).unwrap();
    let handle = TargetHandle::new(&client, server.address(), 1);
    (server, client, provider, handle)
}

#[test]
fn create_write_read_inline() {
    let fabric = Fabric::new();
    let (server, client, _provider, handle) = setup(&fabric);
    let id = handle.create(1000).unwrap();
    handle.write(id, 100, b"inline-data").unwrap();
    assert_eq!(handle.read(id, 100, 11).unwrap(), b"inline-data");
    assert_eq!(handle.size(id).unwrap(), 1000);
    assert_eq!(handle.list().unwrap(), vec![id]);
    handle.persist(id).unwrap();
    assert!(handle.erase(id).unwrap());
    assert!(handle.list().unwrap().is_empty());
    server.finalize();
    client.finalize();
}

#[test]
fn large_transfers_use_bulk_path_and_round_trip() {
    let fabric = Fabric::new();
    let (server, client, _provider, handle) = setup(&fabric);
    let mut rng = SeededRng::new(7);
    let mut data = vec![0u8; 1 << 20];
    rng.fill_bytes(&mut data);
    let id = handle.create(data.len() as u64).unwrap();
    handle.write(id, 0, &data).unwrap(); // > threshold → bulk
    let back = handle.read(id, 0, data.len() as u64).unwrap();
    assert_eq!(back, data);
    // Server-side monitoring saw bulk transfers.
    let stats = server.monitoring_json().unwrap();
    let pulls = stats["bulk"]["pull"]["size"]["num"].as_u64().unwrap();
    let pushes = stats["bulk"]["push"]["size"]["num"].as_u64().unwrap();
    assert!(pulls >= 1, "expected bulk pull, stats: {stats}");
    assert!(pushes >= 1, "expected bulk push");
    server.finalize();
    client.finalize();
}

#[test]
fn explicit_bulk_and_inline_agree() {
    let fabric = Fabric::new();
    let (server, client, _provider, handle) = setup(&fabric);
    let id = handle.create(5000).unwrap();
    handle.write_bulk(id, 0, &vec![7u8; 5000]).unwrap();
    assert_eq!(handle.read(id, 4990, 10).unwrap(), vec![7u8; 10]);
    assert_eq!(handle.read_bulk(id, 0, 5000).unwrap(), vec![7u8; 5000]);
    server.finalize();
    client.finalize();
}

#[test]
fn out_of_bounds_errors_propagate() {
    let fabric = Fabric::new();
    let (server, client, _provider, handle) = setup(&fabric);
    let id = handle.create(10).unwrap();
    let err = handle.write(id, 8, b"toolong").unwrap_err();
    assert!(err.to_string().contains("outside"), "{err}");
    let err = handle.read(id, 0, 11).unwrap_err();
    assert!(err.to_string().contains("outside"), "{err}");
    let err = handle.size(999).unwrap_err();
    assert!(err.to_string().contains("no blob"), "{err}");
    server.finalize();
    client.finalize();
}

#[test]
fn bedrock_managed_warabi_with_file_target_migrates() {
    let fabric = Fabric::new();
    let dir = TempDir::new("warabi-bedrock").unwrap();
    let mut catalog = ModuleCatalog::new();
    catalog.install(mochi_warabi::bedrock::LIBRARY, mochi_warabi::bedrock::bedrock_module());

    let config = ProcessConfig::from_json(
        r#"{ "libraries": { "warabi": "libwarabi.so" },
             "providers": [ { "name": "blobs", "type": "warabi", "provider_id": 1,
                              "config": { "target": "file" } } ] }"#,
    )
    .unwrap();
    let n1 = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n1", 1),
        &config,
        catalog.clone(),
        dir.path().join("n1"),
    )
    .unwrap();
    let mut empty = ProcessConfig::default();
    empty.libraries.insert("warabi".into(), "libwarabi.so".into());
    let n2 = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n2", 1),
        &empty,
        catalog,
        dir.path().join("n2"),
    )
    .unwrap();

    let client_margo = boot(&fabric, "client");
    let handle = TargetHandle::new(&client_margo, n1.address(), 1);
    let id = handle.create(256).unwrap();
    handle.write(id, 0, &vec![9u8; 256]).unwrap();

    let bedrock = Client::new(&client_margo).make_service_handle(n1.address(), 0);
    bedrock.migrate_provider("blobs", &n2.address(), mochi_remi::Strategy::Rdma).unwrap();

    let handle2 = TargetHandle::new(&client_margo, n2.address(), 1);
    assert_eq!(handle2.list().unwrap(), vec![id]);
    assert_eq!(handle2.read(id, 0, 256).unwrap(), vec![9u8; 256]);
    n1.shutdown();
    n2.shutdown();
    client_margo.finalize();
}

#[test]
fn bedrock_checkpoint_restore_memory_target() {
    let fabric = Fabric::new();
    let dir = TempDir::new("warabi-ckpt").unwrap();
    let mut catalog = ModuleCatalog::new();
    catalog.install(mochi_warabi::bedrock::LIBRARY, mochi_warabi::bedrock::bedrock_module());
    let config = ProcessConfig::from_json(
        r#"{ "libraries": { "warabi": "libwarabi.so" },
             "providers": [ { "name": "blobs", "type": "warabi", "provider_id": 1 } ] }"#,
    )
    .unwrap();
    let server = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n1", 1),
        &config,
        catalog,
        dir.path().join("n1"),
    )
    .unwrap();
    let client_margo = boot(&fabric, "client");
    let handle = TargetHandle::new(&client_margo, server.address(), 1);
    let id = handle.create(32).unwrap();
    handle.write(id, 0, b"snapshot-me-please-0123456789abc").unwrap();

    let pfs = dir.path().join("pfs");
    let bedrock = Client::new(&client_margo).make_service_handle(server.address(), 0);
    bedrock.checkpoint_provider("blobs", pfs.to_str().unwrap()).unwrap();
    handle.erase(id).unwrap();
    bedrock.restore_provider("blobs", pfs.to_str().unwrap()).unwrap();
    let ids = handle.list().unwrap();
    assert_eq!(ids.len(), 1);
    assert_eq!(handle.read(ids[0], 0, 32).unwrap(), b"snapshot-me-please-0123456789abc");
    server.shutdown();
    client_margo.finalize();
}
