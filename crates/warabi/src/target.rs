//! Blob targets: the abstract resource behind a Warabi provider.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::OpenOptions;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use mochi_util::unique_u64;

/// Identifier of one blob within a target.
pub type BlobId = u64;

/// Errors raised by blob targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarabiError {
    /// Unknown blob id.
    NoSuchBlob(BlobId),
    /// Access outside the blob's bounds.
    OutOfBounds { id: BlobId, offset: u64, len: u64, size: u64 },
    /// I/O failure.
    Io(String),
    /// Configuration error.
    Config(String),
}

impl fmt::Display for WarabiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarabiError::NoSuchBlob(id) => write!(f, "no blob {id}"),
            WarabiError::OutOfBounds { id, offset, len, size } => {
                write!(f, "blob {id}: [{offset}, {}) outside size {size}", offset + len)
            }
            WarabiError::Io(m) => write!(f, "io: {m}"),
            WarabiError::Config(m) => write!(f, "config: {m}"),
        }
    }
}

impl std::error::Error for WarabiError {}

impl From<std::io::Error> for WarabiError {
    fn from(e: std::io::Error) -> Self {
        WarabiError::Io(e.to_string())
    }
}

/// The abstract target interface.
pub trait BlobTarget: Send + Sync {
    /// Backend name (`"memory"`, `"file"`).
    fn backend_name(&self) -> &'static str;

    /// Allocates a zero-filled blob of `size` bytes.
    fn create(&self, size: u64) -> Result<BlobId, WarabiError>;

    /// Writes `data` at `offset`.
    fn write(&self, id: BlobId, offset: u64, data: &[u8]) -> Result<(), WarabiError>;

    /// Reads `len` bytes at `offset`.
    fn read(&self, id: BlobId, offset: u64, len: u64) -> Result<Vec<u8>, WarabiError>;

    /// Size of a blob.
    fn size(&self, id: BlobId) -> Result<u64, WarabiError>;

    /// Forces the blob to durable storage (no-op in memory).
    fn persist(&self, id: BlobId) -> Result<(), WarabiError>;

    /// Deletes a blob; returns whether it existed.
    fn erase(&self, id: BlobId) -> Result<bool, WarabiError>;

    /// All blob ids, ascending.
    fn list(&self) -> Result<Vec<BlobId>, WarabiError>;

    /// Flush everything (migration quiesce).
    fn flush(&self) -> Result<(), WarabiError>;
}

fn check_bounds(id: BlobId, offset: u64, len: u64, size: u64) -> Result<(), WarabiError> {
    if offset.checked_add(len).is_none_or(|end| end > size) {
        Err(WarabiError::OutOfBounds { id, offset, len, size })
    } else {
        Ok(())
    }
}

/// In-memory target.
#[derive(Default)]
pub struct MemoryTarget {
    blobs: RwLock<BTreeMap<BlobId, Vec<u8>>>,
}

impl MemoryTarget {
    /// Creates an empty target.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BlobTarget for MemoryTarget {
    fn backend_name(&self) -> &'static str {
        "memory"
    }

    fn create(&self, size: u64) -> Result<BlobId, WarabiError> {
        let id = unique_u64();
        self.blobs.write().insert(id, vec![0u8; size as usize]);
        Ok(id)
    }

    fn write(&self, id: BlobId, offset: u64, data: &[u8]) -> Result<(), WarabiError> {
        let mut blobs = self.blobs.write();
        let blob = blobs.get_mut(&id).ok_or(WarabiError::NoSuchBlob(id))?;
        check_bounds(id, offset, data.len() as u64, blob.len() as u64)?;
        blob[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn read(&self, id: BlobId, offset: u64, len: u64) -> Result<Vec<u8>, WarabiError> {
        let blobs = self.blobs.read();
        let blob = blobs.get(&id).ok_or(WarabiError::NoSuchBlob(id))?;
        check_bounds(id, offset, len, blob.len() as u64)?;
        Ok(blob[offset as usize..(offset + len) as usize].to_vec())
    }

    fn size(&self, id: BlobId) -> Result<u64, WarabiError> {
        let blobs = self.blobs.read();
        blobs.get(&id).map(|b| b.len() as u64).ok_or(WarabiError::NoSuchBlob(id))
    }

    fn persist(&self, id: BlobId) -> Result<(), WarabiError> {
        self.size(id).map(|_| ())
    }

    fn erase(&self, id: BlobId) -> Result<bool, WarabiError> {
        Ok(self.blobs.write().remove(&id).is_some())
    }

    fn list(&self) -> Result<Vec<BlobId>, WarabiError> {
        Ok(self.blobs.read().keys().copied().collect())
    }

    fn flush(&self) -> Result<(), WarabiError> {
        Ok(())
    }
}

/// File-backed target: one `blob-<id>.bin` per blob under a directory.
pub struct FileTarget {
    dir: PathBuf,
    sizes: RwLock<BTreeMap<BlobId, u64>>,
}

impl FileTarget {
    /// Opens (or creates) a target in `dir`, indexing existing blobs.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, WarabiError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut sizes = BTreeMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name.strip_prefix("blob-").and_then(|s| s.strip_suffix(".bin")) {
                if let Ok(id) = id.parse::<u64>() {
                    sizes.insert(id, entry.metadata()?.len());
                }
            }
        }
        Ok(Self { dir, sizes: RwLock::new(sizes) })
    }

    fn path(&self, id: BlobId) -> PathBuf {
        self.dir.join(format!("blob-{id}.bin"))
    }

    /// The backing directory (migration support).
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl BlobTarget for FileTarget {
    fn backend_name(&self) -> &'static str {
        "file"
    }

    fn create(&self, size: u64) -> Result<BlobId, WarabiError> {
        let id = unique_u64();
        let file = OpenOptions::new().create_new(true).write(true).open(self.path(id))?;
        file.set_len(size)?;
        self.sizes.write().insert(id, size);
        Ok(id)
    }

    fn write(&self, id: BlobId, offset: u64, data: &[u8]) -> Result<(), WarabiError> {
        let size = self.size(id)?;
        check_bounds(id, offset, data.len() as u64, size)?;
        let file = OpenOptions::new().write(true).open(self.path(id))?;
        file.write_all_at(data, offset)?;
        Ok(())
    }

    fn read(&self, id: BlobId, offset: u64, len: u64) -> Result<Vec<u8>, WarabiError> {
        let size = self.size(id)?;
        check_bounds(id, offset, len, size)?;
        let file = OpenOptions::new().read(true).open(self.path(id))?;
        let mut out = vec![0u8; len as usize];
        file.read_exact_at(&mut out, offset)?;
        Ok(out)
    }

    fn size(&self, id: BlobId) -> Result<u64, WarabiError> {
        self.sizes.read().get(&id).copied().ok_or(WarabiError::NoSuchBlob(id))
    }

    fn persist(&self, id: BlobId) -> Result<(), WarabiError> {
        let file = OpenOptions::new().read(true).open(self.path(id))?;
        file.sync_data()?;
        Ok(())
    }

    fn erase(&self, id: BlobId) -> Result<bool, WarabiError> {
        if self.sizes.write().remove(&id).is_some() {
            std::fs::remove_file(self.path(id))?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn list(&self) -> Result<Vec<BlobId>, WarabiError> {
        Ok(self.sizes.read().keys().copied().collect())
    }

    fn flush(&self) -> Result<(), WarabiError> {
        for id in self.list()? {
            self.persist(id)?;
        }
        Ok(())
    }
}

/// Target selection from the provider's `config` JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetConfig {
    /// `"memory"` or `"file"`.
    #[serde(default = "default_target")]
    pub target: String,
}

fn default_target() -> String {
    "memory".into()
}

impl Default for TargetConfig {
    fn default() -> Self {
        Self { target: default_target() }
    }
}

/// Instantiates a target in `dir` (used by file-backed targets).
pub fn create_target(
    config: &TargetConfig,
    dir: &Path,
) -> Result<Box<dyn BlobTarget>, WarabiError> {
    match config.target.as_str() {
        "memory" => Ok(Box::new(MemoryTarget::new())),
        "file" => Ok(Box::new(FileTarget::open(dir)?)),
        other => Err(WarabiError::Config(format!("unknown target '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mochi_util::TempDir;

    fn exercise(target: &dyn BlobTarget) {
        let id = target.create(100).unwrap();
        assert_eq!(target.size(id).unwrap(), 100);
        target.write(id, 10, b"hello").unwrap();
        assert_eq!(target.read(id, 10, 5).unwrap(), b"hello");
        assert_eq!(target.read(id, 0, 1).unwrap(), vec![0]);
        // Bounds.
        assert!(matches!(
            target.write(id, 98, b"xxx"),
            Err(WarabiError::OutOfBounds { .. })
        ));
        assert!(matches!(target.read(id, 200, 1), Err(WarabiError::OutOfBounds { .. })));
        target.persist(id).unwrap();
        assert_eq!(target.list().unwrap(), vec![id]);
        assert!(target.erase(id).unwrap());
        assert!(!target.erase(id).unwrap());
        assert!(matches!(target.read(id, 0, 1), Err(WarabiError::NoSuchBlob(_))));
    }

    #[test]
    fn memory_target_behaves() {
        exercise(&MemoryTarget::new());
    }

    #[test]
    fn file_target_behaves() {
        let dir = TempDir::new("warabi-file").unwrap();
        exercise(&FileTarget::open(dir.path()).unwrap());
    }

    #[test]
    fn file_target_survives_reopen() {
        let dir = TempDir::new("warabi-reopen").unwrap();
        let id;
        {
            let target = FileTarget::open(dir.path()).unwrap();
            id = target.create(16).unwrap();
            target.write(id, 0, b"persistent-blob!").unwrap();
            target.flush().unwrap();
        }
        let target = FileTarget::open(dir.path()).unwrap();
        assert_eq!(target.list().unwrap(), vec![id]);
        assert_eq!(target.read(id, 0, 16).unwrap(), b"persistent-blob!");
    }

    #[test]
    fn factory_dispatches() {
        let dir = TempDir::new("warabi-factory").unwrap();
        assert_eq!(
            create_target(&TargetConfig::default(), dir.path()).unwrap().backend_name(),
            "memory"
        );
        let file = TargetConfig { target: "file".into() };
        assert_eq!(create_target(&file, dir.path()).unwrap().backend_name(), "file");
        let bad = TargetConfig { target: "tape".into() };
        assert!(create_target(&bad, dir.path()).is_err());
    }

    #[test]
    fn overflow_offsets_rejected() {
        let target = MemoryTarget::new();
        let id = target.create(10).unwrap();
        assert!(matches!(
            target.read(id, u64::MAX, 2),
            Err(WarabiError::OutOfBounds { .. })
        ));
    }
}
