//! The Warabi RPC surface: every wire-visible RPC name, in one place.
//!
//! Registration sites (`provider.rs`) and client call sites
//! (`client.rs`) both pull names from this module, so a provider and its
//! clients can never drift apart — and `mochi-lint`'s contract checker
//! (MOCHI006/007/008) resolves these constants when it cross-checks
//! register/forward pairs.

/// Allocate a blob.
pub const CREATE: &str = "warabi_create";
/// Inline write (framed).
pub const WRITE: &str = "warabi_write";
/// Inline read (framed response).
pub const READ: &str = "warabi_read";
/// Bulk write: server pulls from the client's exposed region.
pub const WRITE_BULK: &str = "warabi_write_bulk";
/// Bulk read: server pushes into the client's exposed region.
pub const READ_BULK: &str = "warabi_read_bulk";
/// Blob size.
pub const SIZE: &str = "warabi_size";
/// Force to durable storage.
pub const PERSIST: &str = "warabi_persist";
/// Delete a blob.
pub const ERASE: &str = "warabi_erase";
/// List blob ids.
pub const LIST: &str = "warabi_list";

/// Every name above.
pub const ALL: [&str; 9] =
    [CREATE, WRITE, READ, WRITE_BULK, READ_BULK, SIZE, PERSIST, ERASE, LIST];
