//! Warabi's client library: blob target handles.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use mochi_margo::{decode_framed, encode_framed, CallContext, MargoError, MargoRuntime};
use mochi_mercury::{Address, BulkAccess};
use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::provider::rpc;
use crate::provider::{BulkArgs, ReadArgs, WriteHeader};
use crate::target::BlobId;

/// Transfers larger than this use the bulk (RDMA-model) path.
const BULK_THRESHOLD: u64 = 64 * 1024;

/// RPCs the runtime may safely re-send on transport-class failures:
/// reads, full-range overwrites at fixed offsets, and metadata queries.
/// `create` is excluded (each call allocates a fresh blob id) and so is
/// `erase` (its "did it exist" reply is not stable under retry).
const IDEMPOTENT_RPCS: &[&str] = &[
    rpc::WRITE,
    rpc::WRITE_BULK,
    rpc::READ,
    rpc::READ_BULK,
    rpc::SIZE,
    rpc::PERSIST,
    rpc::LIST,
];

/// Handle to a remote blob target.
#[derive(Clone)]
pub struct TargetHandle {
    margo: MargoRuntime,
    address: Address,
    provider_id: u16,
    timeout: Duration,
    context: CallContext,
}

impl TargetHandle {
    /// Creates a handle to the target served by `(address, provider_id)`.
    pub fn new(margo: &MargoRuntime, address: Address, provider_id: u16) -> Self {
        for name in IDEMPOTENT_RPCS {
            margo.declare_idempotent(name);
        }
        let timeout = margo.rpc_timeout();
        Self {
            margo: margo.clone(),
            address,
            provider_id,
            timeout,
            context: CallContext::TOP_LEVEL,
        }
    }

    /// Single chokepoint for typed RPCs: every forward in this client
    /// routes through here (or [`Self::call_raw`]) so retry, breaker, and
    /// deadline handling apply uniformly — `mochi-lint` MOCHI011 enforces
    /// this.
    fn call<I: Serialize, O: DeserializeOwned>(
        &self,
        rpc_name: &str,
        input: &I,
    ) -> Result<O, MargoError> {
        self.margo.forward_full(
            &self.address,
            rpc_name,
            self.provider_id,
            input,
            self.context,
            self.timeout,
        )
    }

    /// Raw-payload counterpart of [`Self::call`] for framed data-plane
    /// RPCs.
    fn call_raw(&self, rpc_name: &str, payload: Bytes) -> Result<Bytes, MargoError> {
        self.margo.forward_raw(
            &self.address,
            rpc_name,
            self.provider_id,
            payload,
            self.context,
            self.timeout,
        )
    }

    /// Overrides the per-RPC timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Threads a calling context (a handler passes
    /// `ctx.nested_context()`) so this handle's RPCs count as nested
    /// calls and inherit the parent's remaining deadline budget instead
    /// of restarting it.
    pub fn with_context(mut self, context: CallContext) -> Self {
        self.context = context;
        self
    }

    /// Allocates a zero-filled blob.
    pub fn create(&self, size: u64) -> Result<BlobId, MargoError> {
        self.call(rpc::CREATE, &size)
    }

    /// Writes `data` at `offset`; large writes use the bulk path.
    pub fn write(&self, id: BlobId, offset: u64, data: &[u8]) -> Result<(), MargoError> {
        if data.len() as u64 >= BULK_THRESHOLD {
            return self.write_bulk(id, offset, data);
        }
        let payload = encode_framed(&WriteHeader { id, offset }, data)?;
        let _ = self.call_raw(rpc::WRITE, payload)?;
        Ok(())
    }

    /// Writes through the bulk path explicitly.
    pub fn write_bulk(&self, id: BlobId, offset: u64, data: &[u8]) -> Result<(), MargoError> {
        let buffer = Arc::new(Mutex::new(data.to_vec()));
        let handle = self.margo.expose_bulk(Arc::clone(&buffer), BulkAccess::ReadOnly);
        let result: Result<bool, MargoError> = self.call(
            rpc::WRITE_BULK,
            &BulkArgs { id, offset, len: data.len() as u64, handle: handle.clone() },
        );
        self.margo.unexpose_bulk(&handle);
        result.map(|_| ())
    }

    /// Reads `len` bytes at `offset`; large reads use the bulk path.
    pub fn read(&self, id: BlobId, offset: u64, len: u64) -> Result<Vec<u8>, MargoError> {
        if len >= BULK_THRESHOLD {
            return self.read_bulk(id, offset, len);
        }
        let args = mochi_margo::encode(&ReadArgs { id, offset, len })?;
        let reply = self.call_raw(rpc::READ, args)?;
        let (len, body) = decode_framed::<u64>(&reply)?;
        if len as usize > body.len() {
            return Err(MargoError::Codec("read body truncated".into()));
        }
        Ok(body[..len as usize].to_vec())
    }

    /// Reads through the bulk path explicitly.
    pub fn read_bulk(&self, id: BlobId, offset: u64, len: u64) -> Result<Vec<u8>, MargoError> {
        let buffer = Arc::new(Mutex::new(vec![0u8; len as usize]));
        let handle = self.margo.expose_bulk(Arc::clone(&buffer), BulkAccess::WriteOnly);
        let result: Result<bool, MargoError> =
            self.call(rpc::READ_BULK, &BulkArgs { id, offset, len, handle: handle.clone() });
        self.margo.unexpose_bulk(&handle);
        result?;
        let data = Arc::try_unwrap(buffer)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone());
        Ok(data)
    }

    /// Size of a blob.
    pub fn size(&self, id: BlobId) -> Result<u64, MargoError> {
        self.call(rpc::SIZE, &id)
    }

    /// Forces a blob to durable storage.
    pub fn persist(&self, id: BlobId) -> Result<(), MargoError> {
        let _: bool = self.call(rpc::PERSIST, &id)?;
        Ok(())
    }

    /// Deletes a blob; returns whether it existed.
    pub fn erase(&self, id: BlobId) -> Result<bool, MargoError> {
        self.call(rpc::ERASE, &id)
    }

    /// Lists all blob ids.
    pub fn list(&self) -> Result<Vec<BlobId>, MargoError> {
        self.call(rpc::LIST, &())
    }
}
