//! The Warabi provider: serves a [`BlobTarget`] over Margo RPCs, with an
//! inline path for small transfers and a bulk (RDMA-model) path for
//! large ones.

use std::sync::Arc;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use mochi_margo::{decode_framed, encode_framed, MargoError, MargoRuntime, RpcContext};
use mochi_mercury::{BulkAccess, BulkHandle};
use parking_lot::Mutex;

use crate::target::{BlobId, BlobTarget};

/// RPC names registered by a Warabi provider.
/// The constants themselves live in [`crate::rpc_names`].
pub use crate::rpc_names as rpc;

/// Framed header of inline `WRITE` (body = data).
#[derive(Debug, Serialize, Deserialize)]
pub struct WriteHeader {
    /// Target blob.
    pub id: BlobId,
    /// Write offset.
    pub offset: u64,
}

/// Arguments of inline `READ`.
#[derive(Debug, Serialize, Deserialize)]
pub struct ReadArgs {
    /// Target blob.
    pub id: BlobId,
    /// Read offset.
    pub offset: u64,
    /// Bytes to read.
    pub len: u64,
}

/// Arguments of the bulk transfer RPCs.
#[derive(Debug, Serialize, Deserialize)]
pub struct BulkArgs {
    /// Target blob.
    pub id: BlobId,
    /// Offset within the blob.
    pub offset: u64,
    /// Bytes to transfer.
    pub len: u64,
    /// Client-exposed region (readable for `WRITE_BULK`, writable for
    /// `READ_BULK`).
    pub handle: BulkHandle,
}

/// A registered Warabi provider.
pub struct WarabiProvider {
    margo: MargoRuntime,
    provider_id: u16,
    target: Arc<dyn BlobTarget>,
}

impl WarabiProvider {
    /// Registers a provider serving `target` under `provider_id`.
    pub fn register(
        margo: &MargoRuntime,
        provider_id: u16,
        pool: Option<&str>,
        target: Arc<dyn BlobTarget>,
    ) -> Result<Arc<Self>, MargoError> {
        let t = Arc::clone(&target);
        margo.register_typed(rpc::CREATE, provider_id, pool, move |size: u64, _| {
            t.create(size).map_err(|e| e.to_string())
        })?;

        let t = Arc::clone(&target);
        margo.register(
            rpc::WRITE,
            provider_id,
            pool,
            Arc::new(move |ctx: RpcContext| {
                let result = (|| -> Result<(), String> {
                    let (header, body) = decode_framed::<WriteHeader>(ctx.payload_bytes())
                        .map_err(|e| e.to_string())?;
                    t.write(header.id, header.offset, &body).map_err(|e| e.to_string())
                })();
                match result {
                    Ok(()) => {
                        let _ = ctx.respond(&true);
                    }
                    Err(message) => {
                        let _ = ctx.respond_err(message);
                    }
                }
            }),
        )?;

        let t = Arc::clone(&target);
        margo.register(
            rpc::READ,
            provider_id,
            pool,
            Arc::new(move |ctx: RpcContext| {
                let result = (|| -> Result<Bytes, String> {
                    let args: ReadArgs = ctx.args().map_err(|e| e.to_string())?;
                    let data =
                        t.read(args.id, args.offset, args.len).map_err(|e| e.to_string())?;
                    encode_framed(&(data.len() as u64), &data).map_err(|e| e.to_string())
                })();
                match result {
                    Ok(payload) => {
                        let _ = ctx.respond_bytes(payload);
                    }
                    Err(message) => {
                        let _ = ctx.respond_err(message);
                    }
                }
            }),
        )?;

        let t = Arc::clone(&target);
        margo.register_typed(rpc::WRITE_BULK, provider_id, pool, move |args: BulkArgs, ctx| {
            // Pull the client's data into a scratch buffer, then write it.
            let scratch = Arc::new(Mutex::new(vec![0u8; args.len as usize]));
            let local = ctx.expose_bulk(Arc::clone(&scratch), BulkAccess::ReadWrite);
            let pulled = ctx.bulk_pull(&args.handle, 0, &local, 0, args.len as usize);
            ctx.margo().unexpose_bulk(&local);
            pulled.map_err(|e| e.to_string())?;
            let data = scratch.lock();
            t.write(args.id, args.offset, &data).map_err(|e| e.to_string())?;
            Ok(true)
        })?;

        let t = Arc::clone(&target);
        margo.register_typed(rpc::READ_BULK, provider_id, pool, move |args: BulkArgs, ctx| {
            let data = t.read(args.id, args.offset, args.len).map_err(|e| e.to_string())?;
            let scratch = Arc::new(Mutex::new(data));
            let local = ctx.expose_bulk(Arc::clone(&scratch), BulkAccess::ReadOnly);
            let pushed = ctx.bulk_push(&local, 0, &args.handle, 0, args.len as usize);
            ctx.margo().unexpose_bulk(&local);
            pushed.map_err(|e| e.to_string())?;
            Ok(true)
        })?;

        let t = Arc::clone(&target);
        margo.register_typed(rpc::SIZE, provider_id, pool, move |id: BlobId, _| {
            t.size(id).map_err(|e| e.to_string())
        })?;
        let t = Arc::clone(&target);
        margo.register_typed(rpc::PERSIST, provider_id, pool, move |id: BlobId, _| {
            t.persist(id).map(|()| true).map_err(|e| e.to_string())
        })?;
        let t = Arc::clone(&target);
        margo.register_typed(rpc::ERASE, provider_id, pool, move |id: BlobId, _| {
            t.erase(id).map_err(|e| e.to_string())
        })?;
        let t = Arc::clone(&target);
        margo.register_typed(rpc::LIST, provider_id, pool, move |_: (), _| {
            t.list().map_err(|e| e.to_string())
        })?;

        Ok(Arc::new(Self { margo: margo.clone(), provider_id, target }))
    }

    /// This provider's id.
    pub fn provider_id(&self) -> u16 {
        self.provider_id
    }

    /// Direct access to the backing target.
    pub fn target(&self) -> &Arc<dyn BlobTarget> {
        &self.target
    }

    /// Deregisters all RPCs.
    pub fn deregister(&self) -> Result<(), MargoError> {
        for name in rpc::ALL {
            self.margo.deregister(name, self.provider_id)?;
        }
        Ok(())
    }
}
