//! `mochi-warabi` — the blob storage component.
//!
//! Warabi providers manage *targets*: collections of fixed-size blobs
//! identified by numeric ids. In the paper's composition example (§3.2),
//! a dataset component stores metadata in Yokan and bulk data in Warabi;
//! our examples reproduce that split. Like Yokan, Warabi follows the
//! Figure-1 anatomy (provider + abstract target backends + client handle)
//! and ships a Bedrock module with migration/checkpoint hooks.
//!
//! Data-plane RPCs offer both an inline (framed) path for small blobs and
//! a bulk (RDMA-model) path for large ones, mirroring the real component.

pub mod bedrock;
pub mod client;
pub mod provider;
pub mod rpc_names;
pub mod target;

pub use client::TargetHandle;
pub use provider::WarabiProvider;
pub use target::{create_target, BlobId, BlobTarget, TargetConfig, WarabiError};
