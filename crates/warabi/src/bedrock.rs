//! Bedrock module for Warabi.

use std::path::Path;
use std::sync::Arc;

use serde_json::{json, Value};

use mochi_bedrock::{Module, ProviderContext, ProviderInstance};
use mochi_remi::FileSet;

use crate::provider::WarabiProvider;
use crate::target::{create_target, BlobTarget, TargetConfig};

/// Library path Warabi conventionally installs under.
pub const LIBRARY: &str = "libwarabi.so";

/// Returns the Warabi Bedrock module (install under [`LIBRARY`]).
pub fn bedrock_module() -> Arc<dyn Module> {
    Arc::new(WarabiModule)
}

struct WarabiModule;

struct WarabiInstance {
    provider: Arc<WarabiProvider>,
    target: Arc<dyn BlobTarget>,
    config: TargetConfig,
    data_dir: std::path::PathBuf,
}

impl Module for WarabiModule {
    fn type_name(&self) -> &str {
        "warabi"
    }

    fn create(&self, ctx: ProviderContext) -> Result<Box<dyn ProviderInstance>, String> {
        let config: TargetConfig = if ctx.config.is_null() {
            TargetConfig::default()
        } else {
            serde_json::from_value(ctx.config.clone()).map_err(|e| e.to_string())?
        };
        let target_dir = ctx.data_dir.join("target");
        let target: Arc<dyn BlobTarget> =
            Arc::from(create_target(&config, &target_dir).map_err(|e| e.to_string())?);
        let provider = WarabiProvider::register(
            &ctx.margo,
            ctx.provider_id,
            Some(&ctx.pool),
            Arc::clone(&target),
        )
        .map_err(|e| e.to_string())?;
        Ok(Box::new(WarabiInstance { provider, target, config, data_dir: ctx.data_dir }))
    }
}

impl ProviderInstance for WarabiInstance {
    fn type_name(&self) -> &str {
        "warabi"
    }

    fn config(&self) -> Value {
        json!({
            "target": self.config.target,
            "blobs": self.target.list().map(|l| l.len()).unwrap_or(0),
        })
    }

    fn stop(&self) -> Result<(), String> {
        self.provider.deregister().map_err(|e| e.to_string())
    }

    fn prepare_migration(&self) -> Result<(), String> {
        self.target.flush().map_err(|e| e.to_string())
    }

    fn fileset(&self) -> Option<FileSet> {
        if self.config.target != "file" {
            return None;
        }
        self.target.flush().ok()?;
        FileSet::scan(&self.data_dir).ok()
    }

    fn checkpoint(&self, dir: &Path) -> Result<(), String> {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        // Blob-by-blob copy: works for both backends.
        for id in self.target.list().map_err(|e| e.to_string())? {
            let size = self.target.size(id).map_err(|e| e.to_string())?;
            let data = self.target.read(id, 0, size).map_err(|e| e.to_string())?;
            std::fs::write(dir.join(format!("blob-{id}.bin")), data)
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    fn restore(&self, dir: &Path) -> Result<(), String> {
        for id in self.target.list().map_err(|e| e.to_string())? {
            self.target.erase(id).map_err(|e| e.to_string())?;
        }
        for entry in std::fs::read_dir(dir).map_err(|e| e.to_string())? {
            let entry = entry.map_err(|e| e.to_string())?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.strip_prefix("blob-").and_then(|s| s.strip_suffix(".bin")).is_some() {
                let data = std::fs::read(entry.path()).map_err(|e| e.to_string())?;
                let id = self.target.create(data.len() as u64).map_err(|e| e.to_string())?;
                self.target.write(id, 0, &data).map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_reports_type() {
        assert_eq!(bedrock_module().type_name(), "warabi");
    }
}
