//! Thread-striped accumulators: the building block behind the
//! contention-free statistics paths (margo monitoring, argobots pool
//! counters).
//!
//! A [`Striped<T>`] holds `N` independent copies of an accumulator, each
//! behind its own cache-line-padded [`OrderedMutex`]. Every thread is
//! assigned one stripe (by a process-wide thread ordinal, so a thread
//! always hits the same stripe of every `Striped` instance) and updates
//! only that stripe on the hot path; readers merge all stripes at dump
//! time with [`Striped::fold`]. Two threads recording statistics for
//! unrelated work therefore never contend on the same lock — the
//! serialization a single `Mutex<Stats>` imposes on every RPC handler.
//!
//! All stripes share one lock rank. That is safe because stripes are
//! never held together: [`Striped::with`] locks exactly one, and
//! [`Striped::fold`] / [`Striped::for_each_mut`] lock stripes strictly
//! one at a time, releasing each before taking the next.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::ordered_lock::OrderedMutex;

/// Pads (and aligns) a value to a 64-byte cache line so adjacent stripes
/// of an array never false-share.
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

/// Process-wide ordinal of the calling thread, assigned on first use.
/// Consecutive threads get consecutive ordinals, so up to `N` concurrent
/// threads spread perfectly over `N` stripes.
pub fn thread_ordinal() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ORDINAL: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|ordinal| *ordinal)
}

/// `N` thread-affine copies of an accumulator, merged at read time.
pub struct Striped<T> {
    stripes: Box<[CachePadded<OrderedMutex<T>>]>,
}

impl<T: Default> Striped<T> {
    /// Creates `stripes` default-initialized stripes sharing one lock
    /// class (`rank`, `name`) of the workspace hierarchy.
    pub fn new(rank: u32, name: &'static str, stripes: usize) -> Self {
        let stripes = stripes.max(1);
        Self {
            stripes: (0..stripes)
                .map(|_| CachePadded(OrderedMutex::new(rank, name, T::default())))
                .collect(),
        }
    }
}

impl<T> Striped<T> {
    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Runs `f` on the calling thread's stripe (the hot-path update).
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let index = thread_ordinal() % self.stripes.len();
        let mut guard = self.stripes[index].0.lock();
        f(&mut guard)
    }

    /// Folds over every stripe, locking one stripe at a time (the dump
    /// path). Stripes observed early may gain new updates before the
    /// fold finishes; each stripe's contents are internally consistent.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &T) -> A) -> A {
        let mut acc = init;
        for stripe in self.stripes.iter() {
            let guard = stripe.0.lock();
            acc = f(acc, &guard);
        }
        acc
    }

    /// Mutates every stripe, one at a time (reset paths).
    pub fn for_each_mut(&self, mut f: impl FnMut(&mut T)) {
        for stripe in self.stripes.iter() {
            let mut guard = stripe.0.lock();
            f(&mut guard);
        }
    }
}

impl<T> std::fmt::Debug for Striped<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Striped").field("stripes", &self.stripes.len()).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordered_lock::rank;
    use crate::StreamStats;
    use std::sync::Arc;

    fn striped_stats(n: usize) -> Striped<StreamStats> {
        Striped::new(rank::POOL_STATS, "test.stripe", n)
    }

    #[test]
    fn single_thread_uses_one_stripe() {
        let striped = striped_stats(4);
        for i in 0..10 {
            striped.with(|s| s.push(i as f64));
        }
        let non_empty = striped.fold(0, |acc, s| acc + usize::from(s.num() > 0));
        assert_eq!(non_empty, 1, "one thread must always land on its own stripe");
        let total = striped.fold(0u64, |acc, s| acc + s.num());
        assert_eq!(total, 10);
    }

    #[test]
    fn concurrent_threads_merge_to_exact_totals() {
        let striped = Arc::new(striped_stats(8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let striped = Arc::clone(&striped);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        striped.with(|s| s.push((t * 1000 + i) as f64));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let mut merged = StreamStats::new();
        striped.fold((), |(), s| merged.merge(s));
        assert_eq!(merged.num(), 4000);
        assert_eq!(merged.min(), 0.0);
        assert_eq!(merged.max(), 3999.0);
        // Sum of 0..4000 is exact in f64.
        assert_eq!(merged.sum(), (0..4000u64).sum::<u64>() as f64);
    }

    #[test]
    fn stripe_count_clamped_to_at_least_one() {
        let striped: Striped<u64> = Striped::new(rank::POOL_STATS, "test.clamp", 0);
        assert_eq!(striped.stripe_count(), 1);
        striped.with(|v| *v += 1);
        assert_eq!(striped.fold(0, |acc, v| acc + *v), 1);
    }

    #[test]
    fn for_each_mut_resets_every_stripe() {
        let striped = Arc::new(striped_stats(2));
        let s2 = Arc::clone(&striped);
        std::thread::spawn(move || s2.with(|s| s.push(1.0))).join().unwrap();
        striped.with(|s| s.push(2.0));
        striped.for_each_mut(|s| *s = StreamStats::new());
        assert_eq!(striped.fold(0u64, |acc, s| acc + s.num()), 0);
    }

    #[test]
    fn thread_ordinals_are_distinct() {
        let a = thread_ordinal();
        let b = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(a, b);
        // Stable within a thread.
        assert_eq!(a, thread_ordinal());
    }
}
