//! Seedable RNG wrapper for reproducible experiments.
//!
//! Fault-injection tests (SWIM, Raft, elasticity) and workload generators
//! must be replayable from a single `u64` seed. This module wraps a
//! `rand::rngs::StdRng` behind a small API so callers do not depend on the
//! `rand` version directly, and adds the derivation helpers we need
//! (per-component child seeds).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG derived from a `u64` seed.
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
    seed: u64,
}

impl SeededRng {
    /// Creates a generator from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { inner: StdRng::seed_from_u64(seed), seed }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator, e.g. one per SWIM member,
    /// so adding members does not perturb the streams of existing ones.
    pub fn child(&self, label: &str) -> SeededRng {
        let mut h = self.seed;
        for b in label.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        SeededRng::new(h)
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.random()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)` as u64. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.random_range(lo..hi)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.random_bool(p)
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.range(0, items.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Fills `buf` with deterministic pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }

    /// Samples an exponential distribution with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.random_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Samples a Zipf-like rank in `[0, n)` with exponent `s` via inverse
    /// transform over the truncated harmonic weights. Used by skewed KV
    /// workload generators.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        debug_assert!(n > 0);
        // Small n in our workloads; linear scan is fine and exact.
        let total: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut target = self.next_f64() * total;
        for k in 1..=n {
            target -= 1.0 / (k as f64).powf(s);
            if target <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn child_streams_are_independent_and_deterministic() {
        let root = SeededRng::new(7);
        let mut c1 = root.child("swim/0");
        let mut c1b = root.child("swim/0");
        let mut c2 = root.child("swim/1");
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SeededRng::new(3);
        for _ in 0..1000 {
            let v = r.range(5, 10);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SeededRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeededRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut r = SeededRng::new(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.zipf(10, 1.2)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > counts[9]);
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = SeededRng::new(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
    }
}
