//! Monotonic time helpers and precise short sleeps.
//!
//! The simulated network fabric models link latency and bandwidth by
//! delaying deliveries. OS `sleep` has ~50µs–1ms granularity depending on
//! the platform, so [`precise_sleep`] sleeps for the bulk of the interval
//! and spins for the remainder, giving the microsecond-level fidelity the
//! latency model needs without burning a core on long waits.

use std::time::{Duration, Instant};

/// Returns seconds elapsed since the first call in this process.
/// Monotonic; used to timestamp monitoring samples.
pub fn monotonic_seconds() -> f64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_secs_f64()
}

/// Sleeps for `duration` with sub-OS-timer precision. Intervals above
/// 200µs use a regular sleep for all but the final stretch; the remainder
/// is spin-waited.
pub fn precise_sleep(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let start = Instant::now();
    const SPIN_THRESHOLD: Duration = Duration::from_micros(200);
    if duration > SPIN_THRESHOLD {
        std::thread::sleep(duration - SPIN_THRESHOLD);
    }
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
}

/// A stopwatch for measuring elapsed wall time in seconds.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Seconds since start.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Duration since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Restarts the stopwatch, returning the elapsed seconds up to now.
    pub fn lap(&mut self) -> f64 {
        let e = self.elapsed_secs();
        self.start = Instant::now();
        e
    }
}

/// Polls `condition` every `interval` until it returns true or `timeout`
/// elapses. Returns whether the condition became true. Used pervasively in
/// integration tests ("wait until the view converges").
pub fn wait_until(timeout: Duration, interval: Duration, mut condition: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    loop {
        if condition() {
            return true;
        }
        if start.elapsed() >= timeout {
            return false;
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_seconds_increases() {
        let a = monotonic_seconds();
        std::thread::sleep(Duration::from_millis(2));
        let b = monotonic_seconds();
        assert!(b > a);
    }

    #[test]
    fn precise_sleep_is_accurate() {
        for micros in [50u64, 300, 1500] {
            let d = Duration::from_micros(micros);
            let t = Instant::now();
            precise_sleep(d);
            let elapsed = t.elapsed();
            assert!(elapsed >= d, "slept {elapsed:?} < {d:?}");
            // Upper bound is generous to tolerate CI scheduling noise.
            assert!(elapsed < d + Duration::from_millis(10), "slept {elapsed:?} for {d:?}");
        }
    }

    #[test]
    fn stopwatch_lap_resets() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        let first = sw.lap();
        assert!(first >= 0.005);
        assert!(sw.elapsed_secs() < first);
    }

    #[test]
    fn wait_until_true_and_timeout() {
        let mut n = 0;
        assert!(wait_until(Duration::from_secs(1), Duration::from_millis(1), || {
            n += 1;
            n >= 3
        }));
        assert!(!wait_until(Duration::from_millis(20), Duration::from_millis(1), || false));
    }
}
