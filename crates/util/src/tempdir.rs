//! Self-cleaning temporary directories.
//!
//! Simulated processes use a `TempDir` as their node-local storage device,
//! and the resilience tests use one as the shared "parallel file system"
//! checkpoint area. The directory is removed when the handle is dropped
//! unless [`TempDir::keep`] was called.

use std::path::{Path, PathBuf};

use crate::id::unique_token;

/// A uniquely named directory under the system temp dir (or a chosen
/// parent), deleted on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
    keep: bool,
}

impl TempDir {
    /// Creates `"<system-temp>/mochi-<label>-<token>"`.
    pub fn new(label: &str) -> std::io::Result<Self> {
        Self::new_in(std::env::temp_dir(), label)
    }

    /// Creates a unique directory under `parent`.
    pub fn new_in(parent: impl AsRef<Path>, label: &str) -> std::io::Result<Self> {
        let sanitized: String =
            label.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '-' }).collect();
        let path = parent.as_ref().join(format!("mochi-{}-{}", sanitized, unique_token()));
        std::fs::create_dir_all(&path)?;
        Ok(Self { path, keep: false })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Creates (if needed) and returns a subdirectory.
    pub fn subdir(&self, name: &str) -> std::io::Result<PathBuf> {
        let p = self.path.join(name);
        std::fs::create_dir_all(&p)?;
        Ok(p)
    }

    /// Disables deletion on drop (e.g. to inspect artifacts after a
    /// failing experiment).
    pub fn keep(&mut self) {
        self.keep = true;
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let path;
        {
            let d = TempDir::new("unit").unwrap();
            path = d.path().to_path_buf();
            assert!(path.is_dir());
            std::fs::write(path.join("f"), b"x").unwrap();
        }
        assert!(!path.exists());
    }

    #[test]
    fn keep_preserves_directory() {
        let path;
        {
            let mut d = TempDir::new("unit-keep").unwrap();
            d.keep();
            path = d.path().to_path_buf();
        }
        assert!(path.exists());
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn two_tempdirs_do_not_collide() {
        let a = TempDir::new("same").unwrap();
        let b = TempDir::new("same").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn subdir_created_under_root() {
        let d = TempDir::new("unit-sub").unwrap();
        let s = d.subdir("nested/deep").unwrap();
        assert!(s.is_dir());
        assert!(s.starts_with(d.path()));
    }

    #[test]
    fn label_is_sanitized() {
        let d = TempDir::new("we/ird na:me").unwrap();
        let name = d.path().file_name().unwrap().to_string_lossy().into_owned();
        assert!(!name.contains('/') && !name.contains(':') && !name.contains(' '));
    }
}
