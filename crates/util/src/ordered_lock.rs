//! Rank-ordered lock wrappers: the runtime companion to `mochi-lint`'s
//! static lock-order analysis.
//!
//! Every lock class in the workspace that participates in nesting is
//! assigned a rank from [`rank`]. A thread may only acquire a lock whose
//! rank is *strictly greater* than every lock it already holds; acquiring
//! downward (or sideways, which would alias two instances of the same
//! class) panics immediately in debug builds with both lock names. This
//! turns a would-be deadlock — which in a distributed test run shows up
//! as a silent hang minutes later — into a deterministic panic at the
//! exact acquisition site, on the first run that exercises the inverted
//! path.
//!
//! In release builds the wrappers compile down to plain `parking_lot`
//! locks: the held-lock bookkeeping is behind `cfg!(debug_assertions)`
//! and the optimizer removes it entirely.
//!
//! Locks that a condition variable must wait on (e.g. the argobots pool
//! `Notifier`) cannot use these wrappers, because `Condvar::wait` needs
//! the raw `parking_lot` guard; such locks must be leaves of the
//! hierarchy and are documented as rank `∞` in DESIGN.md.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The workspace lock hierarchy. Lower ranks are acquired first; a
/// thread holding rank `r` may only acquire ranks `> r`. Gaps of 10
/// leave room to interpose new locks without renumbering.
pub mod rank {
    /// `raft::NodeInner::core` — consensus state; outermost raft lock.
    pub const RAFT_CORE: u32 = 100;
    /// `raft::NodeInner::replicators` — set of peers with live replicator ULTs.
    pub const RAFT_REPLICATORS: u32 = 110;
    /// `raft::NodeInner::threads` — joinable background thread handles.
    pub const RAFT_THREADS: u32 = 120;
    /// `raft::NodeInner::rng` — election-timeout RNG; a leaf, never held
    /// across another raft acquisition.
    pub const RAFT_RNG: u32 = 130;
    /// `margo::Inner::meta` — instance metadata (addresses, config).
    pub const MARGO_META: u32 = 200;
    /// `margo::Inner::handlers` — RPC id → registration table.
    pub const MARGO_HANDLERS: u32 = 210;
    /// `margo::Inner::monitor` — installed monitoring backend.
    pub const MARGO_MONITOR: u32 = 220;
    /// `margo::Inner::threads` — progress-loop/sampler join handles.
    pub const MARGO_THREADS: u32 = 230;
    /// `margo::monitoring` statistics stripes (`Striped<State>`); a leaf —
    /// stripes share this rank and are never held together (see
    /// `mochi_util::striped`).
    pub const MARGO_STATS: u32 = 240;
    /// `margo::retry` jitter RNG — held only to draw one backoff sample.
    pub const MARGO_RETRY_RNG: u32 = 250;
    /// `margo::breaker` registry — per-(address, provider) breaker states;
    /// held only for state-machine transitions, never across the network.
    pub const MARGO_BREAKERS: u32 = 260;
    /// `margo` idempotency registry — rpc ids declared safe to retry.
    pub const MARGO_IDEMPOTENT: u32 = 270;
    /// `argobots::AbtRuntime::inner` — xstream/pool registry.
    pub const ABT_RUNTIME: u32 = 300;
    /// `argobots::Pool::queue` — the ready queue itself.
    pub const POOL_QUEUE: u32 = 310;
    /// `argobots::Pool::stats` — pool counter stripes; innermost.
    pub const POOL_STATS: u32 = 320;
    /// `yokan` memory-backend shard `i` uses rank `YOKAN_SHARD_BASE + i`.
    /// Multi-shard operations acquire shards in ascending stripe index,
    /// which is ascending rank, so whole-table scans are deadlock-free
    /// against each other and against single-shard writers.
    pub const YOKAN_SHARD_BASE: u32 = 400;
    /// Maximum shard count of the yokan memory backend; ranks
    /// `YOKAN_SHARD_BASE .. YOKAN_SHARD_BASE + YOKAN_SHARD_MAX` are
    /// reserved for its stripes.
    pub const YOKAN_SHARD_MAX: u32 = 64;
    /// `yokan::lsm` stripe-`i` writer lock (`LSM_WRITER_BASE + i`) — that
    /// stripe's WAL file, sealed-segment list, and flush/compaction
    /// scheduling; outermost of the per-stripe trio. Single-key mutations
    /// hold exactly one writer lock; batched mutations visit stripes one
    /// at a time, never holding two writer locks at once.
    pub const LSM_WRITER_BASE: u32 = 500;
    /// `yokan::lsm` stripe-`i` active (mutable) memtable
    /// (`LSM_ACTIVE_BASE + i`). Whole-table reads acquire every stripe's
    /// active lock in ascending stripe index — ascending rank — before
    /// touching any snapshot slot.
    pub const LSM_ACTIVE_BASE: u32 = 520;
    /// `yokan::lsm` stripe-`i` published snapshot slot (`Arc<Snapshot>`
    /// swap, `LSM_SNAPSHOT_BASE + i`); held only long enough to clone or
    /// replace the `Arc`. Every snapshot rank is above every active rank,
    /// so "all actives, then all snapshots" is a legal acquisition order.
    pub const LSM_SNAPSHOT_BASE: u32 = 540;
    /// Maximum stripe count of the yokan LSM backend; each of the three
    /// bases above reserves `LSM_STRIPE_MAX` consecutive ranks.
    pub const LSM_STRIPE_MAX: u32 = 16;
    /// `yokan::lsm` deferred background-maintenance error slot; a leaf,
    /// taken with no other LSM lock held.
    pub const LSM_BG_ERROR: u32 = 560;
}

thread_local! {
    /// Stack of (rank, name) for every ordered lock this thread holds.
    static HELD: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// Ranks currently held by this thread, outermost first. Exposed for
/// tests and debugging assertions.
pub fn held_ranks() -> Vec<u32> {
    if cfg!(debug_assertions) {
        HELD.with(|h| h.borrow().iter().map(|&(r, _)| r).collect())
    } else {
        Vec::new()
    }
}

#[inline]
fn check_acquire(acquiring_rank: u32, acquiring_name: &'static str) {
    if cfg!(debug_assertions) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(held_rank, held_name)) =
                held.iter().find(|&&(r, _)| r >= acquiring_rank)
            {
                panic!(
                    "lock-order violation: acquiring '{acquiring_name}' (rank \
                     {acquiring_rank}) while holding '{held_name}' (rank {held_rank}); \
                     locks must be acquired in strictly increasing rank order — \
                     see the hierarchy in mochi_util::ordered_lock::rank and DESIGN.md"
                );
            }
            held.push((acquiring_rank, acquiring_name));
        });
    }
}

#[inline]
fn note_release(rank: u32, name: &'static str) {
    if cfg!(debug_assertions) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(r, n)| r == rank && n == name) {
                held.remove(pos);
            }
        });
    }
}

/// A `parking_lot::Mutex` that enforces the workspace lock hierarchy in
/// debug builds.
pub struct OrderedMutex<T> {
    name: &'static str,
    rank: u32,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    pub const fn new(rank: u32, name: &'static str, value: T) -> Self {
        Self { name, rank, inner: Mutex::new(value) }
    }

    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        check_acquire(self.rank, self.name);
        OrderedMutexGuard { guard: self.inner.lock(), rank: self.rank, name: self.name }
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

pub struct OrderedMutexGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    rank: u32,
    name: &'static str,
}

impl<T> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        note_release(self.rank, self.name);
    }
}

/// A `parking_lot::RwLock` that enforces the workspace lock hierarchy in
/// debug builds. Both read and write acquisitions participate in the
/// order check: a same-thread re-read of an already-held lock is treated
/// as a violation too, because `parking_lot`'s writer-preferring fairness
/// can deadlock a recursive reader against a queued writer.
pub struct OrderedRwLock<T> {
    name: &'static str,
    rank: u32,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    pub const fn new(rank: u32, name: &'static str, value: T) -> Self {
        Self { name, rank, inner: RwLock::new(value) }
    }

    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        check_acquire(self.rank, self.name);
        OrderedReadGuard { guard: self.inner.read(), rank: self.rank, name: self.name }
    }

    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        check_acquire(self.rank, self.name);
        OrderedWriteGuard { guard: self.inner.write(), rank: self.rank, name: self.name }
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

pub struct OrderedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    rank: u32,
    name: &'static str,
}

impl<T> Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Drop for OrderedReadGuard<'_, T> {
    fn drop(&mut self) {
        note_release(self.rank, self.name);
    }
}

pub struct OrderedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    rank: u32,
    name: &'static str,
}

impl<T> Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for OrderedWriteGuard<'_, T> {
    fn drop(&mut self) {
        note_release(self.rank, self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increasing_rank_order_is_allowed() {
        let a = OrderedMutex::new(rank::RAFT_CORE, "core", 1u32);
        let b = OrderedMutex::new(rank::MARGO_META, "meta", 2u32);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
        if cfg!(debug_assertions) {
            assert_eq!(held_ranks(), vec![rank::RAFT_CORE, rank::MARGO_META]);
        }
        drop(gb);
        drop(ga);
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn release_out_of_acquisition_order_is_tracked() {
        let a = OrderedMutex::new(100, "a", ());
        let b = OrderedMutex::new(200, "b", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release the outer lock first
        drop(gb);
        assert!(held_ranks().is_empty());
        // After an unordered release, acquisition still works.
        let _ = a.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn rank_inversion_panics_with_both_names() {
        let outer = OrderedMutex::new(rank::POOL_STATS, "pool.stats", ());
        let inner = OrderedMutex::new(rank::RAFT_CORE, "raft.core", ());
        let g = outer.lock();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = inner.lock();
        }))
        .expect_err("inverted acquisition must panic");
        drop(g);
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("raft.core"), "{msg}");
        assert!(msg.contains("pool.stats"), "{msg}");
        assert!(held_ranks().is_empty(), "failed acquisition must not leak a held entry");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_rank_reacquisition_panics() {
        let a = OrderedMutex::new(rank::POOL_QUEUE, "queue-a", ());
        let b = OrderedMutex::new(rank::POOL_QUEUE, "queue-b", ());
        let g = a.lock();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = b.lock();
        }))
        .is_err());
        drop(g);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn rwlock_participates_in_ordering() {
        let table = OrderedRwLock::new(rank::MARGO_HANDLERS, "handlers", 0u32);
        let leaf = OrderedMutex::new(rank::MARGO_MONITOR, "monitor", ());
        {
            let r = table.read();
            let _m = leaf.lock(); // upward: fine
            assert_eq!(*r, 0);
        }
        let g = leaf.lock();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = table.write(); // downward: violation
        }))
        .is_err());
        drop(g);
        *table.write() += 1;
        assert_eq!(*table.read(), 1);
    }

    #[test]
    fn threads_have_independent_held_sets() {
        let a = std::sync::Arc::new(OrderedMutex::new(200, "shared", 0u64));
        let g = a.lock();
        let a2 = a.clone();
        let t = std::thread::spawn(move || {
            // Would panic if the held set leaked across threads (same rank).
            // This blocks until the main thread releases, which is fine.
            *a2.lock() += 1;
        });
        drop(g);
        t.join().unwrap();
        assert_eq!(*a.lock(), 1);
    }
}
