//! Human-readable byte sizes for reports and workload definitions.

/// Formats `bytes` using binary units (`KiB`, `MiB`, ...), e.g. `4.0 MiB`.
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 7] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"];
    if bytes < 1024 {
        return format!("{bytes} B");
    }
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.1} {}", UNITS[unit])
}

/// Parses sizes like `"4KiB"`, `"10 MiB"`, `"512"`, `"1GB"` (decimal units
/// accepted as their binary equivalents for convenience). Returns `None`
/// on malformed input or overflow.
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let split = s.find(|c: char| !(c.is_ascii_digit() || c == '.')).unwrap_or(s.len());
    if split == 0 {
        return None;
    }
    let (num, unit) = s.split_at(split);
    let value: f64 = num.parse().ok()?;
    let mult: u64 = match unit.trim().to_ascii_lowercase().as_str() {
        "b" | "" => 1,
        "k" | "kb" | "kib" => 1 << 10,
        "m" | "mb" | "mib" => 1 << 20,
        "g" | "gb" | "gib" => 1 << 30,
        "t" | "tb" | "tib" => 1 << 40,
        _ => return None,
    };
    let total = value * mult as f64;
    if !total.is_finite() || total < 0.0 || total > u64::MAX as f64 {
        return None;
    }
    Some(total as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_examples() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(1024), "1.0 KiB");
        assert_eq!(format_bytes(4 * 1024 * 1024), "4.0 MiB");
        assert_eq!(format_bytes(3 * 1024 * 1024 * 1024 / 2), "1.5 GiB");
    }

    #[test]
    fn parse_examples() {
        assert_eq!(parse_bytes("4KiB"), Some(4096));
        assert_eq!(parse_bytes("10 MiB"), Some(10 << 20));
        assert_eq!(parse_bytes("1GB"), Some(1 << 30));
        assert_eq!(parse_bytes("0.5k"), Some(512));
    }

    #[test]
    fn parse_plain_number_needs_no_unit() {
        assert_eq!(parse_bytes("123"), Some(123));
        assert_eq!(parse_bytes("123b"), Some(123));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_bytes("abc"), None);
        assert_eq!(parse_bytes("12xy"), None);
        assert_eq!(parse_bytes(""), None);
    }

    #[test]
    fn round_trip_through_format() {
        for v in [1u64, 1024, 4096, 1 << 20, 1 << 30] {
            let s = format_bytes(v);
            let parsed = parse_bytes(&s).unwrap();
            let err = (parsed as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.06, "{v} -> {s} -> {parsed}");
        }
    }
}
