//! Shared utilities for the `mochi-rs` workspace.
//!
//! This crate hosts the small, dependency-light building blocks that every
//! other crate in the workspace relies on:
//!
//! * [`id`] — process-unique 64-bit identifiers,
//! * [`checksum`] — CRC-32/CRC-64 used for RPC name hashing and data
//!   integrity verification during migration,
//! * [`stats`] — streaming statistics accumulators shaped like the
//!   `{num, avg, min, max, var}` blocks of the paper's Listing 1,
//! * [`histogram`] — a log-bucketed latency histogram with percentile
//!   queries for the benchmark harness,
//! * [`rng`] — a seedable RNG wrapper so that fault-injection experiments
//!   are reproducible,
//! * [`tempdir`] — self-cleaning unique temporary directories (stand-in for
//!   node-local storage and the "parallel file system" checkpoint area),
//! * [`time`] — monotonic clock helpers and precise short sleeps used by
//!   the simulated network model,
//! * [`bytesize`] — human-readable byte-size formatting for reports,
//! * [`ordered_lock`] — rank-checked mutex/rwlock wrappers enforcing the
//!   workspace lock hierarchy in debug builds (see DESIGN.md and the
//!   `mochi-lint` crate for the static half of the story),
//! * [`striped`] — thread-striped accumulators merged at dump time, the
//!   contention-free backing store for hot-path statistics.

pub mod bytesize;
pub mod checksum;
pub mod hash;
pub mod histogram;
pub mod id;
pub mod ordered_lock;
pub mod rng;
pub mod stats;
pub mod striped;
pub mod tempdir;
pub mod time;

pub use checksum::{crc32, crc64};
pub use hash::{fnv1a64, mix64};
pub use histogram::Histogram;
pub use id::unique_u64;
pub use ordered_lock::{OrderedMutex, OrderedRwLock};
pub use rng::SeededRng;
pub use stats::StreamStats;
pub use striped::Striped;
pub use tempdir::TempDir;
