//! Log-bucketed histogram with percentile queries.
//!
//! The benchmark harness reports latency distributions (p50/p95/p99) for
//! RPCs, reconfigurations, migrations, and failovers. A log-spaced bucket
//! layout gives ~4% relative error across nine decades while staying a
//! fixed, small size — the same trade-off HdrHistogram makes.

/// Number of buckets per octave (doubling of value).
const SUB_BUCKETS: usize = 16;
/// Number of octaves covered, from `MIN_VALUE` upward.
const OCTAVES: usize = 40;
/// Values below this (in the recorded unit) land in bucket 0.
const MIN_VALUE: f64 = 1e-9;

/// A fixed-size log-bucketed histogram of nonnegative `f64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; SUB_BUCKETS * OCTAVES + 2],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(value: f64) -> usize {
        if value <= MIN_VALUE {
            return 0;
        }
        let octave = (value / MIN_VALUE).log2();
        let idx = (octave * SUB_BUCKETS as f64) as usize + 1;
        idx.min(SUB_BUCKETS * OCTAVES + 1)
    }

    fn bucket_value(index: usize) -> f64 {
        if index == 0 {
            return MIN_VALUE;
        }
        // Midpoint (geometric) of the bucket's value range.
        MIN_VALUE * 2f64.powf((index as f64 - 0.5) / SUB_BUCKETS as f64)
    }

    /// Records one sample. Negative samples are clamped to zero.
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate value at quantile `q` in `[0, 1]` (0 when empty).
    /// Accuracy is bounded by the bucket width (~4.4% relative).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// One-line summary: `n=.. mean=.. p50=.. p95=.. p99=.. max=..`.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.3e} p50={:.3e} p95={:.3e} p99={:.3e} max={:.3e}",
            self.count,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(0.005);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0.005);
        assert_eq!(h.max(), 0.005);
        let p50 = h.quantile(0.5);
        assert!((p50 - 0.005).abs() / 0.005 < 0.05, "p50={p50}");
    }

    #[test]
    fn quantiles_are_monotone_and_accurate() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.record(i as f64 * 1e-6); // 1us .. 10ms uniform
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!((p50 - 5e-3).abs() / 5e-3 < 0.06, "p50={p50}");
        assert!((p95 - 9.5e-3).abs() / 9.5e-3 < 0.06, "p95={p95}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..100 {
            a.record(i as f64);
            b.record((i + 100) as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.max(), 199.0);
        assert_eq!(a.min(), 0.0);
    }

    #[test]
    fn extreme_values_clamped_not_lost() {
        let mut h = Histogram::new();
        h.record(-5.0); // clamped to 0
        h.record(1e30); // beyond top bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 1e30);
    }
}
