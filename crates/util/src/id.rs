//! Process-unique identifier generation.
//!
//! Identifiers combine a random per-process prefix with a monotonically
//! increasing counter, so two simulated "processes" in the same OS process
//! still mint distinct ids, and ids never repeat within a run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static COUNTER: AtomicU64 = AtomicU64::new(1);

fn process_salt() -> u64 {
    // Derived once from wall-clock nanoseconds and the OS process id; the
    // salt only needs to differ between OS processes that might share a
    // filesystem (e.g. temp dirs), not to be cryptographic.
    static SALT: AtomicU64 = AtomicU64::new(0);
    let mut salt = SALT.load(Ordering::Relaxed);
    if salt == 0 {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        salt = nanos ^ ((std::process::id() as u64) << 32) | 1;
        SALT.store(salt, Ordering::Relaxed);
    }
    salt
}

/// Returns a 64-bit identifier unique within this OS process and very
/// unlikely to collide across processes.
pub fn unique_u64() -> u64 {
    let c = COUNTER.fetch_add(1, Ordering::Relaxed);
    // SplitMix64 finalizer over (salt + counter) to spread bits.
    let mut z = process_salt().wrapping_add(c.wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Returns a short lowercase hex token (12 chars) for naming artifacts such
/// as temporary directories and migration transfers.
pub fn unique_token() -> String {
    format!("{:012x}", unique_u64() & 0xffff_ffff_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_unique() {
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(unique_u64()));
        }
    }

    #[test]
    fn ids_unique_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| (0..1000).map(|_| unique_u64()).collect::<Vec<_>>()))
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id));
            }
        }
    }

    #[test]
    fn token_is_12_hex_chars() {
        let t = unique_token();
        assert_eq!(t.len(), 12);
        assert!(t.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
