//! Non-cryptographic dispersal hashes.
//!
//! Yokan's striped backends route each key to a stripe with FNV-1a:
//! cheap, and well dispersed for the short keys KV workloads use. Both
//! the memory backend's shards and the LSM backend's stripes use this
//! same function, so a key's stripe is stable across backends of equal
//! stripe count.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// 64-bit FNV-1a over `data`.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in data {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// 64-bit finalizer (MurmurHash3's fmix64): full-avalanche mix of an
/// already-computed hash. FNV-1a disperses well *modulo small stripe
/// counts* but its raw 64-bit values cluster when inputs differ in few
/// bytes — fatal for consistent-hash ring points, whose balance depends
/// on uniform placement over the whole `u64` range. Ring construction
/// therefore passes `fnv1a64` through this mix; plain stripe routing
/// (`% shards`) doesn't need it.
pub fn mix64(mut hash: u64) -> u64 {
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^= hash >> 33;
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn disperses_sequential_keys() {
        let buckets: std::collections::BTreeSet<u64> =
            (0..256u32).map(|i| fnv1a64(format!("key-{i}").as_bytes()) % 16).collect();
        assert_eq!(buckets.len(), 16);
    }

    #[test]
    fn mix64_spreads_near_collisions_over_the_full_range() {
        // Hashes of inputs differing only in a trailing counter must
        // land all over the u64 range once mixed: every one of 16
        // top-nibble buckets is hit, which raw FNV values of these
        // inputs do not achieve.
        let mixed: std::collections::BTreeSet<u64> = (0..256u64)
            .map(|i| {
                let mut buf = b"member#".to_vec();
                buf.extend_from_slice(&i.to_le_bytes());
                mix64(fnv1a64(&buf)) >> 60
            })
            .collect();
        assert_eq!(mixed.len(), 16);
        // Deterministic (same input, same output across calls).
        assert_eq!(mix64(42), mix64(42));
    }
}
