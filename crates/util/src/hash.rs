//! Non-cryptographic dispersal hashes.
//!
//! Yokan's striped backends route each key to a stripe with FNV-1a:
//! cheap, and well dispersed for the short keys KV workloads use. Both
//! the memory backend's shards and the LSM backend's stripes use this
//! same function, so a key's stripe is stable across backends of equal
//! stripe count.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// 64-bit FNV-1a over `data`.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in data {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn disperses_sequential_keys() {
        let buckets: std::collections::BTreeSet<u64> =
            (0..256u32).map(|i| fnv1a64(format!("key-{i}").as_bytes()) % 16).collect();
        assert_eq!(buckets.len(), 16);
    }
}
