//! CRC-32 (IEEE 802.3) and CRC-64 (ECMA-182) checksums.
//!
//! Mercury derives RPC identifiers by hashing the RPC name; REMI verifies
//! migrated file contents with a checksum. Both use these table-driven
//! implementations.

/// Reflected polynomial for CRC-32 (IEEE).
const CRC32_POLY: u32 = 0xEDB8_8320;
/// Reflected polynomial for CRC-64 (ECMA-182, as used by XZ).
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ CRC32_POLY } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    })
}

fn crc64_table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u64; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u64;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ CRC64_POLY } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    })
}

/// Computes the CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Computes the CRC-64 (ECMA-182) of `data`.
pub fn crc64(data: &[u8]) -> u64 {
    let table = crc64_table();
    let mut crc = !0u64;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u64) & 0xff) as usize];
    }
    !crc
}

/// Incremental CRC-64 hasher for streaming data (chunked migrations).
#[derive(Debug, Clone)]
pub struct Crc64Hasher {
    state: u64,
}

impl Default for Crc64Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64Hasher {
    /// Creates a hasher in its initial state.
    pub fn new() -> Self {
        Self { state: !0u64 }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        let table = crc64_table();
        for &b in data {
            self.state = (self.state >> 8) ^ table[((self.state ^ b as u64) & 0xff) as usize];
        }
    }

    /// Finalizes and returns the checksum. The hasher may keep being fed,
    /// in which case later calls cover all bytes seen so far.
    pub fn finish(&self) -> u64 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc64_known_vectors() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc64Hasher::new();
        for chunk in data.chunks(733) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc64(&data));
    }

    #[test]
    fn different_data_different_crc() {
        assert_ne!(crc32(b"hello"), crc32(b"hellp"));
        assert_ne!(crc64(b"hello"), crc64(b"hellp"));
    }
}
