//! Streaming statistics accumulators.
//!
//! The Margo monitoring system of the paper (Listing 1) reports, for every
//! measured quantity, a block of the form `{num, avg, min, max, var, sum}`.
//! [`StreamStats`] computes exactly that, in one pass, using Welford's
//! online algorithm so the variance is numerically stable.

use serde::{Deserialize, Serialize};

/// One-pass accumulator of count/mean/min/max/variance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    num: u64,
    sum: f64,
    min: f64,
    max: f64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: f64,
}

impl Default for StreamStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { num: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, mean: 0.0, m2: 0.0 }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        self.num += 1;
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
        let delta = x - self.mean;
        self.mean += delta / self.num as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &StreamStats) {
        if other.num == 0 {
            return;
        }
        if self.num == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.num as f64;
        let n2 = other.num as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.num += other.num;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations recorded.
    pub fn num(&self) -> u64 {
        self.num
    }

    /// Sum of all observations (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn avg(&self) -> f64 {
        if self.num == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Minimum observation (0 when empty, mirroring Margo's JSON output).
    pub fn min(&self) -> f64 {
        if self.num == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.num == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn var(&self) -> f64 {
        if self.num < 2 {
            0.0
        } else {
            self.m2 / self.num as f64
        }
    }

    /// Renders the Listing-1-shaped JSON block
    /// `{"num": .., "avg": .., "min": .., "max": .., "var": .., "sum": ..}`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "num": self.num,
            "avg": self.avg(),
            "min": self.min(),
            "max": self.max(),
            "var": self.var(),
            "sum": self.sum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(values: &[f64]) -> (f64, f64) {
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = StreamStats::new();
        assert_eq!(s.num(), 0);
        assert_eq!(s.avg(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.var(), 0.0);
    }

    #[test]
    fn matches_naive_mean_and_variance() {
        let values = [3.0, 1.5, -2.25, 10.0, 0.0, 4.5, 4.5];
        let mut s = StreamStats::new();
        for &v in &values {
            s.push(v);
        }
        let (mean, var) = naive(&values);
        assert!((s.avg() - mean).abs() < 1e-12);
        assert!((s.var() - var).abs() < 1e-12);
        assert_eq!(s.min(), -2.25);
        assert_eq!(s.max(), 10.0);
        assert_eq!(s.num(), 7);
    }

    #[test]
    fn merge_equals_sequential() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0];
        let mut s1 = StreamStats::new();
        let mut s2 = StreamStats::new();
        let mut all = StreamStats::new();
        for &v in &a {
            s1.push(v);
            all.push(v);
        }
        for &v in &b {
            s2.push(v);
            all.push(v);
        }
        s1.merge(&s2);
        assert_eq!(s1.num(), all.num());
        assert!((s1.avg() - all.avg()).abs() < 1e-12);
        assert!((s1.var() - all.var()).abs() < 1e-9);
        assert_eq!(s1.min(), all.min());
        assert_eq!(s1.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = StreamStats::new();
        s.push(5.0);
        let before = s.clone();
        s.merge(&StreamStats::new());
        assert_eq!(s, before);

        let mut empty = StreamStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn json_shape_matches_listing1() {
        let mut s = StreamStats::new();
        s.push(0.083);
        let j = s.to_json();
        for key in ["num", "avg", "min", "max", "var", "sum"] {
            assert!(j.get(key).is_some(), "missing key {key}");
        }
    }
}
