//! Fixture-based end-to-end tests: inline source snippets run through the
//! full `analyze` pipeline, exactly as the CLI and the umbrella-crate
//! gate drive it.

use mochi_lint::allowlist::Allowlist;
use mochi_lint::source::SourceFile;

fn parse(files: &[(&str, &str)]) -> Vec<SourceFile> {
    files.iter().map(|(path, src)| SourceFile::parse(path, src)).collect()
}

#[test]
fn ab_ba_inversion_across_crates_fails_the_gate() {
    let files = parse(&[
        (
            "crates/margo/src/runtime.rs",
            "impl R { fn fwd(&self) { let m = self.meta.lock(); let h = self.handlers.write(); } }",
        ),
        (
            "crates/margo/src/rpc.rs",
            "impl C { fn dispatch(&self) { let h = self.handlers.read(); let m = self.meta.lock(); } }",
        ),
    ]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(!report.is_clean());
    assert_eq!(report.lock_cycles.len(), 1);
    let cycle = &report.lock_cycles[0];
    assert_eq!(cycle.locks, vec!["margo::handlers".to_string(), "margo::meta".to_string()]);
    assert!(report.render().contains("MOCHI001"));
}

#[test]
fn consistent_lock_order_passes() {
    let files = parse(&[
        (
            "crates/margo/src/runtime.rs",
            "impl R { fn a(&self) { let m = self.meta.lock(); let h = self.handlers.write(); } \
             fn b(&self) { let m = self.meta.lock(); let h = self.handlers.read(); } }",
        ),
    ]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.lock_edges.len(), 2);
    assert!(report.lock_cycles.is_empty());
}

#[test]
fn new_unwrap_in_rpc_handler_fails_until_allowlisted() {
    let files = parse(&[(
        "crates/yokan/src/provider.rs",
        "impl P { fn handle_put(&self, ctx: &RpcContext) { let v = ctx.args().unwrap(); } }",
    )]);

    // Without an allowance: violation.
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(!report.is_clean());
    assert_eq!(report.panic_violations.len(), 1);
    assert_eq!(report.panic_violations[0].function, "handle_put");

    // Frozen in the allowlist: clean, counted as frozen debt.
    let allowlist = Allowlist::from_json(
        r#"{"version": 1, "panic_paths": [
            {"file": "crates/yokan/src/provider.rs", "function": "handle_put", "kind": "unwrap", "count": 1}
        ]}"#,
    )
    .unwrap();
    let report = mochi_lint::analyze(&files, &allowlist);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.panic_allowed, 1);

    // A *second* unwrap in the same function exceeds the frozen count.
    let files = parse(&[(
        "crates/yokan/src/provider.rs",
        "impl P { fn handle_put(&self, ctx: &RpcContext) { let v = ctx.args().unwrap(); let w = ctx.more().unwrap(); } }",
    )]);
    let report = mochi_lint::analyze(&files, &allowlist);
    assert!(!report.is_clean());
    assert_eq!(report.panic_violations.len(), 1);
}

#[test]
fn panic_outside_provider_paths_is_not_flagged() {
    let files = parse(&[(
        "crates/mercury/src/fabric.rs",
        "fn internal() { let x = v.unwrap(); }",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn sleep_in_ult_closure_is_flagged_and_freezable() {
    let files = parse(&[(
        "crates/core/src/service.rs",
        "fn spawn_work(pool: &Pool) { pool.push(Ult::new(\"w\", move || { std::thread::sleep(TICK); })); }",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert_eq!(report.blocking_violations.len(), 1);
    assert_eq!(report.blocking_violations[0].kind, "sleep");

    let allowlist = Allowlist::from_json(
        r#"{"version": 1, "blocking": [
            {"file": "crates/core/src/service.rs", "function": "spawn_work", "kind": "sleep", "count": 1}
        ]}"#,
    )
    .unwrap();
    let report = mochi_lint::analyze(&files, &allowlist);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn recursive_relock_is_fatal_and_not_allowlistable() {
    let files = parse(&[(
        "crates/argobots/src/pool.rs",
        "impl Pool { fn broken(&self) { let a = self.stats.lock(); let b = self.stats.lock(); } }",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(!report.is_clean());
    assert_eq!(report.recursive_locks.len(), 1);
    assert!(report.render().contains("MOCHI002"));
}

#[test]
fn ignored_locks_suppress_instance_aliasing() {
    // Two different *instances* of the same per-object lock class held
    // together would alias into a self-edge; `ignored_locks` opts the
    // class out of the graph.
    let files = parse(&[(
        "crates/mercury/src/bulk.rs",
        "fn copy(src: &Region, dst: &Region) { let a = src.buffer.lock(); let mut b = dst.buffer.lock(); }",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(!report.is_clean());
    assert_eq!(report.lock_cycles.len(), 1);
    assert_eq!(report.lock_cycles[0].locks, vec!["mercury::buffer".to_string()]);

    let allowlist =
        Allowlist::from_json(r#"{"version": 1, "ignored_locks": ["buffer"]}"#).unwrap();
    let report = mochi_lint::analyze(&files, &allowlist);
    assert!(report.is_clean(), "{}", report.render());
}
