//! End-to-end fixtures for the interprocedural rules: each of
//! MOCHI012 (deadline loss), MOCHI013 (retry soundness), and MOCHI014
//! (relaxed atomics) gets at least one true-positive and one
//! true-negative case, driven through the full `analyze` pipeline the
//! CLI uses so registration discovery, call-graph construction, and
//! allowlist filtering are all in the loop.

use mochi_lint::allowlist::Allowlist;
use mochi_lint::source::SourceFile;

fn parse(files: &[(&str, &str)]) -> Vec<SourceFile> {
    files.iter().map(|(path, src)| SourceFile::parse(path, src)).collect()
}

// ---------------------------------------------------------------- MOCHI012

#[test]
fn deadline_loss_flags_handler_reachable_top_level_forward() {
    let files = parse(&[(
        "crates/omega/src/server.rs",
        "pub fn register_all(margo: &MargoRuntime) {\n\
             margo.register_typed(\"omega_echo\", 1, None, move |v: u64, _ctx| relay(margo2, v));\n\
         }\n\
         fn relay(margo: &MargoRuntime, v: u64) -> Result<u64, String> {\n\
             margo.forward(&dest(), \"omega_next\", 1, &v).map_err(|e| e.to_string())\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert_eq!(report.deadline_violations.len(), 1, "{:?}", report.deadline_violations);
    let d = &report.deadline_violations[0];
    assert_eq!(d.kind, "drop:forward");
    assert_eq!(d.function, "relay");
    assert_eq!(d.path, vec!["register_all".to_string(), "relay".to_string()]);
    assert!(report.render().contains("MOCHI012"));
}

#[test]
fn deadline_loss_flags_forward_timeout_even_in_the_registering_fn() {
    let files = parse(&[(
        "crates/omega/src/server.rs",
        "pub fn register_all(margo: &MargoRuntime) {\n\
             margo.register_typed(\"omega_echo\", 1, None, move |v: u64, _ctx| {\n\
                 margo2.forward_timeout(&dest(), \"omega_next\", 1, &v, t())\n\
             });\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert_eq!(report.deadline_violations.len(), 1);
    assert_eq!(report.deadline_violations[0].kind, "drop:forward_timeout");
}

#[test]
fn deadline_loss_accepts_rpc_context_forward_and_nested_context() {
    // Clean on both counts: an `RpcContext`-receiver `forward` threads
    // the nested context by construction, and an explicit-context form
    // whose argument is `…nested_context()` is the fix itself.
    let files = parse(&[(
        "crates/omega/src/server.rs",
        "pub fn register_all(margo: &MargoRuntime) {\n\
             margo.register_typed(\"omega_echo\", 1, None, move |v: u64, ctx| relay(ctx, v));\n\
         }\n\
         fn relay(ctx: &RpcContext, v: u64) -> Result<u64, String> {\n\
             ctx.forward(&dest(), \"omega_next\", 1, &v)?;\n\
             margo().forward_full(&dest(), \"omega_next\", 1, &v, ctx.nested_context(), t())\n\
                 .map_err(|e| e.to_string())\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.deadline_violations.is_empty(), "{:?}", report.deadline_violations);
}

#[test]
fn deadline_loss_ignores_forwards_not_reachable_from_a_handler() {
    // A TOP_LEVEL forward in plain client code is correct — only
    // handler-reachable forwards restart a budget that already exists.
    let files = parse(&[(
        "crates/omega/src/client.rs",
        "pub fn ping(margo: &MargoRuntime, v: u64) -> Result<u64, String> {\n\
             margo.forward(&dest(), \"omega_echo\", 1, &v).map_err(|e| e.to_string())\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.deadline_violations.is_empty(), "{:?}", report.deadline_violations);
}

// ---------------------------------------------------------------- MOCHI013

#[test]
fn retry_soundness_flags_remove_behind_declared_idempotent_handler() {
    let files = parse(&[(
        "crates/omega/src/provider.rs",
        "pub fn register_all(margo: &MargoRuntime, state: SharedState) {\n\
             margo.declare_idempotent(\"omega_put\");\n\
             margo.register_typed(\"omega_put\", 1, None, move |k: Vec<u8>, _ctx| {\n\
                 finish(&state, &k)\n\
             });\n\
         }\n\
         fn finish(state: &SharedState, k: &[u8]) -> Result<bool, String> {\n\
             state.sessions.lock().remove(k);\n\
             Ok(true)\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert_eq!(report.retry_violations.len(), 1, "{:?}", report.retry_violations);
    let r = &report.retry_violations[0];
    assert_eq!(r.rpc, "omega_put");
    assert_eq!(r.effect, "remove");
    assert_eq!(r.function, "finish");
    assert_eq!(r.kind, "remove:omega_put");
    assert!(report.render().contains("MOCHI013"));
}

#[test]
fn retry_soundness_accepts_keyed_overwrites() {
    // `insert` is last-writer-wins: replaying it converges, so the
    // declared idempotency holds.
    let files = parse(&[(
        "crates/omega/src/provider.rs",
        "pub fn register_all(margo: &MargoRuntime, state: SharedState) {\n\
             margo.declare_idempotent(\"omega_put\");\n\
             margo.register_typed(\"omega_put\", 1, None, move |k: Vec<u8>, _ctx| {\n\
                 state.sessions.lock().insert(k, ());\n\
                 Ok(true)\n\
             });\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.retry_violations.is_empty(), "{:?}", report.retry_violations);
}

#[test]
fn retry_soundness_ignores_effects_behind_undeclared_rpcs() {
    // The same `remove`, but the RPC was never declared idempotent: the
    // runtime will not retry it, so the effect is fine.
    let files = parse(&[(
        "crates/omega/src/provider.rs",
        "pub fn register_all(margo: &MargoRuntime, state: SharedState) {\n\
             margo.register_typed(\"omega_put\", 1, None, move |k: Vec<u8>, _ctx| {\n\
                 state.sessions.lock().remove(&k);\n\
                 Ok(true)\n\
             });\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.retry_violations.is_empty(), "{:?}", report.retry_violations);
}

#[test]
fn retry_soundness_resolves_the_const_array_loop_form() {
    // `for name in IDEMPOTENT_RPCS { margo.declare_idempotent(name) }` —
    // the declaration form every service client actually uses.
    let files = parse(&[(
        "crates/omega/src/provider.rs",
        "const IDEMPOTENT_RPCS: &[&str] = &[\"omega_put\"];\n\
         pub fn register_all(margo: &MargoRuntime, state: SharedState) {\n\
             for name in IDEMPOTENT_RPCS {\n\
                 margo.declare_idempotent(name);\n\
             }\n\
             margo.register_typed(\"omega_put\", 1, None, move |k: Vec<u8>, _ctx| {\n\
                 state.counts.lock().remove(&k);\n\
                 Ok(true)\n\
             });\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert_eq!(report.retry_violations.len(), 1, "{:?}", report.retry_violations);
    assert_eq!(report.retry_violations[0].rpc, "omega_put");
}

// ---------------------------------------------------------------- MOCHI014

#[test]
fn relaxed_atomics_flags_decision_load_with_foreign_writer() {
    let files = parse(&[(
        "crates/omega/src/breaker.rs",
        "pub struct Breaker { closed: AtomicBool }\n\
         impl Breaker {\n\
             pub fn admit(&self) -> bool {\n\
                 if self.closed.load(Ordering::Relaxed) {\n\
                     return false;\n\
                 }\n\
                 true\n\
             }\n\
             pub fn trip(&self) {\n\
                 self.closed.store(true, Ordering::SeqCst);\n\
             }\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert_eq!(report.atomics_violations.len(), 1, "{:?}", report.atomics_violations);
    let a = &report.atomics_violations[0];
    assert_eq!(a.kind, "load:closed");
    assert_eq!(a.function, "admit");
    assert!(report.render().contains("MOCHI014"));
}

#[test]
fn relaxed_atomics_flags_relaxed_publish_with_foreign_decider() {
    let files = parse(&[(
        "crates/omega/src/breaker.rs",
        "pub struct Breaker { closed: AtomicBool }\n\
         impl Breaker {\n\
             pub fn admit(&self) -> bool {\n\
                 while self.closed.load(Ordering::Acquire) {\n\
                     return false;\n\
                 }\n\
                 true\n\
             }\n\
             pub fn trip(&self) {\n\
                 self.closed.store(true, Ordering::Relaxed);\n\
             }\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert_eq!(report.atomics_violations.len(), 1, "{:?}", report.atomics_violations);
    assert_eq!(report.atomics_violations[0].kind, "store:closed");
    assert_eq!(report.atomics_violations[0].function, "trip");
}

#[test]
fn relaxed_atomics_accepts_the_counter_idiom() {
    // Monotonic stats: relaxed RMW bumps, snapshot loads outside any
    // condition. This is PR 4's striped-stats shape and must stay clean.
    let files = parse(&[(
        "crates/omega/src/stats.rs",
        "pub struct Stats { hits: AtomicU64 }\n\
         impl Stats {\n\
             pub fn bump(&self) {\n\
                 self.hits.fetch_add(1, Ordering::Relaxed);\n\
             }\n\
             pub fn snapshot(&self) -> u64 {\n\
                 let n = self.hits.load(Ordering::Relaxed);\n\
                 n\n\
             }\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.atomics_violations.is_empty(), "{:?}", report.atomics_violations);
}

#[test]
fn relaxed_atomics_accepts_acquire_release_pairing() {
    let files = parse(&[(
        "crates/omega/src/breaker.rs",
        "pub struct Breaker { closed: AtomicBool }\n\
         impl Breaker {\n\
             pub fn admit(&self) -> bool {\n\
                 if self.closed.load(Ordering::Acquire) {\n\
                     return false;\n\
                 }\n\
                 true\n\
             }\n\
             pub fn trip(&self) {\n\
                 self.closed.store(true, Ordering::Release);\n\
             }\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.atomics_violations.is_empty(), "{:?}", report.atomics_violations);
}

// ------------------------------------------------- allowlist interaction

#[test]
fn interproc_findings_respect_the_allowlist_and_staleness() {
    let files = parse(&[(
        "crates/omega/src/provider.rs",
        "pub fn register_all(margo: &MargoRuntime, state: SharedState) {\n\
             margo.declare_idempotent(\"omega_put\");\n\
             margo.register_typed(\"omega_put\", 1, None, move |k: Vec<u8>, _ctx| {\n\
                 state.sessions.lock().remove(&k);\n\
                 Ok(true)\n\
             });\n\
         }\n",
    )]);
    let json = r#"{
        "version": 1,
        "retry_soundness": [
            {"file": "crates/omega/src/provider.rs", "function": "register_all",
             "kind": "remove:omega_put", "count": 1,
             "reason": "replay-guarded"}
        ]
    }"#;
    let allowlist = Allowlist::from_json(json).expect("parse allowlist");
    let report = mochi_lint::analyze(&files, &allowlist);
    assert!(report.retry_violations.is_empty(), "{:?}", report.retry_violations);
    assert_eq!(report.retry_allowed, 1);
    assert!(report.stale_entries.is_empty());

    // The same allowlist against clean sources is stale debt: MOCHI010.
    let clean = parse(&[("crates/omega/src/provider.rs", "pub fn register_all() {}\n")]);
    let report = mochi_lint::analyze(&clean, &allowlist);
    assert_eq!(report.stale_entries.len(), 1);
    assert!(report.render().contains("MOCHI010"));
}
