//! Contract-checker end-to-end tests over the on-disk fixture mini-crate
//! in `tests/fixtures/contracts/`: a provider, a client, and a shared
//! `rpc_names` module with deliberate register/forward mismatches of
//! every class the checker knows (MOCHI006/007/008).
//!
//! The fixture lives under a `fixtures/` directory precisely so the real
//! workspace walk (`source::collect_rs_files`) never picks it up.

use std::path::Path;

use mochi_lint::allowlist::Allowlist;
use mochi_lint::contracts::Role;
use mochi_lint::report;
use mochi_lint::source::SourceFile;

/// Loads the fixture mini-crate as if it were `crates/mini` in a
/// workspace.
fn fixture_files() -> Vec<SourceFile> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/contracts");
    ["rpc_names.rs", "provider.rs", "client.rs"]
        .iter()
        .map(|name| {
            let text = std::fs::read_to_string(dir.join(name))
                .unwrap_or_else(|e| panic!("reading fixture {name}: {e}"));
            SourceFile::parse(&format!("crates/mini/src/{name}"), &text)
        })
        .collect()
}

#[test]
fn contract_table_covers_every_register_site() {
    let report = mochi_lint::analyze(&fixture_files(), &Allowlist::default());
    let registers: Vec<_> = report
        .contract_sites
        .iter()
        .filter(|s| s.role == Role::Register)
        .collect();
    assert_eq!(registers.len(), 3, "{registers:?}");
    // Every registration resolves its name through the rpc_names consts.
    for site in &registers {
        assert!(site.name.is_some(), "unresolved registration: {site:?}");
    }
    let names = report.rpc_names();
    let counts = |n: &str| {
        names
            .iter()
            .find(|(name, _, _)| name == n)
            .map(|(_, r, c)| (*r, *c))
            .unwrap_or_else(|| panic!("{n} missing from contract table"))
    };
    assert_eq!(counts("mini_put"), (1, 1));
    assert_eq!(counts("mini_get"), (1, 1));
    assert_eq!(counts("mini_orphan"), (1, 0));
    assert_eq!(counts("mini_missing"), (0, 1));
}

#[test]
fn unregistered_call_is_mochi006() {
    let report = mochi_lint::analyze(&fixture_files(), &Allowlist::default());
    let findings = report::findings(&report);
    let f = findings
        .iter()
        .find(|f| f.rule == "MOCHI006")
        .expect("MOCHI006 finding");
    assert!(f.message.contains("mini_missing"), "{}", f.message);
    assert_eq!(f.file, "crates/mini/src/client.rs");
    assert_eq!(f.function, "missing");
}

#[test]
fn dead_surface_is_mochi007() {
    let report = mochi_lint::analyze(&fixture_files(), &Allowlist::default());
    let findings = report::findings(&report);
    let f = findings
        .iter()
        .find(|f| f.rule == "MOCHI007")
        .expect("MOCHI007 finding");
    assert!(f.message.contains("mini_orphan"), "{}", f.message);
    assert_eq!(f.file, "crates/mini/src/provider.rs");
}

#[test]
fn both_type_mismatch_directions_are_mochi008() {
    let report = mochi_lint::analyze(&fixture_files(), &Allowlist::default());
    let kinds: Vec<_> = report.contract_violations.iter().map(|c| c.kind.as_str()).collect();
    assert!(kinds.contains(&"arg-mismatch:mini_put"), "{kinds:?}");
    assert!(kinds.contains(&"reply-mismatch:mini_put"), "{kinds:?}");
    // The clean RPC produces nothing.
    assert!(!kinds.iter().any(|k| k.ends_with(":mini_get")), "{kinds:?}");
    let findings = report::findings(&report);
    assert_eq!(findings.iter().filter(|f| f.rule == "MOCHI008").count(), 2);
}

#[test]
fn fixture_findings_render_in_all_formats() {
    let report = mochi_lint::analyze(&fixture_files(), &Allowlist::default());
    let text = report::render_text(&report);
    for rule in ["MOCHI006", "MOCHI007", "MOCHI008"] {
        assert!(text.contains(rule), "text output missing {rule}:\n{text}");
    }
    let json = report::render_json(&report);
    assert!(json.contains("\"rule\": \"MOCHI006\""), "{json}");
    let sarif = report::render_sarif(&report);
    assert!(sarif.contains("\"id\": \"MOCHI008\""), "{sarif}");
}

#[test]
fn contract_findings_can_be_frozen_in_the_allowlist() {
    let allowlist = Allowlist::from_json(
        r#"{"version": 1, "contracts": [
            {"file": "crates/mini/src/client.rs", "function": "missing", "kind": "unregistered:mini_missing", "count": 1},
            {"file": "crates/mini/src/client.rs", "function": "put", "kind": "arg-mismatch:mini_put", "count": 1},
            {"file": "crates/mini/src/client.rs", "function": "put", "kind": "reply-mismatch:mini_put", "count": 1},
            {"file": "crates/mini/src/provider.rs", "function": "register_rpcs", "kind": "dead:mini_orphan", "count": 1}
        ]}"#,
    )
    .unwrap();
    let report = mochi_lint::analyze(&fixture_files(), &allowlist);
    assert!(report.is_clean(), "{}", report::render_text(&report));
    assert_eq!(report.contract_allowed, 4);
    assert!(report.stale_entries.is_empty());
}
