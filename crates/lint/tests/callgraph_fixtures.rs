//! Call-graph tests over the on-disk fixture mini-workspace in
//! `tests/fixtures/callgraph/`: two crates exercising every edge kind
//! (direct same-file, direct cross-crate, typed method, trait fan-out,
//! unique-name fallback), the spawn fire-and-forget boundary, the
//! handler-registration entry point, and the resolution counters the
//! report surfaces — pinned exactly so resolution regressions fail
//! loudly instead of silently shrinking the graph.

use std::path::Path;

use mochi_lint::callgraph::{CallGraph, EdgeKind};
use mochi_lint::contracts::{ConstTable, Role};
use mochi_lint::source::SourceFile;

/// Loads the fixture pair as `crates/alpha` and `crates/beta`.
fn fixture_files() -> Vec<SourceFile> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/callgraph");
    [("client.rs", "crates/alpha/src/client.rs"), ("provider.rs", "crates/beta/src/provider.rs")]
        .iter()
        .map(|(name, rel)| {
            let text = std::fs::read_to_string(dir.join(name))
                .unwrap_or_else(|e| panic!("reading fixture {name}: {e}"));
            SourceFile::parse(rel, &text)
        })
        .collect()
}

/// The single node named `function`, by workspace-wide lookup.
fn node(graph: &CallGraph, file: &str, function: &str) -> usize {
    let ids = graph.nodes_named(file, function);
    assert_eq!(ids.len(), 1, "expected exactly one node {file}::{function}, got {ids:?}");
    ids[0]
}

fn edge_kinds(graph: &CallGraph, from: usize, to: usize) -> Vec<EdgeKind> {
    graph.edges[from].iter().filter(|e| e.to == to).map(|e| e.kind).collect()
}

#[test]
fn direct_edges_resolve_same_file_and_cross_crate() {
    let files = fixture_files();
    let graph = CallGraph::build(&files);
    let tally = node(&graph, "crates/beta/src/provider.rs", "tally_totals");
    let summarize = node(&graph, "crates/beta/src/provider.rs", "summarize");
    assert_eq!(edge_kinds(&graph, tally, summarize), vec![EdgeKind::Direct]);

    // Cross-crate: alpha's `totals` calls beta's `tally_totals`.
    let totals = node(&graph, "crates/alpha/src/client.rs", "totals");
    assert_eq!(edge_kinds(&graph, totals, tally), vec![EdgeKind::Direct]);
}

#[test]
fn method_edge_types_receiver_through_field_index() {
    let files = fixture_files();
    let graph = CallGraph::build(&files);
    let save = node(&graph, "crates/alpha/src/client.rs", "save");
    // `self.store` is a `MemStore`, so only that impl's `persist` is a
    // target — never `DiskStore`'s.
    let persists = graph.nodes_named("crates/alpha/src/client.rs", "persist");
    assert_eq!(persists.len(), 2, "two `impl Store for …` methods expected");
    let targets: Vec<usize> = graph.edges[save].iter().map(|e| e.to).collect();
    assert_eq!(targets.len(), 1, "typed method call must resolve to one impl");
    assert_eq!(graph.edges[save][0].kind, EdgeKind::Method);
    assert!(persists.contains(&targets[0]));
}

#[test]
fn trait_dispatch_fans_out_to_every_impl() {
    let files = fixture_files();
    let graph = CallGraph::build(&files);
    let save_any = node(&graph, "crates/alpha/src/client.rs", "save_any");
    let persists = graph.nodes_named("crates/alpha/src/client.rs", "persist");
    let mut targets: Vec<usize> =
        graph.edges[save_any].iter().map(|e| e.to).collect();
    targets.sort_unstable();
    let mut expected = persists.clone();
    expected.sort_unstable();
    assert_eq!(targets, expected, "dyn Store call must reach both impls");
    assert!(graph.edges[save_any].iter().all(|e| e.kind == EdgeKind::Trait));
}

#[test]
fn spawn_is_a_fire_and_forget_boundary() {
    let files = fixture_files();
    let graph = CallGraph::build(&files);
    let background = node(&graph, "crates/alpha/src/client.rs", "background");
    assert!(
        graph.edges[background].is_empty(),
        "calls inside a spawn argument span must produce no edges"
    );
    // The site is still recorded (and resolved) for the analyses that
    // want to see it — just marked detached.
    let spawned = graph.calls[background]
        .iter()
        .find(|c| c.callee == "tally_totals")
        .expect("spawned call site recorded");
    assert!(spawned.in_spawn);
    assert!(!spawned.targets.is_empty());
}

#[test]
fn unique_name_fallback_applies_and_is_counted() {
    let files = fixture_files();
    let graph = CallGraph::build(&files);
    let refresh = node(&graph, "crates/alpha/src/client.rs", "refresh");
    let revalidate = node(&graph, "crates/beta/src/provider.rs", "revalidate");
    assert_eq!(edge_kinds(&graph, refresh, revalidate), vec![EdgeKind::Fallback]);
    assert_eq!(graph.stats().fallback_edges, 1);
}

#[test]
fn ambiguous_untyped_method_counts_as_unresolved() {
    let files = fixture_files();
    let graph = CallGraph::build(&files);
    let flush_any = node(&graph, "crates/alpha/src/client.rs", "flush_any");
    assert!(
        graph.edges[flush_any].is_empty(),
        "two `persist` candidates and no receiver type: no edge"
    );
    assert_eq!(graph.stats().unresolved_calls, 1);
}

#[test]
fn handler_registration_seeds_reachability() {
    let files = fixture_files();
    let graph = CallGraph::build(&files);
    let consts = ConstTable::build(&files);
    let mut register_sites = Vec::new();
    for file in &files {
        register_sites.extend(
            mochi_lint::contracts::sites(file, &consts)
                .into_iter()
                .filter(|s| s.role == Role::Register),
        );
    }
    assert_eq!(register_sites.len(), 1, "one register_typed site expected");
    let site = &register_sites[0];
    assert_eq!(site.name.as_deref(), Some("mini_save"));

    // The handler closure lives inside `register`, so a walk from the
    // registering function reaches the handler body's callees.
    let entries = graph.nodes_named(&site.file, &site.function);
    let parents = graph.reachable(&entries, |_| true);
    let apply_save = node(&graph, "crates/beta/src/provider.rs", "apply_save");
    let record_write = node(&graph, "crates/beta/src/provider.rs", "record_write");
    assert!(parents.contains_key(&apply_save), "handler callee reachable from register");
    assert!(parents.contains_key(&record_write), "transitive callee reachable too");
    assert_eq!(
        graph.path_names(&parents, record_write),
        vec!["register".to_string(), "apply_save".to_string(), "record_write".to_string()]
    );
}

#[test]
fn resolution_counters_are_pinned() {
    let files = fixture_files();
    let graph = CallGraph::build(&files);
    let stats = graph.stats();
    // 14 function bodies: 8 in alpha (2 persist impls + 6 Client
    // methods), 6 in beta. Trait signatures declare no body and thus no
    // node.
    assert_eq!(stats.nodes, 14);
    // Resolved: summarize, apply_save, record_write (beta) +
    // record_write, save's persist, save_any's persist, tally_totals,
    // the spawned tally_totals, revalidate (alpha).
    assert_eq!(stats.resolved_calls, 9);
    assert_eq!(stats.unresolved_calls, 1);
    assert_eq!(stats.fallback_edges, 1);
    // Edges: tally→summarize, register→apply_save, apply_save→
    // record_write, persist→record_write, totals→tally, save→persist,
    // save_any→persist×2, refresh→revalidate. The spawned call adds
    // none.
    assert_eq!(stats.edges, 9);
}
