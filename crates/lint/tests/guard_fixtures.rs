//! End-to-end fixtures for the guard/dataflow rules: each of MOCHI015
//! (RPC under lock), MOCHI016 (swallowed background error), and
//! MOCHI017 (unbounded queue growth) gets at least one true-positive
//! and one true-negative case, driven through the full `analyze`
//! pipeline the CLI uses. The last section pins the baseline-diff
//! fingerprints: a 50-line shift of the file must not produce "new"
//! findings, while a genuinely new finding must.

use mochi_lint::allowlist::Allowlist;
use mochi_lint::report;
use mochi_lint::source::SourceFile;

fn parse(files: &[(&str, &str)]) -> Vec<SourceFile> {
    files.iter().map(|(path, src)| SourceFile::parse(path, src)).collect()
}

// ---------------------------------------------------------------- MOCHI015

#[test]
fn rpc_under_lock_flags_guard_across_direct_forwarding_call() {
    let files = parse(&[(
        "crates/yokan/src/provider.rs",
        "struct Prov { state: OrderedMutex<Inner> }\n\
         impl Prov {\n\
             fn handle(&self, v: u64) { let g = self.state.lock(); self.relay(v); }\n\
             fn relay(&self, v: u64) { self.margo.forward(&dest(), \"yokan_next\", 1, &v).ok(); }\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert_eq!(report.rpc_lock_violations.len(), 1, "{:?}", report.rpc_lock_violations);
    let r = &report.rpc_lock_violations[0];
    assert_eq!(r.function, "handle");
    assert_eq!(r.lock, "yokan::state");
    assert_eq!(r.kind, "relay:yokan::state");
    assert!(report.render().contains("MOCHI015"));
}

#[test]
fn rpc_under_lock_follows_trait_dispatch_to_the_forward() {
    // The guard-holding caller only sees `dyn Sink`; the forward lives
    // in one of the impls. The trait edge must carry reachability.
    let files = parse(&[(
        "crates/yokan/src/provider.rs",
        "trait Sink { fn emit(&self, v: u64); }\n\
         struct Remote { margo: MargoRuntime }\n\
         impl Sink for Remote {\n\
             fn emit(&self, v: u64) { self.margo.forward(&dest(), \"yokan_next\", 1, &v).ok(); }\n\
         }\n\
         struct Local;\n\
         impl Sink for Local { fn emit(&self, _v: u64) {} }\n\
         struct Prov { state: OrderedMutex<Inner>, sink: Arc<dyn Sink> }\n\
         impl Prov {\n\
             fn handle(&self, v: u64) { let g = self.state.lock(); self.sink.emit(v); }\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert_eq!(report.rpc_lock_violations.len(), 1, "{:?}", report.rpc_lock_violations);
    let r = &report.rpc_lock_violations[0];
    assert_eq!(r.function, "handle");
    assert_eq!(r.kind, "emit:yokan::state");
    assert!(r.path.last().unwrap().contains("forward"), "{:?}", r.path);
}

#[test]
fn rpc_under_lock_accepts_drop_before_the_call() {
    // The workspace idiom: compute under the lock, drop the guard, then
    // RPC. Must stay clean even when the drop is inside a branch.
    let files = parse(&[(
        "crates/yokan/src/provider.rs",
        "struct Prov { state: OrderedMutex<Inner> }\n\
         impl Prov {\n\
             fn handle(&self, v: u64) {\n\
                 let g = self.state.lock();\n\
                 match v { 0 => { drop(g); } _ => { drop(g); } }\n\
                 self.relay(v);\n\
             }\n\
             fn relay(&self, v: u64) { self.margo.forward(&dest(), \"yokan_next\", 1, &v).ok(); }\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.rpc_lock_violations.is_empty(), "{:?}", report.rpc_lock_violations);
}

#[test]
fn rpc_under_lock_ignores_plain_mutexes() {
    // Only the rank-ordered lock hierarchy is in scope; a parking_lot
    // Mutex on a leaf cache does not carry the progress-engine risk the
    // rule models (MOCHI009 still covers direct forwards under it).
    let files = parse(&[(
        "crates/yokan/src/provider.rs",
        "struct Prov { state: Mutex<Inner> }\n\
         impl Prov {\n\
             fn handle(&self, v: u64) { let g = self.state.lock(); self.relay(v); }\n\
             fn relay(&self, v: u64) { self.margo.forward(&dest(), \"yokan_next\", 1, &v).ok(); }\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.rpc_lock_violations.is_empty(), "{:?}", report.rpc_lock_violations);
}

// ---------------------------------------------------------------- MOCHI016

#[test]
fn swallowed_bg_error_flags_let_underscore_in_spawn() {
    let files = parse(&[(
        "crates/yokan/src/writer.rs",
        "impl Writer {\n\
             fn kick(&self) {\n\
                 let tx = self.tx.clone();\n\
                 std::thread::spawn(move || { let _ = tx.send(compact()); });\n\
             }\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert_eq!(report.bg_error_violations.len(), 1, "{:?}", report.bg_error_violations);
    let b = &report.bg_error_violations[0];
    assert_eq!(b.kind, "let_underscore:send");
    assert_eq!(b.function, "kick");
    assert!(report.render().contains("MOCHI016"));
}

#[test]
fn swallowed_bg_error_accepts_parked_errors() {
    // The blessed pattern: the spawn body routes its failure somewhere a
    // supervisor can observe it (the BackgroundExecutor's parked-error
    // sink) instead of discarding it.
    let files = parse(&[(
        "crates/yokan/src/writer.rs",
        "impl Writer {\n\
             fn persist(&self) -> Result<(), Error> { Ok(()) }\n\
             fn kick(&self) {\n\
                 let me = self.clone();\n\
                 let parked = self.errors.clone();\n\
                 std::thread::spawn(move || {\n\
                     if let Err(e) = me.persist() { parked.lock().push(e); }\n\
                 });\n\
             }\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.bg_error_violations.is_empty(), "{:?}", report.bg_error_violations);
}

#[test]
fn swallowed_bg_error_flags_dropped_bare_result_statement() {
    let files = parse(&[(
        "crates/yokan/src/writer.rs",
        "impl Writer {\n\
             fn persist(&self) -> Result<(), Error> { Ok(()) }\n\
             fn kick(&self) {\n\
                 let me = self.clone();\n\
                 std::thread::spawn(move || { me.persist(); });\n\
             }\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert_eq!(report.bg_error_violations.len(), 1, "{:?}", report.bg_error_violations);
    assert_eq!(report.bg_error_violations[0].kind, "unused_result:persist");
}

#[test]
fn swallowed_bg_error_ignores_foreground_discards() {
    // `let _ =` outside a spawn span is the caller's own (synchronous)
    // choice — visible in review, out of this rule's scope.
    let files = parse(&[(
        "crates/yokan/src/writer.rs",
        "impl Writer {\n\
             fn kick(&self) { let _ = self.tx.send(compact()); }\n\
         }\n",
    )]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.bg_error_violations.is_empty(), "{:?}", report.bg_error_violations);
}

// ---------------------------------------------------------------- MOCHI017

const QUEUE_PREAMBLE: &str = "fn register_all(margo: &MargoRuntime) {\n\
     margo.register_typed(\"yokan_put\", 1, None, move |v: u64, _ctx| { worker(v); Ok(0) });\n\
 }\n";

#[test]
fn queue_growth_flags_unbounded_push_loop() {
    let src = format!(
        "{QUEUE_PREAMBLE}\
         fn worker(v: u64) {{ for item in expand(v) {{ STATE.pending.lock().push(item); }} }}\n"
    );
    let files = parse(&[("crates/yokan/src/provider.rs", &src)]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert_eq!(report.queue_violations.len(), 1, "{:?}", report.queue_violations);
    let q = &report.queue_violations[0];
    assert_eq!(q.kind, "grow:push:pending");
    assert_eq!(q.function, "worker");
    assert!(report.render().contains("MOCHI017"));
}

#[test]
fn queue_growth_accepts_bounded_push_loop() {
    // The same loop gated on a capacity check is backpressure, not
    // growth.
    let src = format!(
        "{QUEUE_PREAMBLE}\
         fn worker(v: u64) {{ for item in expand(v) {{ if STATE.pending.lock().len() < CAP {{ STATE.pending.lock().push(item); }} }} }}\n"
    );
    let files = parse(&[("crates/yokan/src/provider.rs", &src)]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.queue_violations.is_empty(), "{:?}", report.queue_violations);
}

#[test]
fn queue_growth_accepts_drained_queue_and_local_accumulators() {
    let src = format!(
        "{QUEUE_PREAMBLE}\
         fn worker(v: u64) {{\n\
             let mut out = Vec::new();\n\
             for item in expand(v) {{ out.push(item); STATE.pending.lock().push(item); }}\n\
             consume(out);\n\
         }}\n\
         fn flush() {{ while let Some(x) = STATE.pending.lock().pop() {{ emit(x); }} }}\n"
    );
    let files = parse(&[("crates/yokan/src/provider.rs", &src)]);
    let report = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(report.queue_violations.is_empty(), "{:?}", report.queue_violations);
}

// ------------------------------------------------- baseline fingerprints

#[test]
fn baseline_diff_survives_a_fifty_line_shift() {
    let body = "struct Prov { state: OrderedMutex<Inner> }\n\
         impl Prov {\n\
             fn handle(&self, v: u64) { let g = self.state.lock(); self.relay(v); }\n\
             fn relay(&self, v: u64) { self.margo.forward(&dest(), \"yokan_next\", 1, &v).ok(); }\n\
         }\n";
    let files = parse(&[("crates/yokan/src/provider.rs", body)]);
    let before = mochi_lint::analyze(&files, &Allowlist::default());
    assert!(!report::findings(&before).is_empty(), "fixture must produce findings");
    let baseline = report::parse_baseline(&report::render_sarif(&before)).unwrap();

    // Shift every finding 50 lines down: prepend a comment block.
    let shifted_src = format!("{}{body}", "// filler\n".repeat(50));
    let shifted = parse(&[("crates/yokan/src/provider.rs", shifted_src.as_str())]);
    let after = mochi_lint::analyze(&shifted, &Allowlist::default());
    let after_findings = report::findings(&after);
    assert_eq!(after_findings.len(), report::findings(&before).len());
    assert!(after_findings.iter().any(|f| f.line > 50), "lines must actually have shifted");
    assert!(
        report::baseline_diff(&after, &baseline).is_empty(),
        "line drift must not create new findings: {:?}",
        report::baseline_diff(&after, &baseline)
    );
}

#[test]
fn baseline_diff_catches_a_genuinely_new_finding() {
    let body = "struct Prov { state: OrderedMutex<Inner> }\n\
         impl Prov {\n\
             fn handle(&self, v: u64) { let g = self.state.lock(); self.relay(v); }\n\
             fn relay(&self, v: u64) { self.margo.forward(&dest(), \"yokan_next\", 1, &v).ok(); }\n\
         }\n";
    let files = parse(&[("crates/yokan/src/provider.rs", body)]);
    let baseline = report::parse_baseline(&report::render_sarif(&mochi_lint::analyze(
        &files,
        &Allowlist::default(),
    )))
    .unwrap();

    // Introduce a second guard-holding caller: one new finding.
    let grown = format!(
        "{body}impl Prov {{\n\
             fn handle_two(&self, v: u64) {{ let g = self.state.lock(); self.relay(v); }}\n\
         }}\n"
    );
    let grown_files = parse(&[("crates/yokan/src/provider.rs", grown.as_str())]);
    let after = mochi_lint::analyze(&grown_files, &Allowlist::default());
    let new = report::baseline_diff(&after, &baseline);
    assert_eq!(new.len(), 1, "{new:?}");
    assert_eq!(new[0].rule, "MOCHI015");
    assert_eq!(new[0].function, "handle_two");
}
