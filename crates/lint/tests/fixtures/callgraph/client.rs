//! Call-graph fixture: the "client" crate of a two-crate mini-workspace.
//!
//! Loaded by `tests/callgraph_fixtures.rs` as `crates/alpha/src/client.rs`;
//! its partner `provider.rs` becomes `crates/beta/src/provider.rs`. Each
//! function exercises exactly one resolution path so the tests can pin
//! edge kinds and the resolved/unresolved/fallback counters.

pub trait Store {
    fn persist(&self, data: &[u8]) -> usize;
}

pub struct MemStore;

impl Store for MemStore {
    fn persist(&self, data: &[u8]) -> usize {
        record_write(data.len())
    }
}

pub struct DiskStore;

impl Store for DiskStore {
    fn persist(&self, data: &[u8]) -> usize {
        data.len()
    }
}

pub struct Client {
    store: MemStore,
}

impl Client {
    /// Method edge: `self.store` types through the field index.
    pub fn save(&self, data: &[u8]) -> usize {
        self.store.persist(data)
    }

    /// Trait edge: `dyn Store` fans out to every `impl Store for …`.
    pub fn save_any(&self, store: &dyn Store, data: &[u8]) -> usize {
        store.persist(data)
    }

    /// Direct cross-crate edge: `tally_totals` lives in crates/beta.
    pub fn totals(&self) -> usize {
        tally_totals()
    }

    /// Fire-and-forget boundary: the spawned closure's call resolves but
    /// produces no edge out of `background`.
    pub fn background(&self) {
        std::thread::spawn(move || {
            tally_totals();
        });
    }

    /// Fallback edge: `conn`'s type is not inferrable (opaque free-call
    /// RHS), but exactly one workspace function is named `revalidate`
    /// and the name is not std-common.
    pub fn refresh(&self) -> bool {
        let conn = open_conn();
        conn.revalidate()
    }

    /// Unresolved: `store` is untyped here and more than one workspace
    /// function is named `persist`, so neither receiver typing nor the
    /// unique-name fallback applies.
    pub fn flush_any(&self) -> usize {
        let store = pick_store();
        store.persist(&[])
    }
}
