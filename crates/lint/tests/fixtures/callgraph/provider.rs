//! Call-graph fixture: the "provider" crate of the mini-workspace.
//!
//! Loaded as `crates/beta/src/provider.rs` — see `client.rs` for the
//! other half and `tests/callgraph_fixtures.rs` for what each function
//! pins down.

/// Cross-crate direct-call target (`Client::totals` in alpha).
pub fn tally_totals() -> usize {
    summarize(7)
}

/// Same-file direct-call target.
fn summarize(n: usize) -> usize {
    n + 1
}

/// Cross-crate direct-call target (`MemStore::persist` in alpha).
pub fn record_write(len: usize) -> usize {
    len
}

pub struct Conn;

impl Conn {
    /// Unique method name: the fallback-edge target for alpha's untyped
    /// `conn` receiver.
    pub fn revalidate(&self) -> bool {
        true
    }
}

/// Registration entry: the handler closure is lexically inside this
/// function, so its calls are attributed here and `apply_save` is
/// reachable from the registering function.
pub fn register(margo: &MargoRuntime) {
    margo.register_typed("mini_save", 1, None, move |args: Vec<u8>, _ctx| apply_save(&args));
}

fn apply_save(data: &[u8]) -> Result<usize, String> {
    Ok(record_write(data.len()))
}
