//! Fixture client: one call with both an argument and a reply type that
//! disagree with the registration, one clean call, and one call to an
//! RPC name nothing registers.

use crate::rpc_names as rpc;

impl MiniClient {
    fn put(&self) -> Result<(), E> {
        // Wrong argument type (GetArgs, registered as PutArgs) and wrong
        // reply type (WrongReply, registered as PutReply).
        let _: WrongReply =
            self.margo.forward(&self.addr, rpc::PUT, 1, &GetArgs { value: 1 })?;
        Ok(())
    }

    fn get(&self) -> Result<(), E> {
        let _: GetReply =
            self.margo.forward(&self.addr, rpc::GET, 1, &GetArgs { value: 1 })?;
        Ok(())
    }

    fn missing(&self) -> Result<(), E> {
        let _: bool =
            self.margo.forward(&self.addr, rpc::MISSING, 1, &GetArgs { value: 1 })?;
        Ok(())
    }
}
