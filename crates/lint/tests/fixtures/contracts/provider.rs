//! Fixture provider: three registrations, one of which (`ORPHAN`) has no
//! caller anywhere in the mini-crate.

use crate::rpc_names as rpc;

fn register_rpcs(margo: &MargoRuntime) {
    margo.register_typed(rpc::PUT, 1, None, move |args: PutArgs, _ctx| {
        Ok(PutReply { ok: true })
    });
    margo.register_typed(rpc::GET, 1, None, move |args: GetArgs, _ctx| {
        Ok(GetReply { value: 0 })
    });
    margo.register_typed(rpc::ORPHAN, 1, None, move |args: OrphanArgs, _ctx| Ok(true));
}
