//! RPC names of the fixture mini-crate. `MISSING` is deliberately never
//! registered and `ORPHAN` is deliberately never called — the contract
//! checker must flag both.

/// Registered and called, but with mismatched types on both directions.
pub const PUT: &str = "mini_put";
/// Registered and called consistently (the one clean RPC).
pub const GET: &str = "mini_get";
/// Registered, never called: dead surface (MOCHI007).
pub const ORPHAN: &str = "mini_orphan";
/// Called, never registered (MOCHI006).
pub const MISSING: &str = "mini_missing";
