//! The frozen-debt allowlist (`lint-allow.json`).
//!
//! Counting-based: each entry permits up to `count` findings of `kind`
//! in `(file, function)`. Existing debt is frozen; anything beyond the
//! recorded count — a *new* `unwrap()` in a handler, an extra blocking
//! call — fails the lint. Entries are keyed by function, not line, so
//! unrelated edits don't invalidate the freeze.
//!
//! The format is JSON, parsed by the tiny reader below so this crate
//! stays dependency-free (the lint is part of the tier-1 gate and must
//! build offline).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Allowance key: (file, function, kind).
pub type Key = (String, String, String);

/// Parsed allowlist.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    /// Permitted finding counts for the panic-path lint.
    pub panic_paths: BTreeMap<Key, usize>,
    /// Permitted finding counts for the blocking-call lint.
    pub blocking: BTreeMap<Key, usize>,
    /// Permitted finding counts for the data-plane JSON lint.
    pub serde_json: BTreeMap<Key, usize>,
    /// Permitted finding counts for the RPC contract checker. The kind
    /// encodes the issue class and RPC name, e.g. `dead:yokan_watch`.
    pub contracts: BTreeMap<Key, usize>,
    /// Permitted finding counts for the lock-held-across-yield analysis.
    /// The kind encodes the suspending call and lock class, e.g.
    /// `forward_timeout:raft::core`.
    pub lock_across_yield: BTreeMap<Key, usize>,
    /// Permitted finding counts for the raw-forward-in-client lint. The
    /// kind is the forward-family method, e.g. `forward_timeout`.
    pub raw_forward: BTreeMap<Key, usize>,
    /// Permitted finding counts for the interprocedural deadline-loss
    /// analysis. The kind encodes the sink, e.g. `drop:forward_timeout`.
    pub deadline_loss: BTreeMap<Key, usize>,
    /// Permitted finding counts for the retry-soundness analysis. The
    /// kind encodes effect and RPC, e.g. `remove:remi_migration_pull`.
    pub retry_soundness: BTreeMap<Key, usize>,
    /// Permitted finding counts for the relaxed-atomic analysis. The
    /// kind encodes op and field, e.g. `load:closed`.
    pub relaxed_atomics: BTreeMap<Key, usize>,
    /// Permitted finding counts for the RPC-under-lock analysis. The
    /// kind encodes callee and lock class, e.g. `flush:yokan::writer`.
    pub rpc_under_lock: BTreeMap<Key, usize>,
    /// Permitted finding counts for the swallowed-background-error
    /// analysis. The kind encodes discard form and callee, e.g.
    /// `let_underscore:send`.
    pub background_errors: BTreeMap<Key, usize>,
    /// Permitted finding counts for the unbounded-queue-growth analysis.
    /// The kind encodes grow method and field, e.g. `grow:push:pending`.
    pub queue_growth: BTreeMap<Key, usize>,
    /// One-line justifications for allowlist entries, keyed
    /// `(section, file, function, kind)`. Written back verbatim by
    /// `--write-allowlist` so hand-added reasons survive regeneration.
    pub reasons: BTreeMap<(String, String, String, String), String>,
    /// Lock field names (or `crate::field` ids) excluded from the
    /// lock-order graph — for per-instance locks whose class identity
    /// would alias distinct objects.
    pub ignored_locks: Vec<String>,
}

/// One allowlist entry the current tree no longer needs: its key matched
/// zero findings, so the frozen debt has been paid down (or the code
/// moved) and the entry should be pruned.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct StaleEntry {
    /// Allowlist section the entry lives in (`panic_paths`, …).
    pub section: String,
    pub file: String,
    pub function: String,
    pub kind: String,
    /// The recorded (now unused) allowance count.
    pub count: usize,
}

impl Allowlist {
    /// Parses the JSON document.
    pub fn from_json(text: &str) -> Result<Allowlist, String> {
        let value = parse_json(text)?;
        let object = value.as_object().ok_or("allowlist root must be an object")?;
        let mut allowlist = Allowlist::default();
        for (key, value) in object {
            match key.as_str() {
                "version" => {}
                "ignored_locks" => {
                    let items = value.as_array().ok_or("ignored_locks must be an array")?;
                    for item in items {
                        allowlist
                            .ignored_locks
                            .push(item.as_str().ok_or("ignored_locks entries must be strings")?.to_string());
                    }
                }
                "panic_paths" | "blocking" | "serde_json" | "contracts" | "lock_across_yield"
                | "raw_forward" | "deadline_loss" | "retry_soundness" | "relaxed_atomics"
                | "rpc_under_lock" | "background_errors" | "queue_growth" => {
                    let items = value.as_array().ok_or("allowance sections must be arrays")?;
                    let section_name = key.clone();
                    let section = match key.as_str() {
                        "panic_paths" => &mut allowlist.panic_paths,
                        "blocking" => &mut allowlist.blocking,
                        "contracts" => &mut allowlist.contracts,
                        "lock_across_yield" => &mut allowlist.lock_across_yield,
                        "raw_forward" => &mut allowlist.raw_forward,
                        "deadline_loss" => &mut allowlist.deadline_loss,
                        "retry_soundness" => &mut allowlist.retry_soundness,
                        "relaxed_atomics" => &mut allowlist.relaxed_atomics,
                        "rpc_under_lock" => &mut allowlist.rpc_under_lock,
                        "background_errors" => &mut allowlist.background_errors,
                        "queue_growth" => &mut allowlist.queue_growth,
                        _ => &mut allowlist.serde_json,
                    };
                    for item in items {
                        let entry = item.as_object().ok_or("allowance entries must be objects")?;
                        let get = |name: &str| -> Result<&str, String> {
                            entry
                                .iter()
                                .find(|(k, _)| k == name)
                                .and_then(|(_, v)| v.as_str())
                                .ok_or_else(|| format!("allowance entry missing '{name}'"))
                        };
                        let count = entry
                            .iter()
                            .find(|(k, _)| k == "count")
                            .and_then(|(_, v)| v.as_usize())
                            .ok_or("allowance entry missing numeric 'count'")?;
                        let entry_key =
                            (get("file")?.to_string(), get("function")?.to_string(), get("kind")?.to_string());
                        if let Some(reason) = entry
                            .iter()
                            .find(|(k, _)| k == "reason")
                            .and_then(|(_, v)| v.as_str())
                        {
                            allowlist.reasons.insert(
                                (
                                    section_name.clone(),
                                    entry_key.0.clone(),
                                    entry_key.1.clone(),
                                    entry_key.2.clone(),
                                ),
                                reason.to_string(),
                            );
                        }
                        section.insert(entry_key, count);
                    }
                }
                other => return Err(format!("unknown allowlist section '{other}'")),
            }
        }
        Ok(allowlist)
    }

    /// Serializes back to the canonical JSON layout.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n");
        out.push_str("  \"ignored_locks\": [");
        for (i, lock) in self.ignored_locks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", quote(lock));
        }
        out.push_str("],\n");
        for (name, section) in [
            ("panic_paths", &self.panic_paths),
            ("blocking", &self.blocking),
            ("serde_json", &self.serde_json),
            ("contracts", &self.contracts),
            ("lock_across_yield", &self.lock_across_yield),
            ("raw_forward", &self.raw_forward),
            ("deadline_loss", &self.deadline_loss),
            ("retry_soundness", &self.retry_soundness),
            ("relaxed_atomics", &self.relaxed_atomics),
            ("rpc_under_lock", &self.rpc_under_lock),
            ("background_errors", &self.background_errors),
            ("queue_growth", &self.queue_growth),
        ] {
            let _ = write!(out, "  \"{name}\": [");
            for (i, ((file, function, kind), count)) in section.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                let _ = write!(
                    out,
                    "    {{\"file\": {}, \"function\": {}, \"kind\": {}, \"count\": {}",
                    quote(file),
                    quote(function),
                    quote(kind),
                    count
                );
                let reason_key =
                    (name.to_string(), file.clone(), function.clone(), kind.clone());
                if let Some(reason) = self.reasons.get(&reason_key) {
                    let _ = write!(out, ", \"reason\": {}", quote(reason));
                }
                out.push('}');
            }
            out.push_str(if section.is_empty() { "]" } else { "\n  ]" });
            out.push_str(if name == "queue_growth" { "\n" } else { ",\n" });
        }
        out.push_str("}\n");
        out
    }

    /// Builds a freeze of the given finding counts. `reasons` carries
    /// over hand-written justifications from the previous allowlist.
    #[allow(clippy::too_many_arguments)]
    pub fn freeze(
        panic_counts: BTreeMap<Key, usize>,
        blocking_counts: BTreeMap<Key, usize>,
        json_counts: BTreeMap<Key, usize>,
        contract_counts: BTreeMap<Key, usize>,
        yield_counts: BTreeMap<Key, usize>,
        raw_forward_counts: BTreeMap<Key, usize>,
        deadline_counts: BTreeMap<Key, usize>,
        retry_counts: BTreeMap<Key, usize>,
        atomics_counts: BTreeMap<Key, usize>,
        rpc_lock_counts: BTreeMap<Key, usize>,
        bg_error_counts: BTreeMap<Key, usize>,
        queue_counts: BTreeMap<Key, usize>,
        reasons: BTreeMap<(String, String, String, String), String>,
        ignored_locks: Vec<String>,
    ) -> Allowlist {
        Allowlist {
            panic_paths: panic_counts,
            blocking: blocking_counts,
            serde_json: json_counts,
            contracts: contract_counts,
            lock_across_yield: yield_counts,
            raw_forward: raw_forward_counts,
            deadline_loss: deadline_counts,
            retry_soundness: retry_counts,
            relaxed_atomics: atomics_counts,
            rpc_under_lock: rpc_lock_counts,
            background_errors: bg_error_counts,
            queue_growth: queue_counts,
            reasons,
            ignored_locks,
        }
    }

    /// Entries whose key matches zero current findings, per section.
    /// `actual` maps section name to the raw (pre-allowlist) counts.
    pub fn stale_entries(&self, actual: &[(&str, &BTreeMap<Key, usize>)]) -> Vec<StaleEntry> {
        let mut stale = Vec::new();
        for (section_name, allowed) in [
            ("panic_paths", &self.panic_paths),
            ("blocking", &self.blocking),
            ("serde_json", &self.serde_json),
            ("contracts", &self.contracts),
            ("lock_across_yield", &self.lock_across_yield),
            ("raw_forward", &self.raw_forward),
            ("deadline_loss", &self.deadline_loss),
            ("retry_soundness", &self.retry_soundness),
            ("relaxed_atomics", &self.relaxed_atomics),
            ("rpc_under_lock", &self.rpc_under_lock),
            ("background_errors", &self.background_errors),
            ("queue_growth", &self.queue_growth),
        ] {
            let counts = actual.iter().find(|(n, _)| *n == section_name).map(|(_, c)| *c);
            for ((file, function, kind), count) in allowed {
                let live = counts.and_then(|c| c.get(&(file.clone(), function.clone(), kind.clone()))).copied().unwrap_or(0);
                if live == 0 {
                    stale.push(StaleEntry {
                        section: section_name.to_string(),
                        file: file.clone(),
                        function: function.clone(),
                        kind: kind.clone(),
                        count: *count,
                    });
                }
            }
        }
        stale.sort();
        stale
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ----------------------------------------------------------------------
// Minimal JSON reader (objects, arrays, strings, numbers, booleans, null)
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn as_object(&self) -> Option<&Vec<(String, Json)>> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }
    pub(crate) fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
    pub(crate) fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }
}

pub(crate) fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Number)
                .ok_or_else(|| format!("invalid number at offset {start}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(&c @ (b'"' | b'\\' | b'/')) => out.push(c),
                    Some(b'u') => {
                        // \uXXXX — the allowlist never needs non-BMP chars.
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        let c = char::from_u32(hex).ok_or("bad \\u codepoint")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut panic_counts = BTreeMap::new();
        panic_counts
            .insert(("crates/raft/src/node.rs".into(), "start".into(), "expect".into()), 2);
        let mut blocking = BTreeMap::new();
        blocking.insert(("crates/raft/src/node.rs".into(), "submit".into(), "recv_timeout".into()), 1);
        let mut json_counts = BTreeMap::new();
        json_counts
            .insert(("crates/margo/src/codec.rs".into(), "encode".into(), "serde_json".into()), 1);
        let mut contract_counts = BTreeMap::new();
        contract_counts.insert(
            ("crates/yokan/src/provider.rs".into(), "register".into(), "dead:yokan_watch".into()),
            1,
        );
        let mut yield_counts = BTreeMap::new();
        yield_counts.insert(
            ("crates/raft/src/node.rs".into(), "replicate".into(), "forward_timeout:raft::core".into()),
            1,
        );
        let mut raw_forward_counts = BTreeMap::new();
        raw_forward_counts.insert(
            ("crates/remi/src/client.rs".into(), "pump_chunks".into(), "forward_raw".into()),
            1,
        );
        let mut deadline_counts = BTreeMap::new();
        deadline_counts.insert(
            ("crates/bedrock/src/server.rs".into(), "resolve_dependencies".into(), "drop:forward".into()),
            1,
        );
        let mut retry_counts = BTreeMap::new();
        retry_counts.insert(
            ("crates/remi/src/provider.rs".into(), "verify_and_finish".into(), "remove:remi_migration_pull".into()),
            1,
        );
        let mut atomics_counts = BTreeMap::new();
        atomics_counts
            .insert(("crates/mercury/src/endpoint.rs".into(), "poll".into(), "load:closed".into()), 1);
        let mut reasons = BTreeMap::new();
        reasons.insert(
            (
                "retry_soundness".to_string(),
                "crates/remi/src/provider.rs".to_string(),
                "verify_and_finish".to_string(),
                "remove:remi_migration_pull".to_string(),
            ),
            "replay-guarded by the completed-transfer map".to_string(),
        );
        let mut rpc_lock_counts = BTreeMap::new();
        rpc_lock_counts.insert(
            ("crates/yokan/src/provider.rs".into(), "flush_all".into(), "flush:yokan::writer".into()),
            1,
        );
        let mut bg_error_counts = BTreeMap::new();
        bg_error_counts.insert(
            ("crates/raft/src/node.rs".into(), "collect_votes".into(), "let_underscore:send".into()),
            1,
        );
        let mut queue_counts = BTreeMap::new();
        queue_counts.insert(
            ("crates/margo/src/runtime.rs".into(), "enqueue".into(), "grow:push:pending".into()),
            1,
        );
        let allowlist = Allowlist::freeze(
            panic_counts,
            blocking,
            json_counts,
            contract_counts,
            yield_counts,
            raw_forward_counts,
            deadline_counts,
            retry_counts,
            atomics_counts,
            rpc_lock_counts,
            bg_error_counts,
            queue_counts,
            reasons,
            vec!["buffer".into()],
        );
        let json = allowlist.to_json();
        let back = Allowlist::from_json(&json).unwrap();
        assert_eq!(back.panic_paths, allowlist.panic_paths);
        assert_eq!(back.blocking, allowlist.blocking);
        assert_eq!(back.serde_json, allowlist.serde_json);
        assert_eq!(back.contracts, allowlist.contracts);
        assert_eq!(back.lock_across_yield, allowlist.lock_across_yield);
        assert_eq!(back.raw_forward, allowlist.raw_forward);
        assert_eq!(back.deadline_loss, allowlist.deadline_loss);
        assert_eq!(back.retry_soundness, allowlist.retry_soundness);
        assert_eq!(back.relaxed_atomics, allowlist.relaxed_atomics);
        assert_eq!(back.rpc_under_lock, allowlist.rpc_under_lock);
        assert_eq!(back.background_errors, allowlist.background_errors);
        assert_eq!(back.queue_growth, allowlist.queue_growth);
        assert_eq!(back.reasons, allowlist.reasons, "reason strings must round-trip");
        assert_eq!(back.ignored_locks, allowlist.ignored_locks);
    }

    #[test]
    fn stale_entries_detected_per_section() {
        let mut panic_counts = BTreeMap::new();
        let live_key: Key = ("a.rs".into(), "f".into(), "unwrap".into());
        let dead_key: Key = ("b.rs".into(), "g".into(), "expect".into());
        panic_counts.insert(live_key.clone(), 1);
        panic_counts.insert(dead_key.clone(), 2);
        let allowlist = Allowlist {
            panic_paths: panic_counts,
            ..Allowlist::default()
        };
        let mut actual = BTreeMap::new();
        actual.insert(live_key, 1usize);
        let stale = allowlist.stale_entries(&[("panic_paths", &actual)]);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "b.rs");
        assert_eq!(stale[0].section, "panic_paths");
        assert_eq!(stale[0].count, 2);
    }

    #[test]
    fn empty_document_is_valid() {
        let allowlist = Allowlist::from_json("{\"version\": 1}").unwrap();
        assert!(allowlist.panic_paths.is_empty());
    }

    #[test]
    fn malformed_document_reports_error() {
        assert!(Allowlist::from_json("{\"panic_paths\": 3}").is_err());
        assert!(Allowlist::from_json("not json").is_err());
    }
}
