//! Workspace source model: file discovery, per-file sanitization, and
//! function extraction.

use std::path::{Path, PathBuf};

use crate::lexer;

/// One `.rs` file prepared for analysis.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Crate the file belongs to (directory under `crates/`, or the
    /// package name for the root `src/`).
    pub crate_name: String,
    /// Sanitized bytes: comments/strings blanked, `#[cfg(test)]` items
    /// removed, newlines preserved.
    pub text: Vec<u8>,
    /// The original bytes. Same length as `text`, so an offset into the
    /// sanitized buffer reads the corresponding raw bytes — this is how
    /// the contract checker recovers string-literal values the sanitizer
    /// blanked.
    pub raw: Vec<u8>,
    /// Functions found in the file, in source order.
    pub functions: Vec<Function>,
}

/// A function (or method) body span inside a [`SourceFile`].
pub struct Function {
    pub name: String,
    /// Byte offset of the opening `{` of the body.
    pub body_start: usize,
    /// Byte offset just past the closing `}`.
    pub body_end: usize,
    pub start_line: usize,
}

impl SourceFile {
    /// Builds the analysis view of one file from its raw contents.
    pub fn parse(rel_path: &str, raw: &str) -> SourceFile {
        let mut text = lexer::sanitize(raw);
        lexer::blank_test_items(&mut text);
        let functions = extract_functions(&text);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_of(rel_path),
            text,
            raw: raw.as_bytes().to_vec(),
            functions,
        }
    }

    /// Name of the innermost function containing `offset`, if any.
    pub fn function_at(&self, offset: usize) -> Option<&Function> {
        self.functions
            .iter()
            .filter(|f| f.body_start <= offset && offset < f.body_end)
            .min_by_key(|f| f.body_end - f.body_start)
    }
}

fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        _ => "mochi-rs".to_string(),
    }
}

/// Finds every `fn name … { body }` in sanitized text, including methods
/// and nested functions. Bodiless signatures (traits, extern) are skipped.
fn extract_functions(text: &[u8]) -> Vec<Function> {
    let mut functions = Vec::new();
    let mut i = 0usize;
    while i + 2 < text.len() {
        if &text[i..i + 2] == b"fn"
            && (i == 0 || !lexer::is_ident_byte(text[i - 1]))
            && !lexer::is_ident_byte(text[i + 2])
        {
            let mut j = i + 2;
            while j < text.len() && text[j].is_ascii_whitespace() {
                j += 1;
            }
            let name_start = j;
            while j < text.len() && lexer::is_ident_byte(text[j]) {
                j += 1;
            }
            if j == name_start {
                i += 2;
                continue;
            }
            let name = String::from_utf8_lossy(&text[name_start..j]).into_owned();
            // Scan the signature for the body `{`; a `;` first means no body.
            let mut body = None;
            while j < text.len() {
                match text[j] {
                    b'{' => {
                        body = Some(j);
                        break;
                    }
                    b';' => break,
                    _ => j += 1,
                }
            }
            if let Some(open) = body {
                let end = lexer::matching_brace(&text, open);
                functions.push(Function {
                    name,
                    body_start: open,
                    body_end: end,
                    start_line: lexer::line_of(&text, i),
                });
                // Continue scanning *inside* the body too (nested fns).
                i = open + 1;
            } else {
                i = j + 1;
            }
        } else {
            i += 1;
        }
    }
    functions
}

/// Recursively collects `.rs` files under `root`, skipping build output,
/// VCS metadata, and test/bench/example trees (those may panic freely).
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(
                    name.as_ref(),
                    "target" | ".git" | "tests" | "examples" | "benches" | "fixtures"
                ) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push((rel, path));
            }
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_methods_and_skips_trait_signatures() {
        let src = "trait T { fn sig(&self); }\nimpl S {\n  fn alpha(&self) { let x = 1; }\n  pub fn beta() -> u8 { 0 }\n}";
        let file = SourceFile::parse("crates/demo/src/lib.rs", src);
        let names: Vec<&str> = file.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        assert_eq!(file.crate_name, "demo");
    }

    #[test]
    fn function_at_returns_innermost() {
        let src = "fn outer() { fn inner() { let y = 2; } let x = 1; }";
        let file = SourceFile::parse("src/lib.rs", src);
        let inner_pos = src.find("let y").unwrap();
        assert_eq!(file.function_at(inner_pos).unwrap().name, "inner");
        let outer_pos = src.find("let x").unwrap();
        assert_eq!(file.function_at(outer_pos).unwrap().name, "outer");
        assert_eq!(file.crate_name, "mochi-rs");
    }
}
