//! Unbounded queue-growth analysis (MOCHI017).
//!
//! The million-client arc multiplies handler invocations; any shared
//! collection a handler appends to inside a loop becomes a memory-
//! growth vector unless *something* bounds it — a capacity check, a
//! bounded channel, or a consumer that drains it. This rule walks the
//! call graph from every RPC-registering function (the same entry set
//! MOCHI011 uses), finds lexical loops in reachable service functions,
//! and flags grow calls (`push`/`push_back`/`push_front`/`extend`/
//! `append`/`send`) into *shared* state — a `self.…` field, a
//! `lock()`/`write()` guard chain, or a local guard variable the
//! dataflow layer resolves to a lock field.
//!
//! Local accumulators (`let mut out = Vec::new(); for … { out.push }`)
//! are bounded by their input and stay out of scope. A finding is
//! suppressed when the file shows bound evidence for the same base
//! field: a consume/measure call reached through the field's chain
//! (`.pop`/`.drain`/`.truncate`/`.clear`/`.remove`/`.len`/`.capacity`/
//! `.recv`), or — for channel sends — a bounded constructor
//! (`sync_channel`/`bounded`) anywhere in the file.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::contracts::{Role, RpcSite};
use crate::dataflow::BodyFlow;
use crate::deadline::PLUMBING;
use crate::lexer::{is_ident_byte, matching_brace};
use crate::source::SourceFile;

/// One unbounded grow site in a handler-reachable loop.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueueSite {
    pub file: String,
    pub function: String,
    pub crate_name: String,
    pub line: usize,
    pub column: usize,
    /// `grow:<method>:<base>` — the allowlist kind
    /// (e.g. `grow:push:pending`).
    pub kind: String,
    /// Witness path from a registering function to this site.
    pub path: Vec<String>,
}

const GROW: &[&str] = &["push", "push_back", "push_front", "extend", "append", "send"];

/// Tokens that count as bound evidence when reached through the base
/// field's chain: consumers (`pop`/`drain`/`recv`), filters (`retain`),
/// resets (`clear`/`truncate`), and explicit measurements the caller can
/// gate on (`len`/`is_empty`/`capacity`).
const CONSUME: &[&str] = &[
    ".pop",
    ".drain(",
    ".truncate(",
    ".clear(",
    ".remove(",
    ".retain(",
    ".len(",
    ".is_empty(",
    ".capacity(",
    ".recv",
];

/// Whole-collection drains that appear *before* the field in the
/// expression: `std::mem::take(&mut *x.lock())`, `mem::replace(…)`.
const TAKE: &[&str] = &["take(", "replace("];

pub fn check(files: &[SourceFile], graph: &CallGraph, sites: &[RpcSite]) -> Vec<QueueSite> {
    let mut entries: Vec<usize> = Vec::new();
    for site in sites {
        if site.role != Role::Register || PLUMBING.contains(&site.crate_name.as_str()) {
            continue;
        }
        entries.extend(graph.nodes_named(&site.file, &site.function));
    }
    entries.sort_unstable();
    entries.dedup();

    let parents = graph.reachable(&entries, |n| !PLUMBING.contains(&n.crate_name.as_str()));
    let mut findings = Vec::new();
    for &node_id in parents.keys() {
        let node = &graph.nodes[node_id];
        if PLUMBING.contains(&node.crate_name.as_str()) {
            continue;
        }
        let file = &files[node.file_idx];
        let func = &file.functions[node.func_idx];
        let loops = loop_spans(&file.text, func.body_start, func.body_end);
        if loops.is_empty() {
            continue;
        }
        let mut flow: Option<BodyFlow> = None;
        for call in &graph.calls[node_id] {
            if !GROW.contains(&call.callee.as_str()) {
                continue;
            }
            if !loops.iter().any(|&(s, e)| s <= call.offset && call.offset < e) {
                continue;
            }
            let Some(receiver) = call.receiver.as_deref() else {
                continue;
            };
            let base = match shared_base(receiver, call.offset, file, func, &mut flow) {
                Some(b) => b,
                None => continue, // local accumulator — bounded by input
            };
            if bounded(&file.text, &base, call.callee == "send") {
                continue;
            }
            findings.push(QueueSite {
                file: node.file.clone(),
                function: node.name.clone(),
                crate_name: node.crate_name.clone(),
                line: call.line,
                column: call.column,
                kind: format!("grow:{}:{}", call.callee, base),
                path: graph.path_names(&parents, node_id),
            });
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

/// Lexical loop body spans (`loop`/`while`/`for` … `{ … }`) in
/// `[start, end)`, including nested ones.
pub fn loop_spans(text: &[u8], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = start;
    while i < end {
        if !is_ident_byte(text[i]) || (i > 0 && is_ident_byte(text[i - 1])) {
            i += 1;
            continue;
        }
        let ws = i;
        while i < end && is_ident_byte(text[i]) {
            i += 1;
        }
        let word = &text[ws..i];
        if word != b"loop" && word != b"while" && word != b"for" {
            continue;
        }
        // The loop body is the next `{` at paren depth zero (skipping a
        // `while let …` / `for … in …` header).
        let mut j = i;
        let mut paren = 0isize;
        while j < end {
            match text[j] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b'{' if paren == 0 => break,
                b';' if paren == 0 => {
                    j = end; // not a loop header after all
                }
                _ => {}
            }
            j += 1;
        }
        if j < end {
            let close = matching_brace(text, j);
            spans.push((j + 1, close));
        }
    }
    spans
}

/// Classifies the grow call's receiver: `Some(base)` when it writes to
/// shared state, `None` for local accumulators.
fn shared_base(
    receiver: &str,
    offset: usize,
    file: &SourceFile,
    func: &crate::source::Function,
    flow: &mut Option<BodyFlow>,
) -> Option<String> {
    if receiver == "self"
        || receiver.starts_with("self.")
        || receiver.contains(".lock()")
        || receiver.contains(".write()")
    {
        return Some(base_field(receiver));
    }
    // A plain identifier may be a guard over a lock field.
    if receiver.bytes().all(is_ident_byte) {
        let flow = flow.get_or_insert_with(|| {
            BodyFlow::analyze(file, func.body_start, func.body_end, &BTreeSet::new())
        });
        if let Some(span) = flow.guard_var_at(receiver, offset) {
            let lock = span.lock.clone();
            return Some(lock.rsplit("::").next().unwrap_or(&lock).to_string());
        }
    }
    None
}

/// Last plain field segment of a receiver chain: `self.inner.queue
/// .lock()` → `queue`.
fn base_field(receiver: &str) -> String {
    receiver
        .split('.')
        .filter(|s| !s.is_empty() && !s.contains('(') && *s != "self")
        .next_back()
        .unwrap_or("self")
        .to_string()
}

/// Does the file show bound evidence for `base`? Looks for a consume or
/// measure token reached through the field's chain within a short
/// window after each whole-word occurrence, and — for sends — a bounded
/// channel constructor anywhere.
fn bounded(text: &[u8], base: &str, is_send: bool) -> bool {
    if is_send {
        for ctor in ["sync_channel", "bounded("] {
            if contains(text, ctor.as_bytes()) {
                return true;
            }
        }
    }
    let needle = base.as_bytes();
    let mut i = 0usize;
    while i + needle.len() <= text.len() {
        if &text[i..i + needle.len()] == needle
            && (i == 0 || !is_ident_byte(text[i - 1]))
            && text.get(i + needle.len()).map(|&b| !is_ident_byte(b)).unwrap_or(true)
        {
            let window_end = (i + needle.len() + 48).min(text.len());
            let window = &text[i + needle.len()..window_end];
            if CONSUME.iter().any(|t| contains(window, t.as_bytes())) {
                return true;
            }
            let before = &text[i.saturating_sub(24)..i];
            if TAKE.iter().any(|t| contains(before, t.as_bytes())) {
                return true;
            }
        }
        i += 1;
    }
    false
}

fn contains(hay: &[u8], needle: &[u8]) -> bool {
    hay.windows(needle.len().max(1)).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contracts;

    fn run(files: &[(&str, &str)]) -> Vec<QueueSite> {
        let parsed: Vec<SourceFile> =
            files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let graph = CallGraph::build(&parsed);
        let consts = contracts::ConstTable::build(&parsed);
        let sites: Vec<RpcSite> =
            parsed.iter().flat_map(|f| contracts::sites(f, &consts)).collect();
        check(&parsed, &graph, &sites)
    }

    const HANDLER_PREAMBLE: &str =
        "fn register_all(margo: &Margo) {\n    margo.register_typed(\"demo_put\", 1, None, move |v: u64, _ctx| { worker(v); Ok(0) });\n}\n";

    #[test]
    fn unbounded_push_into_lock_guard_flagged() {
        let src = format!(
            "{HANDLER_PREAMBLE}\
             fn worker(v: u64) {{ for item in expand(v) {{ STATE.pending.lock().push(item); }} }}\n"
        );
        let found = run(&[("crates/yokan/src/provider.rs", &src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].kind, "grow:push:pending");
        assert_eq!(found[0].function, "worker");
        assert!(found[0].path.contains(&"register_all".to_string()), "{:?}", found[0].path);
    }

    #[test]
    fn drained_queue_is_bounded() {
        let src = format!(
            "{HANDLER_PREAMBLE}\
             fn worker(v: u64) {{ for item in expand(v) {{ STATE.pending.lock().push(item); }} }}\n\
             fn flush() {{ while let Some(x) = STATE.pending.lock().pop() {{ emit(x); }} }}\n"
        );
        let found = run(&[("crates/yokan/src/provider.rs", &src)]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn length_check_is_bound_evidence() {
        let src = format!(
            "{HANDLER_PREAMBLE}\
             fn worker(v: u64) {{ for item in expand(v) {{ if STATE.pending.lock().len() < CAP {{ STATE.pending.lock().push(item); }} }} }}\n"
        );
        let found = run(&[("crates/yokan/src/provider.rs", &src)]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn local_accumulator_is_out_of_scope() {
        let src = format!(
            "{HANDLER_PREAMBLE}\
             fn worker(v: u64) {{ let mut out = Vec::new(); for item in expand(v) {{ out.push(item); }} consume(out); }}\n"
        );
        let found = run(&[("crates/yokan/src/provider.rs", &src)]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn guard_variable_resolves_to_lock_field() {
        let src = format!(
            "{HANDLER_PREAMBLE}\
             struct S {{ backlog: Mutex<Vec<u64>> }}\n\
             impl S {{ fn worker(&self, v: u64) {{ let mut q = self.backlog.lock(); for item in expand(v) {{ q.push(item); }} }} }}\n"
        );
        // `worker` as a method isn't reachable from the free `worker` the
        // handler calls, so route the handler through the method name.
        let src = src.replace("worker(v);", "S::worker(&s, v);");
        let found = run(&[("crates/yokan/src/provider.rs", &src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].kind, "grow:push:backlog");
    }

    #[test]
    fn retain_elsewhere_in_file_is_drain_evidence() {
        let src = format!(
            "{HANDLER_PREAMBLE}\
             fn worker(v: u64) {{ for item in expand(v) {{ STATE.pending.lock().push(item); }} }}\n\
             fn release(id: &str) {{ STATE.pending.lock().retain(|t| t != id); }}\n"
        );
        let found = run(&[("crates/yokan/src/provider.rs", &src)]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn mem_take_drain_is_bound_evidence() {
        let src = format!(
            "{HANDLER_PREAMBLE}\
             fn worker(v: u64) {{ for item in expand(v) {{ STATE.pending.lock().push(item); }} }}\n\
             fn shutdown() {{ let all = std::mem::take(&mut *STATE.pending.lock()); join(all); }}\n"
        );
        let found = run(&[("crates/yokan/src/provider.rs", &src)]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unreachable_function_is_ignored() {
        let src = "fn not_a_handler(v: u64) { for item in expand(v) { STATE.pending.lock().push(item); } }\n";
        let found = run(&[("crates/yokan/src/provider.rs", src)]);
        assert!(found.is_empty(), "{found:?}");
    }
}
