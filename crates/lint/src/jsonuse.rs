//! Data-plane JSON lint: `serde_json::` inside hot-path codec, framing,
//! client, and provider modules.
//!
//! The RPC hot path encodes arguments with the mochi-wire binary codec;
//! reintroducing JSON there silently undoes its size and latency gains.
//! JSON remains the right format on the observability and configuration
//! surfaces — monitoring dumps (Listing 1), Bedrock configs (Listings
//! 2/3), Jx9 artifacts — so those modules are deliberately *not* listed
//! here. Existing debt is frozen in the allowlist; new sites fail.

use crate::lexer::{column_of, is_ident_byte, line_of};
use crate::source::SourceFile;

/// Data-plane modules where a `serde_json::` use is a finding. Exact
/// files, not prefixes: the sibling config/bedrock/monitoring modules in
/// these crates are allowed JSON surfaces.
pub const DATA_PLANE_PATHS: &[&str] = &[
    "crates/margo/src/codec.rs",
    "crates/margo/src/frame.rs",
    "crates/margo/src/rpc.rs",
    "crates/yokan/src/client.rs",
    "crates/yokan/src/provider.rs",
    "crates/warabi/src/client.rs",
    "crates/warabi/src/provider.rs",
    "crates/remi/src/client.rs",
    "crates/remi/src/protocol.rs",
    "crates/remi/src/provider.rs",
];

/// One `serde_json::` use in a data-plane module.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct JsonSite {
    pub file: String,
    pub function: String,
    /// Always `serde_json` (the allowlist key format wants a kind).
    pub kind: String,
    pub line: usize,
    pub column: usize,
}

/// Whether the data-plane JSON lint applies to `rel_path`.
pub fn in_data_plane(rel_path: &str) -> bool {
    DATA_PLANE_PATHS.iter().any(|p| rel_path == *p)
}

/// Scans one file for `serde_json::` path uses (strings, comments, and
/// test modules are already blanked by the sanitizer).
pub fn scan(file: &SourceFile) -> Vec<JsonSite> {
    const NEEDLE: &[u8] = b"serde_json::";
    let text = &file.text;
    let mut sites = Vec::new();
    let mut i = 0usize;
    while i + NEEDLE.len() <= text.len() {
        if &text[i..i + NEEDLE.len()] == NEEDLE && (i == 0 || !is_ident_byte(text[i - 1])) {
            sites.push(JsonSite {
                file: file.rel_path.clone(),
                function: file
                    .function_at(i)
                    .map(|f| f.name.clone())
                    .unwrap_or_else(|| "<module>".to_string()),
                kind: "serde_json".to_string(),
                line: line_of(text, i),
                column: column_of(text, i),
            });
            i += NEEDLE.len();
        } else {
            i += 1;
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn sites(rel_path: &str, src: &str) -> Vec<(String, String, usize)> {
        let file = SourceFile::parse(rel_path, src);
        scan(&file).into_iter().map(|s| (s.function, s.kind, s.line)).collect()
    }

    #[test]
    fn finds_calls_and_use_declarations() {
        let found = sites(
            "crates/margo/src/codec.rs",
            "use serde_json::Value;\nfn encode_it(v: &Value) { let _ = serde_json::to_vec(v); }\n",
        );
        assert_eq!(
            found,
            vec![
                ("<module>".to_string(), "serde_json".to_string(), 1),
                ("encode_it".to_string(), "serde_json".to_string(), 2),
            ]
        );
    }

    #[test]
    fn strings_comments_and_tests_are_invisible() {
        let found = sites(
            "crates/margo/src/codec.rs",
            "// serde_json::to_vec is gone\nfn f() { log(\"serde_json::to_vec\"); }\n#[cfg(test)]\nmod tests { fn t() { serde_json::json!({}); } }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn other_identifiers_do_not_match() {
        let found = sites(
            "crates/margo/src/codec.rs",
            "fn f() { my_serde_json::to_vec(&1); serde_jsonish::to_vec(&1); }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn data_plane_filter_is_exact_files() {
        assert!(in_data_plane("crates/margo/src/codec.rs"));
        assert!(in_data_plane("crates/remi/src/protocol.rs"));
        assert!(!in_data_plane("crates/margo/src/config.rs"));
        assert!(!in_data_plane("crates/margo/src/monitoring/statistics.rs"));
        assert!(!in_data_plane("crates/yokan/src/bedrock.rs"));
    }
}
