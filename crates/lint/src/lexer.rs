//! Source sanitization: blank out comments, string/char literals, and
//! `#[cfg(test)]` items so that downstream scanners only ever see code
//! that runs in production builds.
//!
//! The sanitized buffer has the same byte length as the input and keeps
//! every newline, so byte offsets and line numbers map 1:1 onto the
//! original file.

/// Replaces comments, string literals, byte strings, raw strings and char
/// literals with spaces (newlines preserved).
pub fn sanitize(source: &str) -> Vec<u8> {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let end = line_end(bytes, i);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let end = block_comment_end(bytes, i);
                blank(&mut out, i, end);
                i = end;
            }
            b'"' => {
                let end = string_end(bytes, i + 1);
                blank(&mut out, i, end);
                i = end;
            }
            b'r' | b'b' if is_raw_or_byte_literal_start(bytes, i) => {
                let end = raw_or_byte_literal_end(bytes, i);
                blank(&mut out, i, end);
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    // A lifetime (`'a`): leave as-is, skip the identifier.
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Blanks every `#[cfg(test)]`-guarded item (typically `mod tests { … }`)
/// in an already-sanitized buffer, so test-only code is invisible to the
/// lints. Operates in place.
pub fn blank_test_items(sanitized: &mut [u8]) {
    let needle = b"#[cfg(test)]";
    let mut i = 0usize;
    while i + needle.len() <= sanitized.len() {
        if &sanitized[i..i + needle.len()] == needle {
            let start = i;
            let mut j = i + needle.len();
            // Find the start of the guarded item's body: the next `{` not
            // preceded by an item-terminating `;`.
            let mut body = None;
            while j < sanitized.len() {
                match sanitized[j] {
                    b'{' => {
                        body = Some(j);
                        break;
                    }
                    b';' => break, // e.g. `#[cfg(test)] use …;`
                    _ => j += 1,
                }
            }
            let end = match body {
                Some(open) => matching_brace(sanitized, open),
                None => j + 1,
            };
            let end = end.min(sanitized.len());
            blank(sanitized, start, end);
            i = end;
        } else {
            i += 1;
        }
    }
}

/// Offset just past the `}` matching the `{` at `open`.
pub fn matching_brace(bytes: &[u8], open: usize) -> usize {
    debug_assert_eq!(bytes[open], b'{');
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// 1-based line number of a byte offset.
pub fn line_of(bytes: &[u8], offset: usize) -> usize {
    1 + bytes[..offset.min(bytes.len())].iter().filter(|&&b| b == b'\n').count()
}

/// 1-based column number of a byte offset.
pub fn column_of(bytes: &[u8], offset: usize) -> usize {
    let offset = offset.min(bytes.len());
    let line_start =
        bytes[..offset].iter().rposition(|&b| b == b'\n').map(|p| p + 1).unwrap_or(0);
    1 + offset - line_start
}

pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn blank(out: &mut [u8], start: usize, end: usize) {
    let end = end.min(out.len());
    for b in &mut out[start..end] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn line_end(bytes: &[u8], from: usize) -> usize {
    bytes[from..].iter().position(|&b| b == b'\n').map(|p| from + p).unwrap_or(bytes.len())
}

fn block_comment_end(bytes: &[u8], from: usize) -> usize {
    // Rust block comments nest.
    let mut depth = 0usize;
    let mut i = from;
    while i + 1 < bytes.len() {
        if bytes[i] == b'/' && bytes[i + 1] == b'*' {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'*' && bytes[i + 1] == b'/' {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    bytes.len()
}

/// End of a normal string literal whose opening quote precedes `from`.
fn string_end(bytes: &[u8], from: usize) -> usize {
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// True when position `i` begins `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or
/// `b'…'` — i.e. the `r`/`b` is literal prefix, not part of an identifier.
fn is_raw_or_byte_literal_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j < bytes.len() && bytes[j] == b'\'' {
            return true;
        }
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
    }
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j > i && j < bytes.len() && bytes[j] == b'"'
}

fn raw_or_byte_literal_end(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j < bytes.len() && bytes[j] == b'\'' {
            return char_literal_end(bytes, j).unwrap_or(j + 1);
        }
    }
    let raw = j < bytes.len() && bytes[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'"' {
        return i + 1; // not actually a literal; skip one byte
    }
    j += 1; // past the opening quote
    if raw {
        // Raw string: ends at `"` followed by `hashes` hashes, no escapes.
        while j < bytes.len() {
            if bytes[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                    k += 1;
                    seen += 1;
                }
                if seen == hashes {
                    return k;
                }
            }
            j += 1;
        }
        bytes.len()
    } else {
        string_end(bytes, j)
    }
}

/// If the `'` at `i` starts a char literal, its end offset; `None` for a
/// lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: skip the escape, find the closing quote.
        let mut j = i + 3;
        while j < bytes.len() && bytes[j] != b'\'' && j < i + 12 {
            j += 1;
        }
        return Some((j + 1).min(bytes.len()));
    }
    if is_ident_byte(next) {
        // `'a'` is a char literal; `'a` (no closing quote right after the
        // single ident byte) is a lifetime.
        if bytes.get(i + 2) == Some(&b'\'') {
            return Some(i + 3);
        }
        return None;
    }
    // Punctuation or multi-byte char: look for a close quote nearby.
    let mut j = i + 1;
    while j < bytes.len() && j < i + 6 {
        if bytes[j] == b'\'' {
            return Some(j + 1);
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(src: &str) -> String {
        String::from_utf8(sanitize(src)).unwrap()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let s = clean("a // c\nb /* x /* y */ z */ c");
        assert_eq!(s, "a     \nb                   c");
    }

    #[test]
    fn strips_strings_and_keeps_length() {
        let src = r#"let x = "a.lock()"; y"#;
        let s = clean(src);
        assert_eq!(s.len(), src.len());
        assert!(!s.contains("lock"));
        assert!(s.contains("let x ="));
    }

    #[test]
    fn strips_raw_strings() {
        let src = r##"let j = r#"{"name": "p"}"#; k"##;
        let s = clean(src);
        assert!(!s.contains("name"));
        assert!(s.ends_with("; k"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let s = clean("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(s.contains("<'a>"));
        assert!(s.contains("&'a str"));
        assert!(!s.contains("'x'"));
    }

    #[test]
    fn blanks_cfg_test_modules() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn dead() { x.unwrap(); } }\nfn also_live() {}";
        let mut s = sanitize(src);
        blank_test_items(&mut s);
        let s = String::from_utf8(s).unwrap();
        assert!(s.contains("fn live"));
        assert!(s.contains("fn also_live"));
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("dead"));
    }

    #[test]
    fn line_numbers_survive_sanitization() {
        let src = "a\n\"x\ny\"\nb";
        let s = sanitize(src);
        assert_eq!(line_of(&s, s.len() - 1), 4);
    }

    #[test]
    fn byte_strings_are_blanked() {
        let s = clean(r#"let m = b"magic.lock()"; n"#);
        assert!(!s.contains("magic"));
        assert!(!s.contains("lock"));
        assert!(s.starts_with("let m ="));
        assert!(s.ends_with("; n"));
    }

    #[test]
    fn raw_byte_strings_with_hashes_are_blanked() {
        let src = r###"let m = br##"quote " hash # done"##; n"###;
        let s = clean(src);
        assert_eq!(s.len(), src.len());
        assert!(!s.contains("quote"));
        assert!(s.ends_with("; n"));
    }

    #[test]
    fn raw_string_with_embedded_quote_ends_at_matching_hashes() {
        // The `"#`-lookalike inside must not terminate an `r##"…"##`.
        let src = r###"let j = r##"a "# b"##; k"###;
        let s = clean(src);
        assert!(!s.contains('a'));
        assert!(!s.contains('b'));
        assert!(s.ends_with("; k"));
    }

    #[test]
    fn escaped_quote_and_backslash_char_literals() {
        let s = clean(r"let q = '\''; let b = '\\'; x.lock()");
        assert!(!s.contains('\''), "char literals must be blanked: {s}");
        assert!(s.contains("x.lock()"));
    }

    #[test]
    fn unicode_escape_char_literal() {
        let s = clean(r"let c = '\u{10FFFF}'; y");
        assert!(!s.contains("10FFFF"));
        assert!(s.ends_with("; y"));
    }

    #[test]
    fn quote_char_literal_does_not_open_a_string() {
        // If `'"'` were mislexed, the closing `"` would swallow the rest
        // of the line as a string.
        let s = clean(r#"let c = '"'; x.lock()"#);
        assert!(s.contains("x.lock()"));
    }

    #[test]
    fn loop_labels_are_lifetimes_not_chars() {
        let s = clean("'outer: loop { break 'outer; }");
        assert!(s.contains("'outer: loop"));
        assert!(s.contains("break 'outer;"));
    }

    #[test]
    fn static_lifetime_survives() {
        let s = clean("const N: &'static str = x; fn f(a: &'static [u8]) {}");
        assert!(s.contains("&'static str"));
        assert!(s.contains("&'static [u8]"));
    }

    #[test]
    fn byte_char_literals_are_blanked() {
        let s = clean(r"if b == b'\n' || b == b'x' { y.lock() }");
        assert!(!s.contains("b'"));
        assert!(s.contains("y.lock()"));
    }

    #[test]
    fn raw_identifiers_are_not_string_prefixes() {
        let s = clean("let r#type = r#match.lock();");
        assert!(s.contains("r#type"));
        assert!(s.contains("r#match.lock()"));
    }

    #[test]
    fn unterminated_block_comment_blanks_to_eof() {
        let s = clean("a /* x /* y */ z");
        assert!(s.starts_with("a "));
        assert!(!s.contains('z'));
    }

    #[test]
    fn multibyte_char_literal_is_blanked() {
        let s = clean("let c = '\u{1F980}'; z.lock()");
        assert!(!s.contains('\u{1F980}'));
        assert!(s.contains("z.lock()"));
    }
}
