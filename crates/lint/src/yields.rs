//! Lock-held-across-yield analysis.
//!
//! Argobots ULTs are cooperatively scheduled: an RPC `forward`, a bulk
//! transfer, a channel receive, or an explicit `yield_now` suspends the
//! current ULT and lets others run on the same execution stream. A lock
//! guard held across such a suspension point is a deadlock class that
//! rank-ordering cannot catch — the handler that would release the lock
//! may be scheduled *behind* a ULT that is spinning on the same lock, or
//! the forward may land back on this very provider and try to take the
//! guard re-entrantly.
//!
//! Detection is integrated into the `locks.rs` guard-liveness scan
//! (`locks::extract` returns the yield findings alongside lock edges):
//! whenever a yield-shaped call is seen while the current context holds
//! at least one guard, a [`YieldSite`] is recorded per held lock class.
//!
//! Condvar `.wait(…)` is deliberately *not* a yield kind: waiting
//! releases the mutex while parked, which is the correct pattern.

use crate::lexer::is_ident_byte;

/// One lock guard held across a suspension point.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct YieldSite {
    pub file: String,
    pub function: String,
    /// Lock class held at the suspension point (e.g. `raft::core`).
    pub lock: String,
    /// The suspending call (`forward_timeout`, `yield_now`, …).
    pub yield_call: String,
    pub line: usize,
    pub column: usize,
}

/// Method calls that suspend the current ULT.
const YIELD_METHODS: &[&str] = &[
    "forward",
    "forward_with_context",
    "forward_timeout",
    "forward_full",
    "forward_raw",
    "notify",
    "bulk_pull",
    "bulk_push",
    "recv",
    "recv_timeout",
];

/// Paths where ULT/handler code runs and the analysis applies. The margo
/// runtime itself is included: its dispatch path runs inside handler ULTs.
const YIELD_SCOPE: &[&str] = &[
    "crates/margo/src",
    "crates/bedrock/src",
    "crates/yokan/src",
    "crates/warabi/src",
    "crates/remi/src",
    "crates/raft/src",
    "crates/ssg/src",
    "crates/pufferscale/src",
    "crates/core/src",
];

/// Whether `rel_path` is in ULT/handler scope.
pub fn in_scope(rel_path: &str) -> bool {
    YIELD_SCOPE.iter().any(|p| rel_path.starts_with(p))
}

/// If the `.` at `dot` begins a yield-shaped method call (optionally with
/// a turbofish, e.g. `forward_full::<_, R>(…)`), returns the method name
/// and the offset of its opening paren.
pub fn yield_method_at(text: &[u8], dot: usize, end: usize) -> Option<(&'static str, usize)> {
    let mut j = dot + 1;
    let name_start = j;
    while j < end && is_ident_byte(text[j]) {
        j += 1;
    }
    let name = &text[name_start..j];
    let method = YIELD_METHODS.iter().find(|m| m.as_bytes() == name)?;
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    // Skip a turbofish between the name and the argument list.
    if j + 2 < end && text[j] == b':' && text[j + 1] == b':' && text[j + 2] == b'<' {
        let mut depth = 1i32;
        j += 3;
        while j < end && depth > 0 {
            match text[j] {
                b'<' => depth += 1,
                b'>' => depth -= 1,
                b'(' | b';' => return None,
                _ => {}
            }
            j += 1;
        }
        while j < end && text[j].is_ascii_whitespace() {
            j += 1;
        }
    }
    if j < end && text[j] == b'(' {
        Some((method, j))
    } else {
        None
    }
}

/// If offset `i` begins a `yield_now(…)` call (bare or path-qualified),
/// returns the offset of its opening paren.
pub fn yield_now_at(text: &[u8], i: usize, end: usize) -> Option<usize> {
    let word = b"yield_now";
    if i + word.len() > end || &text[i..i + word.len()] != word {
        return None;
    }
    if i > 0 && is_ident_byte(text[i - 1]) {
        return None;
    }
    let mut j = i + word.len();
    if j < end && is_ident_byte(text[j]) {
        return None;
    }
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    if j < end && text[j] == b'(' {
        Some(j)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::collections::BTreeSet;

    fn yields_of(src: &str) -> Vec<YieldSite> {
        let file = SourceFile::parse("crates/demo/src/lib.rs", src);
        crate::locks::extract(&file, &BTreeSet::new()).2
    }

    #[test]
    fn guard_held_across_forward_flagged() {
        let found = yields_of(
            "fn f(&self) { let g = self.state.lock(); self.margo.forward_timeout(&a, rpc::PING, 1, &args, t); }",
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lock, "demo::state");
        assert_eq!(found[0].yield_call, "forward_timeout");
    }

    #[test]
    fn guard_dropped_before_forward_clean() {
        let found = yields_of(
            "fn f(&self) { let g = self.state.lock(); drop(g); self.margo.forward(&a, rpc::PING, 1, &args); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn block_scoped_guard_released_before_yield() {
        let found = yields_of(
            "fn f(&self) { { let g = self.state.lock(); g.touch(); } self.margo.forward(&a, rpc::PING, 1, &args); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn statement_temporary_does_not_outlive_statement() {
        let found = yields_of(
            "fn f(&self) { let v = self.state.lock().view(); self.margo.forward(&a, rpc::PING, 1, &v); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn yield_now_and_bulk_and_recv_flagged() {
        let found = yields_of(
            "fn f(&self) { let g = self.state.lock(); margo::yield_now(); self.margo.bulk_pull(&h, 0, len); let m = rx.recv(); }",
        );
        let calls: Vec<&str> = found.iter().map(|y| y.yield_call.as_str()).collect();
        assert_eq!(calls, vec!["yield_now", "bulk_pull", "recv"]);
    }

    #[test]
    fn condvar_wait_is_not_a_yield() {
        let found = yields_of(
            "fn f(&self) { let g = self.state.lock(); let g = self.cv.wait(g); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn closure_does_not_inherit_outer_guard() {
        let found = yields_of(
            "fn f(&self) { let g = self.state.lock(); spawn(move || { self.margo.forward(&a, rpc::PING, 1, &args); }); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn turbofish_forward_flagged() {
        let found = yields_of(
            "fn f(&self) { let g = self.state.lock(); self.margo.forward_full::<_, PingReply>(&a, rpc::PING, 1, &args, cc, t); }",
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].yield_call, "forward_full");
    }

    #[test]
    fn scope_covers_ult_crates_only() {
        assert!(in_scope("crates/raft/src/node.rs"));
        assert!(in_scope("crates/margo/src/runtime.rs"));
        assert!(!in_scope("crates/lint/src/locks.rs"));
        assert!(!in_scope("src/main.rs"));
    }
}
