//! Swallowed background-error analysis (MOCHI016).
//!
//! A background task is fire-and-forget twice over: nobody joins it, and
//! nobody observes its `Result`. The resilience literature treats this
//! as a detection gap — the task dies, the service keeps serving, and
//! the failure surfaces minutes later as lost data or a stuck queue.
//! PR 7's `BackgroundExecutor` parks task errors for the supervisor to
//! harvest; that is the blessed pattern. Everything else that discards a
//! fallible result *inside a spawn span* is a finding:
//!
//! - `let _ = fallible(…);` — wildcard-only discard of a fallible call
//!   (`let _res = …` keeps the binding observable and is not flagged);
//! - `fallible(…).ok();` — a call result shrugged into an unused
//!   `Option` (using the `Option` — `.ok()?`, `if …ok().is_some()` —
//!   is fine; only the statement-terminated form is flagged);
//! - `self.fallible(…);` — a bare statement call whose every resolved
//!   target returns `Result`, so the value is dropped on the floor.
//!
//! Spawn spans are the argument lists of `spawn*`-named calls, the same
//! classification the call graph uses for `CallSite::in_spawn`. A call
//! is "fallible" when its name is on the builtin I/O + channel list or
//! when its resolved signature mentions `Result`.

use crate::callgraph::CallGraph;
use crate::lexer::{column_of, is_ident_byte, line_of};
use crate::source::SourceFile;

/// One discarded background error.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BgErrorSite {
    pub file: String,
    pub function: String,
    pub crate_name: String,
    pub line: usize,
    pub column: usize,
    /// `<form>:<callee>` — e.g. `let_underscore:send`, `ok:forward`,
    /// `unused_result:persist_wal`.
    pub kind: String,
}

/// Names that return `Result` by contract even when the callee can't be
/// resolved through the graph (std/channel/file surface).
const FALLIBLE: &[&str] = &[
    "send",
    "try_send",
    "recv",
    "recv_timeout",
    "write",
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
    "set_len",
    "remove_file",
    "rename",
    "create_dir",
    "create_dir_all",
];

/// Crates whose spawn bodies are test harness / tooling, not services.
const OUT_OF_SCOPE: &[&str] = &["lint", "bench"];

pub fn check(files: &[SourceFile], graph: &CallGraph) -> Vec<BgErrorSite> {
    let mut findings = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        if OUT_OF_SCOPE.contains(&node.crate_name.as_str()) {
            continue;
        }
        let file = &files[node.file_idx];
        let func = &file.functions[node.func_idx];
        let spans = spawn_spans(&file.text, func.body_start, func.body_end);
        if spans.is_empty() {
            continue;
        }
        let text = &file.text;

        // Form 1: `let _ = …;` discarding a fallible call.
        for &(lo, hi) in &spans {
            let mut i = lo;
            while i < hi {
                let Some(eq) = let_underscore_at(text, i, hi) else {
                    i += 1;
                    continue;
                };
                let stmt_end = statement_end(text, eq, hi);
                if let Some(callee) = fallible_in(text, eq, stmt_end, graph, files, id) {
                    findings.push(site(node, text, i, format!("let_underscore:{callee}")));
                }
                i = stmt_end;
            }
        }

        // Forms 2 and 3 ride on the graph's spawn-classified call sites.
        for call in &graph.calls[id] {
            if !call.in_spawn {
                continue;
            }
            let Some(close) = call_close(text, call.offset, func.body_end) else {
                continue;
            };
            let after = next_non_ws(text, close + 1, func.body_end);

            // Both remaining forms only apply to whole statements: the
            // chain must start a statement (not feed a `let`, a field
            // assignment, or a larger expression) and end at `;`.
            if after != Some(b';') {
                continue;
            }
            let head = chain_start(text, call.offset);
            let stmt_start = if head == 0 { None } else { prev_non_ws(text, head - 1) };
            if !matches!(stmt_start, None | Some(b';') | Some(b'{') | Some(b'}')) {
                continue;
            }

            if call.callee == "ok" {
                // `… ).ok();` — result of a direct call shrugged away.
                let receiver_is_call =
                    call.receiver.as_deref().map(|r| r.contains('(')).unwrap_or(false);
                if receiver_is_call {
                    let method = call
                        .receiver
                        .as_deref()
                        .and_then(last_call_name)
                        .unwrap_or_else(|| "call".to_string());
                    findings.push(site(node, text, call.offset, format!("ok:{method}")));
                }
                continue;
            }

            // `self.fallible(…);` as a bare statement: flag only when
            // every resolved target's signature returns Result, so trait
            // fan-out with infallible impls stays quiet.
            if call.targets.is_empty() {
                continue;
            }
            if call
                .targets
                .iter()
                .all(|&t| returns_result(files, graph, t))
            {
                findings.push(site(node, text, call.offset, format!("unused_result:{}", call.callee)));
            }
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

fn site(node: &crate::callgraph::Node, text: &[u8], offset: usize, kind: String) -> BgErrorSite {
    BgErrorSite {
        file: node.file.clone(),
        function: node.name.clone(),
        crate_name: node.crate_name.clone(),
        line: line_of(text, offset),
        column: column_of(text, offset),
        kind,
    }
}

/// Argument spans of `spawn*`-named calls in `[start, end)` — the same
/// region the call graph marks `in_spawn`.
pub fn spawn_spans(text: &[u8], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = start;
    while i < end {
        if is_ident_byte(text[i]) && (i == 0 || !is_ident_byte(text[i - 1])) {
            let ws = i;
            while i < end && is_ident_byte(text[i]) {
                i += 1;
            }
            let word = &text[ws..i];
            if word.starts_with(b"spawn") {
                let mut j = i;
                while j < end && text[j].is_ascii_whitespace() {
                    j += 1;
                }
                if j < end && text[j] == b'(' {
                    let close = matching_paren(text, j, end);
                    spans.push((j + 1, close));
                }
            }
            continue;
        }
        i += 1;
    }
    spans
}

/// Matching `)` for the `(` at `open`, clamped to `end`.
fn matching_paren(text: &[u8], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        match text[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end
}

/// If a wildcard-only `let _ =` statement starts at `i`, returns the
/// offset just past the `=`.
fn let_underscore_at(text: &[u8], i: usize, end: usize) -> Option<usize> {
    if !text[i..].starts_with(b"let") || (i > 0 && is_ident_byte(text[i - 1])) {
        return None;
    }
    let mut j = i + 3;
    if j >= end || is_ident_byte(text[j]) {
        return None;
    }
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    if j >= end || text[j] != b'_' {
        return None;
    }
    j += 1;
    if j < end && is_ident_byte(text[j]) {
        return None; // `let _res = …` — named, observable, not flagged
    }
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    if j < end && text[j] == b'=' && (j + 1 >= end || text[j + 1] != b'=') {
        Some(j + 1)
    } else {
        None
    }
}

/// Offset just past the `;` ending the statement starting after `from`,
/// skipping nested parens/braces.
fn statement_end(text: &[u8], from: usize, end: usize) -> usize {
    let mut depth = 0isize;
    let mut i = from;
    while i < end {
        match text[i] {
            b'(' | b'{' | b'[' => depth += 1,
            b')' | b'}' | b']' => depth -= 1,
            b';' if depth <= 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    end
}

/// First fallible call name in `[lo, hi)`: a builtin name followed by
/// `(`, or a graph-resolved call in range whose targets return Result.
fn fallible_in(
    text: &[u8],
    lo: usize,
    hi: usize,
    graph: &CallGraph,
    files: &[SourceFile],
    node_id: usize,
) -> Option<String> {
    let mut i = lo;
    while i < hi {
        if is_ident_byte(text[i]) && (i == 0 || !is_ident_byte(text[i - 1])) {
            let ws = i;
            while i < hi && is_ident_byte(text[i]) {
                i += 1;
            }
            let mut j = i;
            while j < hi && text[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < hi && text[j] == b'(' {
                let name = std::str::from_utf8(&text[ws..i]).ok()?;
                if FALLIBLE.contains(&name) {
                    return Some(name.to_string());
                }
            }
            continue;
        }
        i += 1;
    }
    graph.calls[node_id]
        .iter()
        .find(|c| {
            c.offset >= lo
                && c.offset < hi
                && !c.targets.is_empty()
                && c.targets.iter().all(|&t| returns_result(files, graph, t))
        })
        .map(|c| c.callee.clone())
}

/// Closing `)` of the call whose name starts at `offset`.
fn call_close(text: &[u8], offset: usize, end: usize) -> Option<usize> {
    let mut i = offset;
    while i < end && is_ident_byte(text[i]) {
        i += 1;
    }
    // Skip turbofish / generic args the sanitizer left in place.
    while i < end && text[i].is_ascii_whitespace() {
        i += 1;
    }
    if i < end && text[i] == b'(' {
        let close = matching_paren(text, i, end);
        (close < end).then_some(close)
    } else {
        None
    }
}

fn next_non_ws(text: &[u8], mut i: usize, end: usize) -> Option<u8> {
    while i < end {
        if !text[i].is_ascii_whitespace() {
            return Some(text[i]);
        }
        i += 1;
    }
    None
}

fn prev_non_ws(text: &[u8], mut i: usize) -> Option<u8> {
    loop {
        if !text[i].is_ascii_whitespace() {
            return Some(text[i]);
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}

/// Start offset of the full receiver chain feeding the call whose name
/// begins at `i` — walks back over `self.inner.tx`, `a(x).b()?.c` style
/// chains, skipping balanced `(…)`/`[…]` groups and multiline breaks.
fn chain_start(text: &[u8], mut i: usize) -> usize {
    loop {
        let mut j = i;
        while j > 0 && text[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        if j == 0 {
            return i;
        }
        // Whitespace may only be crossed when the chain piece already
        // consumed starts with `.` (a multiline method chain) — an ident
        // on the far side of a space is a keyword or separate expression
        // (`return me.persist()`, `match rx.recv()`).
        if j != i && text.get(i) != Some(&b'.') {
            return i;
        }
        let b = text[j - 1];
        if b == b')' || b == b']' {
            let (open, close) = if b == b')' { (b'(', b')') } else { (b'[', b']') };
            let mut depth = 0usize;
            let mut k = j;
            while k > 0 {
                k -= 1;
                if text[k] == close {
                    depth += 1;
                } else if text[k] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            if text[k] != open {
                return i; // unbalanced — bail where we are
            }
            i = k;
        } else if is_ident_byte(b) || b == b'.' || b == b':' || b == b'?' {
            i = j - 1;
        } else {
            return i;
        }
    }
}

/// Does the node's `fn` signature mention `Result`?
fn returns_result(files: &[SourceFile], graph: &CallGraph, node_id: usize) -> bool {
    let node = &graph.nodes[node_id];
    let file = &files[node.file_idx];
    let func = &file.functions[node.func_idx];
    let text = &file.text;
    // Walk back from the body to the `fn <name>` keyword, then check the
    // signature slice for a Result return.
    let needle = format!("fn {}", func.name);
    let hay = &text[..func.body_start];
    let mut sig_start = None;
    let mut i = func.body_start;
    while i >= needle.len() {
        i -= 1;
        if hay[i..].starts_with(needle.as_bytes())
            && (i == 0 || !is_ident_byte(hay[i - 1]))
            && !is_ident_byte(hay[(i + needle.len()).min(hay.len() - 1)])
        {
            sig_start = Some(i);
            break;
        }
    }
    let Some(s) = sig_start else { return false };
    let sig = &text[s..func.body_start];
    sig.windows(2).rposition(|w| w == b"->").map_or(false, |arrow| {
        let ret = &sig[arrow..];
        ret.windows(6).any(|w| w == b"Result")
    })
}

/// Last `name(`-shaped call in a receiver chain string.
fn last_call_name(chain: &str) -> Option<String> {
    let bytes = chain.as_bytes();
    let open = bytes.iter().rposition(|&b| b == b'(')?;
    let mut i = open;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident_byte(bytes[i - 1]) {
        i -= 1;
    }
    (i < end).then(|| chain[i..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<BgErrorSite> {
        let files = vec![SourceFile::parse("crates/demo/src/lib.rs", src)];
        let graph = CallGraph::build(&files);
        check(&files, &graph)
    }

    #[test]
    fn let_underscore_send_in_spawn_flagged() {
        let found = run(
            "impl S { fn go(&self) { self.pool.spawn(move || { let _ = tx.send(5); }); } }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].kind, "let_underscore:send");
        assert_eq!(found[0].function, "go");
    }

    #[test]
    fn named_binding_is_observable_and_clean() {
        let found = run(
            "impl S { fn go(&self) { self.pool.spawn(move || { let _res = tx.send(5); log(_res); }); } }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn ok_discard_on_call_result_flagged() {
        let found =
            run("impl S { fn go(&self) { spawn(move || { sink.write_all(&buf).ok(); }); } }");
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].kind, "ok:write_all");
    }

    #[test]
    fn ok_used_as_value_is_clean() {
        let found = run(
            "impl S { fn go(&self) { spawn(move || { if sink.flush().ok().is_some() { mark(); } }); } }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn bare_statement_call_returning_result_flagged() {
        let found = run(
            "impl S {\n\
               fn persist(&self) -> Result<(), Error> { Ok(()) }\n\
               fn go(&self) { let me = self.clone(); spawn(move || { me.persist(); }); }\n\
             }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].kind, "unused_result:persist");
    }

    #[test]
    fn handled_result_is_clean() {
        let found = run(
            "impl S {\n\
               fn persist(&self) -> Result<(), Error> { Ok(()) }\n\
               fn go(&self) { let me = self.clone(); spawn(move || { if let Err(e) = me.persist() { log(e); } }); }\n\
             }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn outside_spawn_is_out_of_scope() {
        let found = run("impl S { fn go(&self) { let _ = tx.send(5); } }");
        assert!(found.is_empty(), "{found:?}");
    }
}
