//! Reporting layer: stable rule IDs and `text` / `json` / `sarif`
//! renderers over a [`LintReport`].
//!
//! Every analysis maps to a stable rule ID so findings are diffable
//! across runs and consumable by CI dashboards and SARIF viewers:
//!
//! | rule     | name               | analysis                              |
//! |----------|--------------------|---------------------------------------|
//! | MOCHI001 | lock-order-cycle   | cycle in the workspace lock graph     |
//! | MOCHI002 | recursive-lock     | identical-receiver re-lock            |
//! | MOCHI003 | panic-path         | unwrap/expect/panic in provider code  |
//! | MOCHI004 | blocking-in-ult    | blocking call inside a ULT closure    |
//! | MOCHI005 | data-plane-json    | serde_json on the RPC hot path        |
//! | MOCHI006 | rpc-unregistered   | call names an RPC nobody registers    |
//! | MOCHI007 | rpc-dead-surface   | registered RPC nobody calls           |
//! | MOCHI008 | rpc-type-mismatch  | register/forward arg or reply differ  |
//! | MOCHI009 | lock-across-yield  | guard held across a ULT suspension    |
//! | MOCHI010 | stale-allowlist    | allowlist entry matching no site      |
//! | MOCHI011 | raw-forward-in-client | forward bypasses the retry-aware chokepoint |
//! | MOCHI012 | deadline-loss      | handler-reachable forward drops the caller's deadline |
//! | MOCHI013 | retry-unsound      | non-idempotent effect behind a retryable RPC |
//! | MOCHI014 | relaxed-atomic     | Relaxed ordering on a cross-function decision flag |
//! | MOCHI015 | rpc-under-lock     | ordered-lock guard live across a forward-reaching call |
//! | MOCHI016 | swallowed-bg-error | fallible call's Result discarded inside a spawn body |
//! | MOCHI017 | unbounded-queue-growth | grow call into shared state in a handler-reachable loop |
//!
//! The JSON document is the machine-readable contract (written to
//! `target/lint-report.json` by `scripts/lint.sh`); SARIF 2.1.0 is for
//! code-scanning UIs.
//!
//! ## Baseline diffing
//!
//! Every finding carries a stable fingerprint — FNV-1a 64 over
//! `rule | normalized path | function | digit-stripped message`, plus an
//! occurrence ordinal for identical tuples — emitted in SARIF as
//! `partialFingerprints["mochiLintFingerprint/v1"]`. Line and column
//! are deliberately *not* hashed, so a finding keeps its identity when
//! unrelated edits shift the file; the digit-strip keeps messages that
//! embed counts or offsets stable too. `--baseline <file>` compares the
//! current run's fingerprints against a committed SARIF baseline and
//! fails only on fingerprints the baseline doesn't contain.

use std::fmt::Write as _;

use crate::LintReport;

/// One rendered finding with a stable rule ID and source span.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Stable rule ID (`MOCHI001` …).
    pub rule: &'static str,
    /// Human rule name (`lock-order-cycle` …).
    pub rule_name: &'static str,
    /// `error` for gate-failing findings, `warning` for stale-allowlist.
    pub level: &'static str,
    pub file: String,
    pub line: usize,
    pub column: usize,
    pub function: String,
    pub message: String,
}

/// Rule registry: (id, name, short description) — drives the SARIF
/// `rules` array and keeps IDs in one place.
pub const RULES: &[(&str, &str, &str)] = &[
    ("MOCHI001", "lock-order-cycle", "Cycle in the workspace lock-order graph (potential deadlock)"),
    ("MOCHI002", "recursive-lock", "Identical-receiver re-lock (immediate deadlock with parking_lot)"),
    ("MOCHI003", "panic-path", "Panic-capable call in an RPC/provider path"),
    ("MOCHI004", "blocking-in-ult", "Blocking call inside a ULT closure stalls an execution stream"),
    ("MOCHI005", "data-plane-json", "serde_json on the RPC hot path (must use the mochi-wire codec)"),
    ("MOCHI006", "rpc-unregistered", "Client forwards an RPC name no provider registers"),
    ("MOCHI007", "rpc-dead-surface", "Registered RPC never called from any client"),
    ("MOCHI008", "rpc-type-mismatch", "Argument or reply type disagrees between register and forward"),
    ("MOCHI009", "lock-across-yield", "Lock guard held across a ULT suspension point"),
    ("MOCHI010", "stale-allowlist", "lint-allow.json entry matches no current finding"),
    ("MOCHI011", "raw-forward-in-client", "forward call in a service client bypasses the retry-aware call/call_raw chokepoint"),
    ("MOCHI012", "deadline-loss", "forward reachable from an RPC handler rebuilds a TOP_LEVEL context, dropping the caller's deadline"),
    ("MOCHI013", "retry-unsound", "non-idempotent effect reachable from the handler of a declared-idempotent RPC"),
    ("MOCHI014", "relaxed-atomic", "Ordering::Relaxed on an atomic flag written and condition-read in different functions"),
    ("MOCHI015", "rpc-under-lock", "OrderedMutex/OrderedRwLock guard live across a call that transitively reaches a forward-family RPC"),
    ("MOCHI016", "swallowed-bg-error", "fallible call inside a spawn body whose Result is discarded instead of parked on the BackgroundExecutor"),
    ("MOCHI017", "unbounded-queue-growth", "push/send/extend into shared state inside a handler-reachable loop with no bound or drain evidence"),
];

/// Flattens a report into findings, errors first. Stale-allowlist
/// entries surface as `warning`-level MOCHI010 findings.
pub fn findings(report: &LintReport) -> Vec<Finding> {
    let mut out = Vec::new();
    for cycle in &report.lock_cycles {
        for edge in &cycle.edges {
            out.push(Finding {
                rule: "MOCHI001",
                rule_name: "lock-order-cycle",
                level: "error",
                file: edge.file.clone(),
                line: edge.line,
                column: edge.column,
                function: edge.function.clone(),
                message: format!(
                    "lock-order cycle between {}: edge {} -> {}",
                    cycle.locks.join(" <-> "),
                    edge.from,
                    edge.to
                ),
            });
        }
    }
    for r in &report.recursive_locks {
        out.push(Finding {
            rule: "MOCHI002",
            rule_name: "recursive-lock",
            level: "error",
            file: r.file.clone(),
            line: r.line,
            column: r.column,
            function: r.function.clone(),
            message: format!("{} re-acquired while already held — immediate deadlock", r.lock),
        });
    }
    for p in &report.panic_violations {
        out.push(Finding {
            rule: "MOCHI003",
            rule_name: "panic-path",
            level: "error",
            file: p.file.clone(),
            line: p.line,
            column: p.column,
            function: p.function.clone(),
            message: format!("{} in an RPC/provider path — propagate an error instead", p.kind),
        });
    }
    for b in &report.blocking_violations {
        out.push(Finding {
            rule: "MOCHI004",
            rule_name: "blocking-in-ult",
            level: "error",
            file: b.file.clone(),
            line: b.line,
            column: b.column,
            function: b.function.clone(),
            message: format!("{} inside a ULT closure would stall an xstream", b.kind),
        });
    }
    for j in &report.json_violations {
        out.push(Finding {
            rule: "MOCHI005",
            rule_name: "data-plane-json",
            level: "error",
            file: j.file.clone(),
            line: j.line,
            column: j.column,
            function: j.function.clone(),
            message: "serde_json on the RPC hot path — use the mochi-wire codec".to_string(),
        });
    }
    for c in &report.contract_violations {
        let (rule, rule_name) = if c.kind.starts_with("unregistered:") {
            ("MOCHI006", "rpc-unregistered")
        } else if c.kind.starts_with("dead:") {
            ("MOCHI007", "rpc-dead-surface")
        } else {
            ("MOCHI008", "rpc-type-mismatch")
        };
        out.push(Finding {
            rule,
            rule_name,
            level: "error",
            file: c.file.clone(),
            line: c.line,
            column: c.column,
            function: c.function.clone(),
            message: c.detail.clone(),
        });
    }
    for y in &report.yield_violations {
        out.push(Finding {
            rule: "MOCHI009",
            rule_name: "lock-across-yield",
            level: "error",
            file: y.file.clone(),
            line: y.line,
            column: y.column,
            function: y.function.clone(),
            message: format!(
                "lock {} held across `{}` — the guard outlives a ULT suspension point",
                y.lock, y.yield_call
            ),
        });
    }
    for r in &report.raw_forward_violations {
        out.push(Finding {
            rule: "MOCHI011",
            rule_name: "raw-forward-in-client",
            level: "error",
            file: r.file.clone(),
            line: r.line,
            column: r.column,
            function: r.function.clone(),
            message: format!(
                "raw `{}` in a service client — route through `call`/`call_raw` so retry, breaker, and deadline handling apply",
                r.kind
            ),
        });
    }
    for d in &report.deadline_violations {
        out.push(Finding {
            rule: "MOCHI012",
            rule_name: "deadline-loss",
            level: "error",
            file: d.file.clone(),
            line: d.line,
            column: d.column,
            function: d.function.clone(),
            message: format!(
                "`{}` rebuilds a TOP_LEVEL context on a handler-reachable path ({}) — thread `ctx.nested_context()` (or a `with_context` client) so the caller's deadline propagates",
                d.kind.trim_start_matches("drop:"),
                d.path.join(" -> ")
            ),
        });
    }
    for r in &report.retry_violations {
        out.push(Finding {
            rule: "MOCHI013",
            rule_name: "retry-unsound",
            level: "error",
            file: r.file.clone(),
            line: r.line,
            column: r.column,
            function: r.function.clone(),
            message: format!(
                "non-idempotent `{}` effect reachable from the handler of `{}`, which is declared idempotent — a transport-level retry would duplicate it",
                r.effect, r.rpc
            ),
        });
    }
    for a in &report.atomics_violations {
        let verb = if a.kind.starts_with("load:") { "decision load of" } else { "publish to" };
        out.push(Finding {
            rule: "MOCHI014",
            rule_name: "relaxed-atomic",
            level: "error",
            file: a.file.clone(),
            line: a.line,
            column: a.column,
            function: a.function.clone(),
            message: format!(
                "Relaxed {verb} atomic flag `{}` crossing functions — use Acquire for the decision load and Release for the publish",
                a.field
            ),
        });
    }
    for r in &report.rpc_lock_violations {
        out.push(Finding {
            rule: "MOCHI015",
            rule_name: "rpc-under-lock",
            level: "error",
            file: r.file.clone(),
            line: r.line,
            column: r.column,
            function: r.function.clone(),
            message: format!(
                "ordered lock {} held across `{}`, which reaches an RPC ({}) — drop the guard before the call or park the work",
                r.lock,
                r.kind.split(':').next().unwrap_or(&r.kind),
                r.path.join(" -> ")
            ),
        });
    }
    for b in &report.bg_error_violations {
        let (form, callee) = b.kind.split_once(':').unwrap_or(("discard", b.kind.as_str()));
        let how = match form {
            "let_underscore" => "discarded via `let _ =`",
            "ok" => "shrugged away via a statement-level `.ok()`",
            _ => "dropped as an unused statement value",
        };
        out.push(Finding {
            rule: "MOCHI016",
            rule_name: "swallowed-bg-error",
            level: "error",
            file: b.file.clone(),
            line: b.line,
            column: b.column,
            function: b.function.clone(),
            message: format!(
                "`{callee}` result {how} inside a spawn body — park the error on the BackgroundExecutor (or handle it) so the supervisor can see the task die"
            ),
        });
    }
    for q in &report.queue_violations {
        let mut parts = q.kind.splitn(3, ':');
        let _ = parts.next();
        let method = parts.next().unwrap_or("push");
        let base = parts.next().unwrap_or("queue");
        out.push(Finding {
            rule: "MOCHI017",
            rule_name: "unbounded-queue-growth",
            level: "error",
            file: q.file.clone(),
            line: q.line,
            column: q.column,
            function: q.function.clone(),
            message: format!(
                "`{method}` into shared `{base}` inside a handler-reachable loop ({}) with no bound check, capacity, or drain — add backpressure",
                q.path.join(" -> ")
            ),
        });
    }
    for s in &report.stale_entries {
        out.push(Finding {
            rule: "MOCHI010",
            rule_name: "stale-allowlist",
            level: "warning",
            file: "lint-allow.json".to_string(),
            line: 1,
            column: 1,
            function: s.section.clone(),
            message: format!(
                "stale allowlist entry ({} / {} / {} / count {}) matches no current finding — prune it",
                s.file, s.function, s.kind, s.count
            ),
        });
    }
    out
}

/// Human-readable report (the default `--format text`).
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mochi-lint: {} files, {} lock-order edges, {} RPC sites ({} named RPCs), {} frozen findings",
        report.files,
        report.lock_edges.len(),
        report.contract_sites.len(),
        report.rpc_names().len(),
        report.panic_allowed
            + report.blocking_allowed
            + report.json_allowed
            + report.contract_allowed
            + report.yield_allowed
            + report.raw_forward_allowed
            + report.deadline_allowed
            + report.retry_allowed
            + report.atomics_allowed
            + report.rpc_lock_allowed
            + report.bg_error_allowed
            + report.queue_allowed,
    );
    let _ = writeln!(
        out,
        "call graph: {} nodes, {} edges ({} resolved calls, {} unresolved, {} fallback edges)",
        report.graph_stats.nodes,
        report.graph_stats.edges,
        report.graph_stats.resolved_calls,
        report.graph_stats.unresolved_calls,
        report.graph_stats.fallback_edges,
    );
    for f in findings(report) {
        let _ = writeln!(
            out,
            "{} [{} {}] {}:{}:{} (fn {}): {}",
            f.level.to_uppercase(),
            f.rule,
            f.rule_name,
            f.file,
            f.line,
            f.column,
            f.function,
            f.message
        );
    }
    if report.is_clean() && report.stale_entries.is_empty() {
        let _ = writeln!(out, "OK: all thirteen analyses clean, allowlist has no stale entries");
    }
    out
}

/// Machine-readable JSON document.
pub fn render_json(report: &LintReport) -> String {
    let all = findings(report);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"version\": 1,");
    let _ = writeln!(out, "  \"summary\": {{");
    let _ = writeln!(out, "    \"files\": {},", report.files);
    let _ = writeln!(out, "    \"lock_edges\": {},", report.lock_edges.len());
    let _ = writeln!(out, "    \"rpc_sites\": {},", report.contract_sites.len());
    let _ = writeln!(out, "    \"rpc_names\": {},", report.rpc_names().len());
    let _ = writeln!(
        out,
        "    \"errors\": {},",
        all.iter().filter(|f| f.level == "error").count()
    );
    let _ = writeln!(out, "    \"stale_allowlist\": {},", report.stale_entries.len());
    let _ = writeln!(out, "    \"allowed\": {{");
    let _ = writeln!(out, "      \"panic_paths\": {},", report.panic_allowed);
    let _ = writeln!(out, "      \"blocking\": {},", report.blocking_allowed);
    let _ = writeln!(out, "      \"serde_json\": {},", report.json_allowed);
    let _ = writeln!(out, "      \"contracts\": {},", report.contract_allowed);
    let _ = writeln!(out, "      \"lock_across_yield\": {},", report.yield_allowed);
    let _ = writeln!(out, "      \"raw_forward\": {},", report.raw_forward_allowed);
    let _ = writeln!(out, "      \"deadline_loss\": {},", report.deadline_allowed);
    let _ = writeln!(out, "      \"retry_soundness\": {},", report.retry_allowed);
    let _ = writeln!(out, "      \"relaxed_atomics\": {},", report.atomics_allowed);
    let _ = writeln!(out, "      \"rpc_under_lock\": {},", report.rpc_lock_allowed);
    let _ = writeln!(out, "      \"background_errors\": {},", report.bg_error_allowed);
    let _ = writeln!(out, "      \"queue_growth\": {}", report.queue_allowed);
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"call_graph\": {{");
    let _ = writeln!(out, "      \"nodes\": {},", report.graph_stats.nodes);
    let _ = writeln!(out, "      \"edges\": {},", report.graph_stats.edges);
    let _ = writeln!(out, "      \"resolved\": {},", report.graph_stats.resolved_calls);
    let _ = writeln!(out, "      \"unresolved\": {},", report.graph_stats.unresolved_calls);
    let _ = writeln!(out, "      \"fallback\": {}", report.graph_stats.fallback_edges);
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"findings\": [");
    for (i, f) in all.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"rule\": {}, \"name\": {}, \"level\": {}, \"file\": {}, \"line\": {}, \"column\": {}, \"function\": {}, \"message\": {}}}",
            quote(f.rule),
            quote(f.rule_name),
            quote(f.level),
            quote(&f.file),
            f.line,
            f.column,
            quote(&f.function),
            quote(&f.message)
        );
        out.push_str(if i + 1 == all.len() { "\n" } else { ",\n" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"contracts\": [");
    let names = report.rpc_names();
    for (i, (name, registrations, calls)) in names.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"rpc\": {}, \"registrations\": {}, \"calls\": {}}}",
            quote(name),
            registrations,
            calls
        );
        out.push_str(if i + 1 == names.len() { "\n" } else { ",\n" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// SARIF 2.1.0 document for code-scanning UIs.
pub fn render_sarif(report: &LintReport) -> String {
    let all = findings(report);
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\","
    );
    let _ = writeln!(out, "  \"version\": \"2.1.0\",");
    let _ = writeln!(out, "  \"runs\": [");
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"tool\": {{");
    let _ = writeln!(out, "        \"driver\": {{");
    let _ = writeln!(out, "          \"name\": \"mochi-lint\",");
    let _ = writeln!(out, "          \"rules\": [");
    for (i, (id, name, description)) in RULES.iter().enumerate() {
        let _ = write!(
            out,
            "            {{\"id\": {}, \"name\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            quote(id),
            quote(name),
            quote(description)
        );
        out.push_str(if i + 1 == RULES.len() { "\n" } else { ",\n" });
    }
    let _ = writeln!(out, "          ]");
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "      }},");
    let _ = writeln!(out, "      \"results\": [");
    let prints = fingerprints(&all);
    for (i, f) in all.iter().enumerate() {
        let _ = write!(
            out,
            "        {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \"partialFingerprints\": {{\"{FINGERPRINT_KEY}\": {}}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
            quote(f.rule),
            quote(f.level),
            quote(&f.message),
            quote(&prints[i]),
            quote(&f.file),
            f.line.max(1),
            f.column.max(1)
        );
        out.push_str(if i + 1 == all.len() { "\n" } else { ",\n" });
    }
    let _ = writeln!(out, "      ]");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// The SARIF `partialFingerprints` key the baseline machinery owns.
/// Versioned so a future hash-scheme change can coexist with old
/// baselines during a migration.
pub const FINGERPRINT_KEY: &str = "mochiLintFingerprint/v1";

/// Stable fingerprints, parallel to `all`. The hash input is
/// `rule | normalized path | function | digit-stripped message`, plus a
/// per-tuple occurrence ordinal — never the line or column — so a
/// finding survives unrelated edits that shift the file, while two
/// identical findings in one function stay distinct.
pub fn fingerprints(all: &[Finding]) -> Vec<String> {
    use std::collections::BTreeMap;
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    all.iter()
        .map(|f| {
            let base = fingerprint_base(f);
            let ordinal = seen.entry(base.clone()).or_insert(0);
            let hash = fnv64(&format!("{base}#{ordinal}"));
            *ordinal += 1;
            format!("{hash:016x}")
        })
        .collect()
}

fn fingerprint_base(f: &Finding) -> String {
    let path = f.file.replace('\\', "/");
    let path = path.trim_start_matches("./");
    let message: String = f.message.chars().filter(|c| !c.is_ascii_digit()).collect();
    format!("{}|{}|{}|{}", f.rule, path, f.function, message)
}

/// FNV-1a 64 — dependency-free and stable across platforms.
fn fnv64(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Extracts the fingerprint set from a committed SARIF baseline.
/// Results without the versioned key are ignored (a baseline written by
/// an older tool simply matches nothing, so everything reports as new —
/// loud, not silent).
pub fn parse_baseline(text: &str) -> Result<std::collections::BTreeSet<String>, String> {
    let value = crate::allowlist::parse_json(text)?;
    let root = value.as_object().ok_or("baseline root must be an object")?;
    let runs = root
        .iter()
        .find(|(k, _)| k == "runs")
        .and_then(|(_, v)| v.as_array())
        .ok_or("baseline missing 'runs' array")?;
    let mut prints = std::collections::BTreeSet::new();
    for run in runs {
        let Some(results) = run
            .as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == "results"))
            .and_then(|(_, v)| v.as_array())
        else {
            continue;
        };
        for result in results {
            if let Some(fp) = result
                .as_object()
                .and_then(|o| o.iter().find(|(k, _)| k == "partialFingerprints"))
                .and_then(|(_, v)| v.as_object())
                .and_then(|o| o.iter().find(|(k, _)| k == FINGERPRINT_KEY))
                .and_then(|(_, v)| v.as_str())
            {
                prints.insert(fp.to_string());
            }
        }
    }
    Ok(prints)
}

/// Findings whose fingerprint the baseline doesn't contain — the delta
/// gate's input. Fixed findings (baseline entries matching nothing) are
/// fine: the gate fails only on *new* debt.
pub fn baseline_diff(report: &LintReport, baseline: &std::collections::BTreeSet<String>) -> Vec<Finding> {
    let all = findings(report);
    let prints = fingerprints(&all);
    all.into_iter()
        .zip(prints)
        .filter(|(_, fp)| !baseline.contains(fp))
        .map(|(f, _)| f)
        .collect()
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allowlist::Allowlist;
    use crate::source::SourceFile;

    fn demo_report() -> LintReport {
        let files = vec![
            SourceFile::parse(
                "crates/yokan/src/provider.rs",
                "pub mod rpc { pub const PUT: &str = \"yokan_put\"; }\nfn register(m: &M) { m.register_typed(rpc::PUT, 1, None, move |a: PutArgs, _| { let x = maybe.unwrap(); Ok(PutReply { n: x }) }); }",
            ),
            SourceFile::parse(
                "crates/yokan/src/client.rs",
                "use crate::provider::rpc;\nfn put(&self) { let _: PutReply = self.margo.forward(&a, rpc::PUT, 1, &PutArgs { n: 1 })?; }",
            ),
        ];
        crate::analyze(&files, &Allowlist::default())
    }

    #[test]
    fn findings_carry_stable_rule_ids() {
        let report = demo_report();
        let all = findings(&report);
        assert!(all.iter().any(|f| f.rule == "MOCHI003"), "{all:?}");
        for f in &all {
            assert!(RULES.iter().any(|(id, name, _)| *id == f.rule && *name == f.rule_name));
        }
    }

    #[test]
    fn json_document_parses_with_allowlist_reader() {
        // Reuse the crate's own minimal JSON parser as a syntax check.
        let report = demo_report();
        let json = render_json(&report);
        assert!(crate::allowlist::Allowlist::from_json(&json).is_err()); // wrong schema…
        assert!(json.contains("\"findings\""));
        assert!(json.contains("\"rpc\": \"yokan_put\""));
        assert!(json.contains("MOCHI003"));
    }

    #[test]
    fn sarif_document_lists_all_rules() {
        let report = demo_report();
        let sarif = render_sarif(&report);
        for (id, _, _) in RULES {
            assert!(sarif.contains(id), "missing {id}");
        }
        assert!(sarif.contains("\"version\": \"2.1.0\""));
    }

    #[test]
    fn sarif_results_carry_versioned_fingerprints() {
        let report = demo_report();
        let sarif = render_sarif(&report);
        assert!(sarif.contains(FINGERPRINT_KEY), "{sarif}");
        let prints = parse_baseline(&sarif).unwrap();
        assert_eq!(prints.len(), findings(&report).len(), "one fingerprint per finding");
    }

    #[test]
    fn fingerprints_ignore_line_drift() {
        let report = demo_report();
        let all = findings(&report);
        let before = fingerprints(&all);
        let mut shifted = all.clone();
        for f in &mut shifted {
            f.line += 50;
            f.column += 3;
        }
        assert_eq!(before, fingerprints(&shifted));
    }

    #[test]
    fn duplicate_findings_get_distinct_ordinals() {
        let report = demo_report();
        let all = findings(&report);
        let mut doubled = all.clone();
        doubled.extend(all.iter().cloned());
        let prints = fingerprints(&doubled);
        let unique: std::collections::BTreeSet<_> = prints.iter().collect();
        assert_eq!(unique.len(), prints.len(), "every occurrence distinct: {prints:?}");
    }

    #[test]
    fn baseline_diff_reports_only_new_findings() {
        let report = demo_report();
        let baseline = parse_baseline(&render_sarif(&report)).unwrap();
        assert!(baseline_diff(&report, &baseline).is_empty(), "self-diff must be empty");
        assert_eq!(
            baseline_diff(&report, &std::collections::BTreeSet::new()).len(),
            findings(&report).len(),
            "empty baseline reports everything as new"
        );
    }

    #[test]
    fn stale_entries_render_as_warnings() {
        let mut allowlist = Allowlist::default();
        allowlist.panic_paths.insert(
            ("gone.rs".to_string(), "gone".to_string(), "unwrap".to_string()),
            1,
        );
        let report = crate::analyze(&[], &allowlist);
        let all = findings(&report);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].rule, "MOCHI010");
        assert_eq!(all[0].level, "warning");
    }
}
