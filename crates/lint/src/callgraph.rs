//! Workspace-wide call graph for the interprocedural analyses
//! (MOCHI012/013/014).
//!
//! Nodes are the function bodies [`crate::source::SourceFile`] already
//! extracts; edges are calls resolved lexically:
//!
//! * **Direct** — free or path calls (`helper(x)`, `storage::load_log(p)`,
//!   `Type::new(…)`, `Self::replicator_loop(…)`) resolved same-file
//!   first, then same-crate-unique, then workspace-unique.
//! * **Method** — `recv.method(…)` where the receiver's type is inferred
//!   (see below) and an `impl Type` block defines the method.
//! * **Trait** — `recv.method(…)` where the receiver is a `dyn Trait`
//!   object; the edge fans out to every `impl Trait for …` method.
//! * **Fallback** — the receiver could not be typed, but exactly one
//!   workspace function bears the method name and the name is not a
//!   common std method (`lock`, `push`, `remove`, …). Counted separately
//!   so resolution regressions are visible.
//!
//! Receiver-type inference handles: `self` (innermost `impl` owner),
//! `self.field.field` chains through a struct-field index (transparent
//! through `Arc`/`Box`/`Mutex`/`RwLock` wrappers and `.lock()`-style
//! guard calls), `let x: T`, `let x = Type { … }`, `let x = Type::new(…)`,
//! `let x = Arc::new(Inner { … })`, `let x = Arc::clone(&y)`,
//! `let x = self.clone()`, and `ident: T` annotations anywhere in the
//! enclosing function (parameters and closure parameters alike).
//!
//! Method calls the graph deliberately does **not** resolve: calls on
//! generic parameters and unannotated closure parameters, and calls
//! whose name no workspace function defines (std/external). The former
//! increment [`CallGraph::unresolved_calls`] when the name exists in the
//! workspace — the fixture tests pin that count so silent resolution
//! regressions fail loudly.
//!
//! **Fire-and-forget boundary:** any call site lexically inside the
//! argument span of a `spawn`-family call (`std::thread::spawn`,
//! `Builder::new().spawn`, `ExecutionStream::spawn`, …) produces no
//! edge. Work handed to another thread/ULT no longer runs under the
//! caller's RPC deadline, so walking into it would make every
//! background replication loop a false deadline-loss positive.

use std::collections::{BTreeMap, BTreeSet};

use crate::contracts::{
    matching_paren, normalize_type, parse_turbofish, preceded_by_fn_keyword, skip_ws, split_args,
    word_at,
};
use crate::lexer::{column_of, is_ident_byte, line_of, matching_brace};
use crate::source::SourceFile;

/// How a call edge was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    Direct,
    Method,
    Trait,
    Fallback,
}

/// One resolved call edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub to: usize,
    pub kind: EdgeKind,
}

/// One function in the graph.
#[derive(Debug, Clone)]
pub struct Node {
    pub file_idx: usize,
    pub func_idx: usize,
    /// Function name.
    pub name: String,
    /// Workspace-relative file path.
    pub file: String,
    pub crate_name: String,
    /// Owner type when the function sits inside an `impl` block.
    pub impl_type: Option<String>,
    pub start_line: usize,
}

/// One call site observed in a function body, with enough context for
/// the analyses to classify it without re-parsing the file.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Method or function name at the site.
    pub callee: String,
    /// Offset of the name in the sanitized text.
    pub offset: usize,
    pub line: usize,
    pub column: usize,
    /// Receiver expression for method calls (`self.inner.margo`).
    pub receiver: Option<String>,
    /// Inferred receiver type, when inference succeeded.
    pub receiver_type: Option<String>,
    /// Argument spans (sanitized-text offsets) of the call.
    pub args: Vec<(usize, usize)>,
    /// Graph targets the site resolved to (empty for external calls).
    pub targets: Vec<usize>,
    /// True when the site sits inside a `spawn(…)` argument span — a
    /// fire-and-forget boundary the reachability walk does not cross.
    pub in_spawn: bool,
}

/// Summary counters, surfaced in the report.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    pub nodes: usize,
    pub edges: usize,
    pub resolved_calls: usize,
    pub unresolved_calls: usize,
    pub fallback_edges: usize,
}

/// The workspace call graph.
pub struct CallGraph {
    pub nodes: Vec<Node>,
    /// Adjacency list, deduplicated, parallel to `nodes`.
    pub edges: Vec<Vec<Edge>>,
    /// Every call site per node, parallel to `nodes`.
    pub calls: Vec<Vec<CallSite>>,
    /// Method/path calls that resolved to at least one node.
    pub resolved_calls: usize,
    /// Method calls whose name exists in the workspace but whose
    /// receiver could not be typed (and no fallback applied).
    pub unresolved_calls: usize,
    /// Edges added by the unique-name fallback.
    pub fallback_edges: usize,
    node_ids: BTreeMap<(usize, usize), usize>,
}

/// Method names too common in std to trust the unique-name fallback.
const FALLBACK_DENY: &[&str] = &[
    "abort", "append", "clear", "clone", "close", "collect", "commit", "contains", "contains_key",
    "drain", "entry", "expect", "extend", "filter", "find", "flush", "get", "insert", "into",
    "is_empty", "iter", "join", "keys", "len", "load", "lock", "map", "next", "new", "open",
    "parse", "pop", "push", "read", "recv", "remove", "run", "send", "sort", "start", "stop",
    "store", "swap", "take", "to_string", "unwrap", "values", "wait", "write",
];

/// Free-call names never resolved (std preludes and common shadows).
const FREE_DENY: &[&str] =
    &["drop", "default", "format", "matches", "min", "max", "new", "write", "writeln"];

/// Keywords that look like `ident (` at statement level.
const KEYWORDS: &[&str] = &[
    "as", "break", "continue", "crate", "dyn", "else", "enum", "fn", "for", "if", "impl", "in",
    "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "self", "Self",
    "struct", "super", "trait", "unsafe", "use", "where", "while",
];

/// Guard-producing or type-preserving chain segments the field-hop
/// resolver can see through (`self.state.lock().remove(…)`).
const TRANSPARENT_SEGMENTS: &[&str] =
    &["as_mut()", "as_ref()", "borrow()", "borrow_mut()", "clone()", "lock()", "read()", "write()"];

struct Indexes {
    /// `(owner type, method) → node ids`.
    methods_of_type: BTreeMap<(String, String), Vec<usize>>,
    /// `(trait, method) → node ids` across every `impl Trait for T`.
    trait_methods: BTreeMap<(String, String), Vec<usize>>,
    /// `(struct, field) → base field type`.
    field_types: BTreeMap<(String, String), String>,
    /// Function name → node ids, workspace-wide.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Per file: `(impl span, owner, trait)` blocks.
    impls: Vec<Vec<(usize, usize, String, Option<String>)>>,
}

impl CallGraph {
    /// Builds the graph over already-parsed sources.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut node_ids = BTreeMap::new();
        let mut impls = Vec::with_capacity(files.len());
        for (file_idx, file) in files.iter().enumerate() {
            let file_impls = impl_blocks(&file.text);
            for (func_idx, func) in file.functions.iter().enumerate() {
                let impl_type = file_impls
                    .iter()
                    .filter(|(s, e, _, _)| *s <= func.body_start && func.body_start < *e)
                    .min_by_key(|(s, e, _, _)| e - s)
                    .map(|(_, _, owner, _)| owner.clone());
                let id = nodes.len();
                node_ids.insert((file_idx, func_idx), id);
                nodes.push(Node {
                    file_idx,
                    func_idx,
                    name: func.name.clone(),
                    file: file.rel_path.clone(),
                    crate_name: file.crate_name.clone(),
                    impl_type,
                    start_line: func.start_line,
                });
            }
            impls.push(file_impls);
        }

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, node) in nodes.iter().enumerate() {
            by_name.entry(node.name.clone()).or_default().push(id);
        }
        let mut methods_of_type: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut trait_methods: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (id, node) in nodes.iter().enumerate() {
            let func = &files[node.file_idx].functions[node.func_idx];
            let innermost = impls[node.file_idx]
                .iter()
                .filter(|(s, e, _, _)| *s <= func.body_start && func.body_start < *e)
                .min_by_key(|(s, e, _, _)| e - s);
            if let Some((_, _, owner, trait_name)) = innermost {
                methods_of_type.entry((owner.clone(), node.name.clone())).or_default().push(id);
                if let Some(trait_name) = trait_name {
                    trait_methods
                        .entry((trait_name.clone(), node.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
        let mut field_types = BTreeMap::new();
        for file in files {
            struct_fields(&file.text, &mut field_types);
        }
        let indexes = Indexes { methods_of_type, trait_methods, field_types, by_name, impls };

        let mut graph = CallGraph {
            edges: vec![Vec::new(); nodes.len()],
            calls: vec![Vec::new(); nodes.len()],
            nodes,
            resolved_calls: 0,
            unresolved_calls: 0,
            fallback_edges: 0,
            node_ids,
        };
        for (file_idx, file) in files.iter().enumerate() {
            graph.scan_file(file, file_idx, &indexes);
        }
        for edges in &mut graph.edges {
            edges.sort();
            edges.dedup();
        }
        graph
    }

    /// Node ids whose function matches `(file, function)` — the shape
    /// contract sites are keyed by.
    pub fn nodes_named(&self, file: &str, function: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file && n.name == function)
            .map(|(id, _)| id)
            .collect()
    }

    /// Summary counters for the report.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            nodes: self.nodes.len(),
            edges: self.edges.iter().map(Vec::len).sum(),
            resolved_calls: self.resolved_calls,
            unresolved_calls: self.unresolved_calls,
            fallback_edges: self.fallback_edges,
        }
    }

    /// BFS from `entries`; `descend` filters which nodes the walk may
    /// enter. Returns `node → parent` (entries map to themselves), so
    /// callers can reconstruct a witness path.
    pub fn reachable(
        &self,
        entries: &[usize],
        descend: impl Fn(&Node) -> bool,
    ) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &entry in entries {
            if parent.insert(entry, entry).is_none() {
                queue.push_back(entry);
            }
        }
        while let Some(id) = queue.pop_front() {
            for edge in &self.edges[id] {
                if parent.contains_key(&edge.to) || !descend(&self.nodes[edge.to]) {
                    continue;
                }
                parent.insert(edge.to, id);
                queue.push_back(edge.to);
            }
        }
        parent
    }

    /// Witness path `entry -> … -> node` as function names.
    pub fn path_names(&self, parents: &BTreeMap<usize, usize>, mut node: usize) -> Vec<String> {
        let mut path = vec![self.nodes[node].name.clone()];
        while let Some(&p) = parents.get(&node) {
            if p == node {
                break;
            }
            node = p;
            path.push(self.nodes[node].name.clone());
        }
        path.reverse();
        path
    }

    fn scan_file(&mut self, file: &SourceFile, file_idx: usize, indexes: &Indexes) {
        let text = &file.text;
        let mut spawn_spans: Vec<(usize, usize)> = Vec::new();
        let mut i = 1usize;
        while i < text.len() {
            if !is_ident_byte(text[i]) || is_ident_byte(text[i - 1]) {
                i += 1;
                continue;
            }
            let start = i;
            let mut k = i;
            while k < text.len() && is_ident_byte(text[k]) {
                k += 1;
            }
            let word = String::from_utf8_lossy(&text[start..k]).into_owned();
            i = k;
            if KEYWORDS.contains(&word.as_str()) || word.as_bytes()[0].is_ascii_digit() {
                continue;
            }
            if text.get(k) == Some(&b'!') {
                continue; // macro invocation
            }
            let mut j = k;
            let _turbofish = parse_turbofish(text, &mut j);
            j = skip_ws(text, j);
            if text.get(j) != Some(&b'(') {
                continue;
            }
            let open = j;
            let close = matching_paren(text, open);
            // Attribute the site to the innermost enclosing function.
            let Some(func_idx) = file
                .functions
                .iter()
                .enumerate()
                .filter(|(_, f)| f.body_start <= start && start < f.body_end)
                .min_by_key(|(_, f)| f.body_end - f.body_start)
                .map(|(idx, _)| idx)
            else {
                continue;
            };
            let node_id = self.node_ids[&(file_idx, func_idx)];
            let in_spawn = spawn_spans.iter().any(|&(s, e)| s <= start && start < e);
            if word.starts_with("spawn") {
                spawn_spans.push((open + 1, close));
            }

            let before = text[start - 1];
            let mut receiver = None;
            let mut receiver_type = None;
            let mut targets: Vec<usize> = Vec::new();
            let mut counts_as_unresolved = false;
            if before == b'.' {
                // Method call: type the receiver, then look the method up.
                let rstart = receiver_start(text, start - 1);
                // Strip line breaks and indentation out of multiline chains
                // so `self\n.inner\n.margo` types like `self.inner.margo`.
                let rtext: String =
                    String::from_utf8_lossy(&text[rstart..start - 1]).split_whitespace().collect();
                receiver_type = self.receiver_type(file, file_idx, indexes, rstart, &rtext, 0);
                receiver = Some(rtext);
                match receiver_type.as_deref() {
                    Some(t) if t.starts_with("dyn ") => {
                        if let Some(impls) =
                            indexes.trait_methods.get(&(t[4..].to_string(), word.clone()))
                        {
                            targets = impls.clone();
                        }
                    }
                    Some(t) => {
                        if let Some(methods) =
                            indexes.methods_of_type.get(&(t.to_string(), word.clone()))
                        {
                            targets = methods.clone();
                        }
                    }
                    None => {
                        if let Some(candidates) = indexes.by_name.get(&word) {
                            if candidates.len() == 1 && !FALLBACK_DENY.contains(&word.as_str()) {
                                targets = candidates.clone();
                                if !in_spawn {
                                    self.fallback_edges += 1;
                                }
                            } else {
                                counts_as_unresolved = true;
                            }
                        }
                    }
                }
                let kind = match receiver_type.as_deref() {
                    Some(t) if t.starts_with("dyn ") => EdgeKind::Trait,
                    Some(_) => EdgeKind::Method,
                    None => EdgeKind::Fallback,
                };
                if !in_spawn {
                    for &to in &targets {
                        self.edges[node_id].push(Edge { to, kind });
                    }
                }
            } else if start >= 2 && text[start - 1] == b':' && text[start - 2] == b':' {
                // Path call: `Type::method(…)`, `Self::f(…)`, `mod::f(…)`.
                let (path_start, segments) = path_segments(text, start);
                let _ = path_start;
                let qualifier = segments.iter().rev().nth(1).cloned().unwrap_or_default();
                let owner = if qualifier == "Self" {
                    self.nodes[node_id].impl_type.clone()
                } else if qualifier.chars().next().map(char::is_uppercase).unwrap_or(false) {
                    Some(base_of(&qualifier).unwrap_or(qualifier.clone()))
                } else {
                    None
                };
                if let Some(owner) = owner {
                    if let Some(methods) = indexes.methods_of_type.get(&(owner, word.clone())) {
                        targets = methods.clone();
                    }
                } else {
                    targets = resolve_free(indexes, &self.nodes, file_idx, &word);
                }
                if !in_spawn {
                    for &to in &targets {
                        self.edges[node_id].push(Edge { to, kind: EdgeKind::Direct });
                    }
                }
            } else {
                // Free call.
                if preceded_by_fn_keyword(text, start) || FREE_DENY.contains(&word.as_str()) {
                    continue;
                }
                targets = resolve_free(indexes, &self.nodes, file_idx, &word);
                if !in_spawn {
                    for &to in &targets {
                        self.edges[node_id].push(Edge { to, kind: EdgeKind::Direct });
                    }
                }
            }
            if !targets.is_empty() {
                self.resolved_calls += 1;
            } else if counts_as_unresolved {
                self.unresolved_calls += 1;
            }
            self.calls[node_id].push(CallSite {
                callee: word,
                offset: start,
                line: line_of(text, start),
                column: column_of(text, start),
                receiver,
                receiver_type,
                args: split_args(text, open + 1, close),
                targets,
                in_spawn,
            });
        }
    }

    /// Types a method-call receiver expression.
    fn receiver_type(
        &self,
        file: &SourceFile,
        file_idx: usize,
        indexes: &Indexes,
        offset: usize,
        receiver: &str,
        depth: usize,
    ) -> Option<String> {
        if depth > 4 {
            return None;
        }
        let segments = split_chain(receiver)?;
        let mut segs = segments.iter();
        let first = segs.next()?;
        let mut current = if first == "self" {
            self.owner_at(file_idx, indexes, offset)?
        } else if first.bytes().all(is_ident_byte) {
            self.ident_type(file, file_idx, indexes, offset, first, depth)?
        } else {
            return None;
        };
        for seg in segs {
            if TRANSPARENT_SEGMENTS.contains(&seg.as_str()) {
                continue;
            }
            if !seg.bytes().all(is_ident_byte) {
                return None; // an untyped method call in the chain
            }
            let next = indexes.field_types.get(&(current.clone(), seg.clone()))?;
            current = next.clone();
        }
        Some(current)
    }

    /// `impl` owner of the innermost impl block containing `offset`.
    fn owner_at(&self, file_idx: usize, indexes: &Indexes, offset: usize) -> Option<String> {
        indexes.impls[file_idx]
            .iter()
            .filter(|(s, e, _, _)| *s <= offset && offset < *e)
            .min_by_key(|(s, e, _, _)| e - s)
            .map(|(_, _, owner, _)| owner.clone())
    }

    /// Types a plain identifier: `let` bindings (annotation or known RHS
    /// shapes), then any `ident: T` annotation in the enclosing function
    /// (parameters and closure parameters).
    fn ident_type(
        &self,
        file: &SourceFile,
        file_idx: usize,
        indexes: &Indexes,
        offset: usize,
        ident: &str,
        depth: usize,
    ) -> Option<String> {
        // A shadowing binding (`let margo = margo.clone();`) recurses back
        // into itself through `rhs_type`; the cap makes that a miss, not a
        // stack overflow.
        if depth > 4 {
            return None;
        }
        let text = &file.text;
        let function = file.function_at(offset)?;
        let body = &text[function.body_start..offset.min(function.body_end)];
        let needle = ident.as_bytes();
        // Nearest preceding `let [mut] ident` binding.
        let mut best: Option<usize> = None;
        let mut k = 0usize;
        while k + needle.len() <= body.len() {
            if &body[k..k + needle.len()] == needle
                && (k == 0 || !is_ident_byte(body[k - 1]))
                && !body.get(k + needle.len()).map(|&b| is_ident_byte(b)).unwrap_or(false)
            {
                let before = String::from_utf8_lossy(&body[k.saturating_sub(12)..k]);
                // `let $server = self.clone();` inside a macro_rules!
                // body binds the ident the expansion sites use — strip
                // the metavariable sigil so the binding still matches.
                let before = before.trim_end_matches('$').trim_end();
                if before.ends_with("let") || before.ends_with("let mut") {
                    best = Some(k);
                }
            }
            k += 1;
        }
        if let Some(k) = best {
            let after = function.body_start + k + needle.len();
            let mut j = skip_ws(text, after);
            if text.get(j) == Some(&b':') {
                let type_start = j + 1;
                let mut depth_angle = 0i32;
                j = type_start;
                while j < function.body_end {
                    match text[j] {
                        b'<' => depth_angle += 1,
                        b'>' => depth_angle -= 1,
                        b'=' | b';' if depth_angle == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let annotation = String::from_utf8_lossy(&text[type_start..j]).into_owned();
                return normalize_type(&annotation).as_deref().and_then(base_of);
            }
            if text.get(j) == Some(&b'=') {
                let rhs_start = skip_ws(text, j + 1);
                let mut semi = rhs_start;
                let mut d = 0i32;
                while semi < function.body_end {
                    match text[semi] {
                        b'(' | b'[' | b'{' => d += 1,
                        b')' | b']' | b'}' => d -= 1,
                        b';' if d == 0 => break,
                        _ => {}
                    }
                    semi += 1;
                }
                let rhs = String::from_utf8_lossy(&text[rhs_start..semi]).trim().to_string();
                return self.rhs_type(file, file_idx, indexes, offset, &rhs, depth);
            }
        }
        // `ident: T` annotation anywhere in the function (signature and
        // body, which covers closure parameters).
        let sig_start = text[..function.body_start]
            .windows(3)
            .rposition(|w| &w[..2] == b"fn" && w[2].is_ascii_whitespace())
            .unwrap_or(function.body_start);
        let span = &text[sig_start..function.body_end.min(text.len())];
        let mut k = 0usize;
        let mut last: Option<String> = None;
        while k + needle.len() <= span.len() {
            if &span[k..k + needle.len()] == needle
                && (k == 0 || !is_ident_byte(span[k - 1]))
                && !span.get(k + needle.len()).map(|&b| is_ident_byte(b)).unwrap_or(false)
            {
                let mut j = skip_ws(span, k + needle.len());
                if span.get(j) == Some(&b':') && span.get(j + 1) != Some(&b':') {
                    let type_start = j + 1;
                    let mut d = 0i32;
                    j = type_start;
                    while j < span.len() {
                        match span[j] {
                            b'<' | b'(' | b'[' => d += 1,
                            b'>' | b')' | b']' if d > 0 => d -= 1,
                            b',' | b'|' | b')' | b'=' | b'{' | b';' if d == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    let candidate = String::from_utf8_lossy(&span[type_start..j]).into_owned();
                    if let Some(base) =
                        normalize_type(&candidate).as_deref().and_then(base_of)
                    {
                        // Only trust bases that name a workspace type or
                        // trait — struct-literal fields (`token: args.token`)
                        // produce expression garbage this filters out.
                        if known_type(indexes, &base) {
                            last = Some(base);
                        }
                    }
                }
            }
            k += 1;
        }
        last
    }

    /// Types a `let` RHS with the constructor shapes the workspace uses.
    fn rhs_type(
        &self,
        file: &SourceFile,
        file_idx: usize,
        indexes: &Indexes,
        offset: usize,
        rhs: &str,
        depth: usize,
    ) -> Option<String> {
        let mut rhs = rhs.trim();
        // Unwrap smart-pointer constructors: `Arc::new(inner)` → `inner`.
        loop {
            let mut stripped = false;
            for wrapper in ["Arc::new(", "Box::new(", "Rc::new(", "Some("] {
                if let Some(rest) = rhs.strip_prefix(wrapper) {
                    rhs = rest.strip_suffix(')').unwrap_or(rest).trim();
                    stripped = true;
                }
            }
            if !stripped {
                break;
            }
        }
        for cloner in ["Arc::clone(&", "Rc::clone(&"] {
            if let Some(rest) = rhs.strip_prefix(cloner) {
                let inner = rest.strip_suffix(')').unwrap_or(rest).trim();
                if inner == "self" {
                    return self.owner_at(file_idx, indexes, offset);
                }
                if inner.bytes().all(is_ident_byte) {
                    return self.ident_type(file, file_idx, indexes, offset, inner, depth + 1);
                }
                return None;
            }
        }
        if rhs == "self.clone()" {
            return self.owner_at(file_idx, indexes, offset);
        }
        if let Some(inner) = rhs.strip_suffix(".clone()") {
            if inner == "self" {
                return self.owner_at(file_idx, indexes, offset);
            }
            if inner.bytes().all(is_ident_byte) {
                return self.ident_type(file, file_idx, indexes, offset, inner, depth + 1);
            }
        }
        // `Type { … }` struct literal or `Type::ctor(…)` constructor call.
        let head_end = rhs
            .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
            .unwrap_or(rhs.len());
        let head = &rhs[..head_end];
        let after = rhs[head_end..].trim_start();
        if !head.is_empty() {
            let last = head.rsplit("::").next().unwrap_or(head);
            let qualifier = {
                let mut parts: Vec<&str> = head.split("::").collect();
                parts.pop();
                parts.pop().unwrap_or("")
            };
            if after.starts_with('{')
                && last.chars().next().map(char::is_uppercase).unwrap_or(false)
            {
                return Some(last.to_string());
            }
            if after.starts_with('(')
                && head.contains("::")
                && qualifier.is_empty()
                // `Type::ctor(…)` — the segment before the fn is the type.
            {
                let type_seg = head.split("::").next().unwrap_or("");
                if type_seg.chars().next().map(char::is_uppercase).unwrap_or(false)
                    && known_type(indexes, type_seg)
                {
                    return Some(type_seg.to_string());
                }
            }
        }
        None
    }
}

/// Whether `name` is a type (or trait) the workspace defines — used to
/// reject expression garbage picked up by the annotation scan.
fn known_type(indexes: &Indexes, name: &str) -> bool {
    // Trait-object bases arrive as `dyn Trait`; the indexes key traits
    // bare.
    let name = name.strip_prefix("dyn ").unwrap_or(name);
    indexes.methods_of_type.keys().any(|(t, _)| t == name)
        || indexes.trait_methods.keys().any(|(t, _)| t == name)
        || indexes.field_types.keys().any(|(t, _)| t == name)
}

/// Resolves a free-function call: same file, then same-crate unique,
/// then workspace unique.
fn resolve_free(indexes: &Indexes, nodes: &[Node], file_idx: usize, name: &str) -> Vec<usize> {
    let Some(candidates) = indexes.by_name.get(name) else { return Vec::new() };
    let same_file: Vec<usize> =
        candidates.iter().copied().filter(|&id| nodes[id].file_idx == file_idx).collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let crate_name = nodes
        .iter()
        .find(|n| n.file_idx == file_idx)
        .map(|n| n.crate_name.clone())
        .unwrap_or_default();
    let same_crate: Vec<usize> =
        candidates.iter().copied().filter(|&id| nodes[id].crate_name == crate_name).collect();
    if same_crate.len() == 1 {
        return same_crate;
    }
    if same_crate.is_empty() && candidates.len() == 1 {
        return candidates.clone();
    }
    Vec::new()
}

/// Walks back from the `.` of a method call to the start of the
/// receiver chain (`self.inner.margo`, `foo(x).bar`, `list[0]`).
fn receiver_start(text: &[u8], dot: usize) -> usize {
    let mut i = dot;
    while i > 0 {
        let b = text[i - 1];
        if is_ident_byte(b) || b == b'.' {
            i -= 1;
        } else if b.is_ascii_whitespace() {
            // Whitespace belongs to the chain only when it touches a `.`
            // (multiline builder chains: `self\n.inner\n.margo\n.forward`);
            // anything else ends the receiver.
            let right = text[i];
            let mut p = i;
            while p > 0 && text[p - 1].is_ascii_whitespace() {
                p -= 1;
            }
            if right == b'.' || (p > 0 && text[p - 1] == b'.') {
                i = p;
            } else {
                break;
            }
        } else if b == b')' || b == b']' {
            let (open, class) = if b == b')' { (b'(', b')') } else { (b'[', b']') };
            let mut depth = 0usize;
            while i > 0 {
                let c = text[i - 1];
                if c == class {
                    depth += 1;
                } else if c == open {
                    depth -= 1;
                    if depth == 0 {
                        i -= 1;
                        break;
                    }
                }
                i -= 1;
            }
        } else if b == b'?' {
            i -= 1;
        } else {
            break;
        }
    }
    i
}

/// Splits a receiver chain on top-level dots: `self.a.lock().b` →
/// `["self", "a", "lock()", "b"]`. Returns `None` for expressions the
/// resolver does not model (leading calls, indexing, parens).
fn split_chain(receiver: &str) -> Option<Vec<String>> {
    let bytes = receiver.as_bytes();
    let mut segments = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'.' if depth == 0 => {
                segments.push(receiver[start..i].to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    segments.push(receiver[start..].to_string());
    if segments.iter().any(|s| s.is_empty()) {
        return None;
    }
    Some(segments)
}

/// Path segments ending at the ident starting at `offset` (which is
/// preceded by `::`): for `a::B::c(`, returns `["a", "B", "c"]`.
fn path_segments(text: &[u8], offset: usize) -> (usize, Vec<String>) {
    let mut i = offset;
    // offset points at the final ident; walk back over `::ident` pairs.
    while i >= 2 && text[i - 1] == b':' && text[i - 2] == b':' {
        let mut j = i - 2;
        // `<Type as Trait>::` — stop, not modeled.
        if j > 0 && text[j - 1] == b'>' {
            break;
        }
        while j > 0 && is_ident_byte(text[j - 1]) {
            j -= 1;
        }
        if j == i - 2 {
            break;
        }
        i = j;
    }
    let mut end = offset;
    while end < text.len() && is_ident_byte(text[end]) {
        end += 1;
    }
    let path = String::from_utf8_lossy(&text[i..end]).into_owned();
    (i, path.split("::").map(str::to_string).collect())
}

/// Base type ident of a normalized type string: strips smart-pointer and
/// lock wrappers, keeps `dyn Trait` markers, drops generics.
/// `Arc<Mutex<HashMap<String,Transfer>>>` → `HashMap`;
/// `Arc<dynProviderModule+Send>` → `dyn ProviderModule`.
pub(crate) fn base_of(normalized: &str) -> Option<String> {
    let mut t = normalized.trim();
    loop {
        let mut stripped = false;
        for w in ["Arc<", "Box<", "Rc<", "Mutex<", "RwLock<", "RefCell<", "Cell<", "Option<"] {
            if let Some(rest) = t.strip_prefix(w) {
                t = rest.strip_suffix('>').unwrap_or(rest);
                stripped = true;
            }
        }
        if !stripped {
            break;
        }
    }
    // normalize_type strips whitespace, so `dyn Trait` arrives as
    // `dynTrait`.
    if let Some(rest) = t.strip_prefix("dyn") {
        if rest.chars().next().map(char::is_uppercase).unwrap_or(false) {
            let end = rest
                .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                .unwrap_or(rest.len());
            return Some(format!("dyn {}", &rest[..end]));
        }
    }
    let end = t.find(|c: char| !(c.is_alphanumeric() || c == '_')).unwrap_or(t.len());
    let ident = &t[..end];
    if ident.chars().next().map(|c| c.is_uppercase()).unwrap_or(false) {
        Some(ident.to_string())
    } else {
        None
    }
}

/// Finds `impl [Trait for] Type { … }` blocks: `(start, end, owner,
/// trait)`. `impl Trait`-in-type-position (bounds, return types) is
/// filtered by the preceding token.
fn impl_blocks(text: &[u8]) -> Vec<(usize, usize, String, Option<String>)> {
    let mut blocks = Vec::new();
    let mut i = 0usize;
    while i + 4 < text.len() {
        if !word_at(text, i, "impl") {
            i += 1;
            continue;
        }
        // Reject `impl Trait` in type position: `: impl`, `(impl`,
        // `,impl`, `=impl`, `<impl`, `&impl`, `+impl`, `-> impl`.
        let mut p = i;
        while p > 0 && text[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        if p > 0 && matches!(text[p - 1], b':' | b'(' | b',' | b'=' | b'<' | b'&' | b'+' | b'>')
        {
            // `>` also ends `->`; both mean type position.
            i += 4;
            continue;
        }
        let mut j = skip_ws(text, i + 4);
        // Skip generic parameters on the impl itself.
        if text.get(j) == Some(&b'<') {
            let mut depth = 0i32;
            while j < text.len() {
                match text[j] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Head: everything to the depth-0 `{`, split on ` for `.
        let head_start = j;
        let mut depth = 0i32;
        let mut open = None;
        let mut abort = false;
        while j < text.len() {
            match text[j] {
                b'<' | b'(' | b'[' => depth += 1,
                b'>' | b')' | b']' if depth > 0 => depth -= 1,
                b'{' if depth == 0 => {
                    open = Some(j);
                    break;
                }
                b';' | b')' if depth == 0 => {
                    abort = true;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 4);
            if abort {
                continue;
            }
            continue;
        };
        let head = String::from_utf8_lossy(&text[head_start..open]).into_owned();
        let head = head.split(" where ").next().unwrap_or(&head).trim().to_string();
        let (trait_part, owner_part) = match head.find(" for ") {
            Some(pos) => (Some(head[..pos].trim().to_string()), head[pos + 5..].trim().to_string()),
            None => (None, head),
        };
        let owner = normalize_type(&owner_part)
            .as_deref()
            .and_then(base_of)
            .unwrap_or_else(|| owner_part.clone());
        let trait_name = trait_part
            .as_deref()
            .and_then(normalize_type)
            .as_deref()
            .and_then(base_of);
        let end = matching_brace(text, open);
        blocks.push((open, end, owner, trait_name));
        i = open + 1;
    }
    blocks
}

/// Indexes `struct Name { field: Type, … }` field types (base idents).
fn struct_fields(text: &[u8], out: &mut BTreeMap<(String, String), String>) {
    let mut i = 0usize;
    while i + 6 < text.len() {
        if !word_at(text, i, "struct") {
            i += 1;
            continue;
        }
        let mut j = skip_ws(text, i + 6);
        let name_start = j;
        while j < text.len() && is_ident_byte(text[j]) {
            j += 1;
        }
        if j == name_start {
            i += 6;
            continue;
        }
        let name = String::from_utf8_lossy(&text[name_start..j]).into_owned();
        // Skip generics, find the body `{` (tuple structs and unit
        // structs have none at depth 0 before `;`).
        let mut depth = 0i32;
        let mut open = None;
        while j < text.len() {
            match text[j] {
                b'<' | b'(' => depth += 1,
                b'>' | b')' if depth > 0 => depth -= 1,
                b'{' if depth == 0 => {
                    open = Some(j);
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 6);
            continue;
        };
        let close = matching_brace(text, open);
        for (s, e) in split_args(text, open + 1, close.saturating_sub(1)) {
            let field = String::from_utf8_lossy(&text[s..e]).into_owned();
            let Some(colon) = top_level_colon(&field) else { continue };
            let fname = field[..colon]
                .trim()
                .rsplit(|c: char| !(c.is_alphanumeric() || c == '_'))
                .next()
                .unwrap_or("")
                .to_string();
            if fname.is_empty() {
                continue;
            }
            if let Some(base) = normalize_type(&field[colon + 1..]).as_deref().and_then(base_of) {
                out.insert((name.clone(), fname), base);
            }
        }
        i = close.max(open + 1);
    }
}

/// Position of the field-name colon in a struct-field declaration
/// (skipping generics and nested type syntax).
fn top_level_colon(field: &str) -> Option<usize> {
    let bytes = field.as_bytes();
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' => depth -= 1,
            b':' if depth == 0 => {
                if bytes.get(i + 1) == Some(&b':') {
                    return None; // a path, not a field declaration
                }
                return Some(i);
            }
            _ => {}
        }
    }
    None
}

/// Reachability set helper for analyses that only need membership.
pub fn reachable_set(parents: &BTreeMap<usize, usize>) -> BTreeSet<usize> {
    parents.keys().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let parsed: Vec<SourceFile> =
            files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let g = CallGraph::build(&parsed);
        (parsed, g)
    }

    fn edge(g: &CallGraph, from: &str, to: &str) -> bool {
        let from_ids: Vec<usize> = g
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.name == from)
            .map(|(i, _)| i)
            .collect();
        from_ids.iter().any(|&f| {
            g.edges[f].iter().any(|e| g.nodes[e.to].name == to)
        })
    }

    #[test]
    fn direct_and_method_edges() {
        let (_, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct S { n: u32 }\nimpl S { fn m(&self) { helper(); self.m2(); } fn m2(&self) {} }\nfn helper() {}",
        )]);
        assert!(edge(&g, "m", "helper"));
        assert!(edge(&g, "m", "m2"));
    }

    #[test]
    fn field_hop_through_wrappers() {
        let (_, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct Outer { inner: Arc<Inner> }\nstruct Inner { n: u32 }\nimpl Inner { fn work(&self) {} }\nimpl Outer { fn go(&self) { self.inner.work(); } }",
        )]);
        assert!(edge(&g, "go", "work"));
    }

    #[test]
    fn arc_new_and_clone_bindings() {
        let (_, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct Inner { n: u32 }\nimpl Inner { fn start(&self) {} fn finish(&self) {} }\nfn reg() { let inner = Arc::new(Inner { n: 0 }); let si = Arc::clone(&inner); si.start(); inner.finish(); }",
        )]);
        assert!(edge(&g, "reg", "start"));
        assert!(edge(&g, "reg", "finish"));
    }

    #[test]
    fn spawn_spans_detach() {
        let (_, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct S { n: u32 }\nimpl S { fn bg(&self) {} fn fg(&self) {} fn go(&self) { self.fg(); std::thread::spawn(move || { self.bg(); }); } }",
        )]);
        assert!(edge(&g, "go", "fg"));
        assert!(!edge(&g, "go", "bg"));
        // The detached site is still recorded, flagged.
        let go = g.nodes.iter().position(|n| n.name == "go").unwrap();
        assert!(g.calls[go].iter().any(|c| c.callee == "bg" && c.in_spawn));
    }

    #[test]
    fn dyn_trait_fans_out() {
        let (_, g) = graph(&[(
            "crates/a/src/lib.rs",
            "trait P { fn stop(&self); }\nstruct A; struct B;\nimpl P for A { fn stop(&self) {} }\nimpl P for B { fn stop(&self) {} }\nstruct H { module: Arc<dyn P> }\nimpl H { fn halt(&self) { self.module.stop(); } }",
        )]);
        let halt = g.nodes.iter().position(|n| n.name == "halt").unwrap();
        let trait_edges: Vec<&Edge> =
            g.edges[halt].iter().filter(|e| e.kind == EdgeKind::Trait).collect();
        assert_eq!(trait_edges.len(), 2, "{:?}", g.edges[halt]);
    }

    #[test]
    fn unresolved_receiver_counts() {
        let (_, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct S { n: u32 }\nimpl S { fn target(&self) {} }\nfn go(x: &UnknownType) { x.target(); }",
        )]);
        // `target` exists in the workspace and is not denied, so the
        // unique-name fallback fires rather than counting unresolved.
        assert_eq!(g.fallback_edges, 1);
        let (_, g2) = graph(&[(
            "crates/a/src/lib.rs",
            "struct S { n: u32 }\nstruct T { n: u32 }\nimpl S { fn target(&self) {} }\nimpl T { fn target(&self) {} }\nfn go(x: &UnknownType) { x.target(); }",
        )]);
        assert_eq!(g2.unresolved_calls, 1);
        assert_eq!(g2.fallback_edges, 0);
    }

    #[test]
    fn closure_param_annotation_resolves() {
        let (_, g) = graph(&[(
            "crates/a/src/lib.rs",
            "struct Db { n: u32 }\nimpl Db { fn put(&self) {} }\nfn go(run: impl Fn(&Db)) { let f = |h: &Db| h.put(); }",
        )]);
        assert!(edge(&g, "go", "put"));
    }

    #[test]
    fn reachability_with_path() {
        let (_, g) = graph(&[(
            "crates/a/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn lonely() {}",
        )]);
        let a = g.nodes.iter().position(|n| n.name == "a").unwrap();
        let c = g.nodes.iter().position(|n| n.name == "c").unwrap();
        let lonely = g.nodes.iter().position(|n| n.name == "lonely").unwrap();
        let parents = g.reachable(&[a], |_| true);
        assert!(parents.contains_key(&c));
        assert!(!parents.contains_key(&lonely));
        assert_eq!(g.path_names(&parents, c), vec!["a", "b", "c"]);
    }
}
