//! Blocking-call-in-ULT lint.
//!
//! Execution streams are a small, fixed set of OS threads; a ULT that
//! blocks one of them (sleeping, waiting on a channel, joining a thread)
//! stalls every pool that xstream serves. This lint scans closures that
//! become ULTs — arguments to `Ult::new`/`Ult::with_priority` and RPC
//! handler closures passed to `register`/`register_typed` — for calls
//! that park the carrier thread. Deliberate blocking (e.g. Raft client
//! submissions waiting for commit in a dedicated pool) is frozen in the
//! allowlist with its rationale.

use crate::lexer::{column_of, is_ident_byte, line_of, matching_brace};
use crate::source::SourceFile;

/// One blocking call inside a ULT closure.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BlockingSite {
    pub file: String,
    pub function: String,
    /// `sleep`, `recv`, `recv_timeout`, `join`.
    pub kind: String,
    pub line: usize,
    pub column: usize,
}

/// Call sites whose closure arguments run as ULTs.
const ULT_ENTRYPOINTS: &[&str] =
    &["Ult::new", "Ult::with_priority", "register_typed", "register"];

/// Scans one file: finds ULT entry points, then flags blocking calls
/// inside their closure arguments.
pub fn scan(file: &SourceFile) -> Vec<BlockingSite> {
    let text = &file.text;
    let mut sites = Vec::new();
    for entry in ULT_ENTRYPOINTS {
        let needle = entry.as_bytes();
        let mut i = 0usize;
        while i + needle.len() < text.len() {
            if &text[i..i + needle.len()] == needle
                // A `:` prefix is a path qualifier (`ult::Ult::new`), which
                // must still match; an identifier prefix (`MyUlt::new`) must
                // not.
                && (i == 0 || !is_ident_byte(text[i - 1]))
                && !ident_or_colon(text[i + needle.len()])
            {
                let call_open = next_open_paren(text, i + needle.len());
                if let Some(open) = call_open {
                    let close = matching_paren(text, open);
                    scan_closures_in(file, open + 1, close, &mut sites);
                    i = open + 1;
                    continue;
                }
            }
            i += 1;
        }
    }
    sites.sort();
    sites.dedup();
    sites
}

fn ident_or_colon(b: u8) -> bool {
    is_ident_byte(b) || b == b':'
}

fn next_open_paren(text: &[u8], mut i: usize) -> Option<usize> {
    while i < text.len() && text[i].is_ascii_whitespace() {
        i += 1;
    }
    (i < text.len() && text[i] == b'(').then_some(i)
}

fn matching_paren(text: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < text.len() {
        match text[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    text.len()
}

/// Finds `|…| { … }` closures inside an argument span and scans their
/// bodies for blocking calls.
fn scan_closures_in(file: &SourceFile, start: usize, end: usize, sites: &mut Vec<BlockingSite>) {
    let text = &file.text;
    let mut i = start;
    while i < end {
        if text[i] == b'|' {
            // Params end: `||` or the next `|`.
            let params_end = if i + 1 < end && text[i + 1] == b'|' {
                i + 1
            } else {
                match text[i + 1..end].iter().position(|&b| b == b'|') {
                    Some(p) => i + 1 + p,
                    None => break,
                }
            };
            let mut j = params_end + 1;
            while j < end && text[j].is_ascii_whitespace() {
                j += 1;
            }
            let (body_start, body_end) = if j < end && text[j] == b'{' {
                (j, matching_brace(text, j).min(end))
            } else {
                (j, end) // expression-bodied closure: scan to span end
            };
            scan_blocking(file, body_start, body_end, sites);
            i = body_end;
        } else {
            i += 1;
        }
    }
}

fn scan_blocking(file: &SourceFile, start: usize, end: usize, sites: &mut Vec<BlockingSite>) {
    let text = &file.text;
    let patterns: &[(&[u8], &str)] = &[
        (b"thread::sleep", "sleep"),
        (b".recv_timeout(", "recv_timeout"),
        (b".recv()", "recv"),
        (b".join()", "join"),
    ];
    for (needle, kind) in patterns {
        let mut i = start;
        while i + needle.len() <= end {
            if &text[i..i + needle.len()] == *needle
                && (i == 0 || !is_ident_byte(text[i - 1]) || needle[0] == b'.')
            {
                sites.push(BlockingSite {
                    file: file.rel_path.clone(),
                    function: file
                        .function_at(i)
                        .map(|f| f.name.clone())
                        .unwrap_or_else(|| "<module>".to_string()),
                    kind: kind.to_string(),
                    line: line_of(text, i),
                    column: column_of(text, i),
                });
                i += needle.len();
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn kinds(src: &str) -> Vec<String> {
        let file = SourceFile::parse("crates/demo/src/lib.rs", src);
        scan(&file).into_iter().map(|s| s.kind).collect()
    }

    #[test]
    fn sleep_inside_ult_closure_flagged() {
        let found = kinds(
            "fn f() { pool.push(Ult::new(\"w\", move || { std::thread::sleep(d); })); }",
        );
        assert_eq!(found, vec!["sleep".to_string()]);
    }

    #[test]
    fn qualified_entrypoint_path_still_matches() {
        let found = kinds(
            "fn f() { pool.push(crate::ult::Ult::new(\"w\", move || { std::thread::sleep(d); })); }",
        );
        assert_eq!(found, vec!["sleep".to_string()]);
    }

    #[test]
    fn sleep_outside_ult_closure_not_flagged() {
        let found = kinds("fn f() { std::thread::sleep(d); pool.push(Ult::new(\"w\", move || { work(); })); }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn channel_wait_in_handler_closure_flagged() {
        let found = kinds(
            "fn f(m: &M) { m.register_typed(\"put\", 0, None, move |args, ctx| { let r = rx.recv_timeout(d); r });\n}",
        );
        assert_eq!(found, vec!["recv_timeout".to_string()]);
    }

    #[test]
    fn join_in_ult_closure_flagged() {
        let found =
            kinds("fn f() { Ult::with_priority(\"w\", 3, move || { handle.join(); }); }");
        assert_eq!(found, vec!["join".to_string()]);
    }
}
