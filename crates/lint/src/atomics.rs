//! Relaxed-atomic misuse analysis (MOCHI014).
//!
//! `Ordering::Relaxed` is correct for monotonic stats counters (PR 4's
//! striped stats, in-flight gauges) because nobody makes a control-flow
//! decision from a single read. It is *not* correct for cross-thread
//! flags — breaker state, shutdown/closed flags — where one thread
//! publishes a state change and another reads it to decide whether to
//! proceed: without acquire/release pairing there is no happens-before
//! edge, so writes guarded by the flag may be observed before the flag
//! itself on weakly-ordered hardware (the HPC targets this stack
//! models).
//!
//! The analysis is shape-based, tuned so the counter idiom passes by
//! construction:
//!
//! 1. Index every field or static whose declared type mentions
//!    `Atomic…` (through `Arc<…>` wrappers), keyed `(crate, name)`.
//! 2. Record every load/store/swap/fetch op on an indexed atomic, its
//!    ordering, and whether the op sits lexically inside an `if` /
//!    `while` / `match` condition — i.e. is read *for a decision* rather
//!    than assigned into a snapshot or summed into a report.
//! 3. Flag a **Relaxed load in condition position** when some *other*
//!    function writes the same `(crate, name)` (any ordering): the
//!    reader is making a decision from an unsynchronized publish
//!    (`load:<name>`).
//! 4. Flag a **Relaxed store/swap** when some *other* function reads the
//!    same `(crate, name)` in condition position: the writer publishes a
//!    decision flag without release semantics (`store:<name>`).
//!
//! Counters survive both rules: `fetch_add`/`fetch_sub` are never
//! publish ops (rule 4 covers only store/swap), and their readers
//! assign into locals or structs rather than branch (rule 3's condition
//! requirement). Identity is `(crate, field name)`, not per-struct —
//! two same-named flags in one crate alias, which over-approximates but
//! keeps the index receiver-type-free.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{column_of, is_ident_byte, line_of};
use crate::source::SourceFile;

/// One misused relaxed atomic op.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AtomicSite {
    pub file: String,
    pub function: String,
    pub crate_name: String,
    pub line: usize,
    pub column: usize,
    /// The atomic field or static involved.
    pub field: String,
    /// `load:<field>` or `store:<field>` — the allowlist kind.
    pub kind: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Load,
    /// `store` / `swap`: publishes a new value.
    Publish,
    /// `fetch_add` / `fetch_sub` / other RMW counters.
    Rmw,
}

struct Op {
    file_idx: usize,
    offset: usize,
    field: String,
    kind: OpKind,
    relaxed: bool,
    in_condition: bool,
    /// `(file, function)` — the "different thread" proxy.
    site: (String, String),
}

/// Runs the analysis over all parsed files.
pub fn check(files: &[SourceFile]) -> Vec<AtomicSite> {
    // 1. Atomic declarations: `name: [Arc<]Atomic…`.
    let mut atomics: BTreeSet<(String, String)> = BTreeSet::new();
    for file in files {
        for name in atomic_decls(&file.text) {
            atomics.insert((file.crate_name.clone(), name));
        }
    }
    if atomics.is_empty() {
        return Vec::new();
    }

    // 2. Ops on indexed atomics.
    let mut ops: Vec<Op> = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        let conditions = condition_spans(&file.text);
        scan_ops(file, file_idx, &atomics, &conditions, &mut ops);
    }

    // Group by (crate, field).
    let mut by_field: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        let crate_name = files[op.file_idx].crate_name.clone();
        by_field.entry((crate_name, op.field.clone())).or_default().push(i);
    }

    let mut findings = Vec::new();
    for indices in by_field.values() {
        let writers: Vec<&Op> = indices
            .iter()
            .map(|&i| &ops[i])
            .filter(|o| o.kind != OpKind::Load)
            .collect();
        let deciders: Vec<&Op> = indices
            .iter()
            .map(|&i| &ops[i])
            .filter(|o| o.kind == OpKind::Load && o.in_condition)
            .collect();
        for &i in indices {
            let op = &ops[i];
            let flagged = match op.kind {
                // 3. Relaxed decision-load with a foreign writer.
                OpKind::Load => {
                    op.relaxed
                        && op.in_condition
                        && writers.iter().any(|w| w.site != op.site)
                }
                // 4. Relaxed publish with a foreign decision-load.
                OpKind::Publish => {
                    op.relaxed && deciders.iter().any(|d| d.site != op.site)
                }
                OpKind::Rmw => false,
            };
            if flagged {
                let file = &files[op.file_idx];
                let verb = if op.kind == OpKind::Load { "load" } else { "store" };
                findings.push(AtomicSite {
                    file: file.rel_path.clone(),
                    function: op.site.1.clone(),
                    crate_name: file.crate_name.clone(),
                    line: line_of(&file.text, op.offset),
                    column: column_of(&file.text, op.offset),
                    field: op.field.clone(),
                    kind: format!("{verb}:{}", op.field),
                });
            }
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

/// Names declared with an `Atomic…` type: struct fields, statics, and
/// parameters alike (`closed: AtomicBool`, `static NEXT: AtomicUsize`,
/// `flag: Arc<AtomicBool>`).
fn atomic_decls(text: &[u8]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 6 < text.len() {
        if &text[i..i + 6] != b"Atomic" || (i > 0 && is_ident_byte(text[i - 1])) {
            i += 1;
            continue;
        }
        let type_start = i;
        while i < text.len() && is_ident_byte(text[i]) {
            i += 1;
        }
        // `AtomicUsize::new(…)` is a constructor, not a declaration.
        if text.get(i) == Some(&b':') {
            continue;
        }
        // Walk back over wrappers (`Arc<`, `&`, whitespace) to the `:`.
        let mut p = type_start;
        let mut hops = 0;
        loop {
            while p > 0 && (text[p - 1].is_ascii_whitespace() || matches!(text[p - 1], b'<' | b'&'))
            {
                p -= 1;
            }
            if p == 0 {
                break;
            }
            if text[p - 1] == b':' {
                // `::Atomic…` is a path, not an annotation.
                if p >= 2 && text[p - 2] == b':' {
                    while p > 1 && (is_ident_byte(text[p - 2]) || text[p - 2] == b':') {
                        p -= 1;
                    }
                    hops += 1;
                    if hops > 3 {
                        break;
                    }
                    continue;
                }
                let name_end = {
                    let mut q = p - 1;
                    while q > 0 && text[q - 1].is_ascii_whitespace() {
                        q -= 1;
                    }
                    q
                };
                let mut name_start = name_end;
                while name_start > 0 && is_ident_byte(text[name_start - 1]) {
                    name_start -= 1;
                }
                if name_start < name_end {
                    out.push(String::from_utf8_lossy(&text[name_start..name_end]).into_owned());
                }
                break;
            }
            if is_ident_byte(text[p - 1]) {
                // A wrapper ident (`Arc`); step over it.
                while p > 0 && is_ident_byte(text[p - 1]) {
                    p -= 1;
                }
                hops += 1;
                if hops > 3 {
                    break;
                }
                continue;
            }
            break;
        }
    }
    out
}

/// `if` / `while` / `match` condition spans: keyword to the block `{`.
fn condition_spans(text: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < text.len() {
        let kw_len = if word_at(text, i, b"if") {
            2
        } else if word_at(text, i, b"while") || word_at(text, i, b"match") {
            5
        } else {
            i += 1;
            continue;
        };
        let start = i + kw_len;
        let mut depth = 0i32;
        let mut j = start;
        while j < text.len() {
            match text[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => break,
                // An `if` condition never crosses a `;` (that would be a
                // parse error); bail so a stray keyword in a comment-free
                // span can't swallow the rest of the file.
                b';' if depth == 0 => {
                    j = text.len();
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        // For `match` only the scrutinee span counts as a condition;
        // the arm bodies are ordinary code.
        if j < text.len() {
            spans.push((start, j));
        }
        i = start;
    }
    spans
}

fn scan_ops(
    file: &SourceFile,
    file_idx: usize,
    atomics: &BTreeSet<(String, String)>,
    conditions: &[(usize, usize)],
    ops: &mut Vec<Op>,
) {
    let text = &file.text;
    let mut i = 0usize;
    while i < text.len() {
        if text[i] != b'.' {
            i += 1;
            continue;
        }
        let name_start = i + 1;
        let mut j = name_start;
        while j < text.len() && is_ident_byte(text[j]) {
            j += 1;
        }
        let method = &text[name_start..j];
        let kind = match method {
            b"load" => OpKind::Load,
            b"store" | b"swap" => OpKind::Publish,
            m if m.starts_with(b"fetch_") || m.starts_with(b"compare_") => OpKind::Rmw,
            _ => {
                i = j;
                continue;
            }
        };
        if text.get(j) != Some(&b'(') {
            i = j;
            continue;
        }
        // Field identity: the last ident before the method dot.
        let field_end = i;
        let mut field_start = field_end;
        while field_start > 0 && is_ident_byte(text[field_start - 1]) {
            field_start -= 1;
        }
        if field_start == field_end {
            i = j;
            continue;
        }
        let field = String::from_utf8_lossy(&text[field_start..field_end]).into_owned();
        if !atomics.contains(&(file.crate_name.clone(), field.clone())) {
            i = j;
            continue;
        }
        // Ordering: scan the argument list for `Relaxed`.
        let close = crate::contracts::matching_paren(text, j);
        let args = String::from_utf8_lossy(&text[j..close.min(text.len())]);
        let relaxed = args.contains("Relaxed");
        let in_condition = conditions.iter().any(|&(s, e)| s <= i && i < e);
        let function = file
            .function_at(i)
            .map(|f| f.name.clone())
            .unwrap_or_default();
        ops.push(Op {
            file_idx,
            offset: name_start,
            field,
            kind,
            relaxed,
            in_condition,
            site: (file.rel_path.clone(), function),
        });
        i = j;
    }
}

fn word_at(text: &[u8], i: usize, word: &[u8]) -> bool {
    i + word.len() <= text.len()
        && &text[i..i + word.len()] == word
        && (i == 0 || !is_ident_byte(text[i - 1]))
        && !text.get(i + word.len()).map(|&b| is_ident_byte(b)).unwrap_or(false)
}
