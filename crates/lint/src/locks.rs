//! Lock-order analysis.
//!
//! Extracts, per function, the spans over which lock guards are live and
//! records an edge `A → B` whenever lock `B` is acquired while a guard of
//! lock `A` is held. Edges from every crate are merged into one workspace
//! lock-order graph; a cycle in that graph is a potential deadlock.
//!
//! Locks are identified by *class*: the crate name plus the final field
//! (or variable) segment of the receiver chain, e.g. `self.inner.core.lock()`
//! in `crates/raft` is `raft::core`. Two instances of the same class held
//! together therefore look like a self-cycle; the analysis only reports a
//! self-edge when the full receiver chains are identical (a true re-lock,
//! which deadlocks immediately with `parking_lot`).
//!
//! Guard liveness model (conservative, intra-procedural):
//! * `let g = x.lock();` — live until the enclosing block closes or an
//!   explicit `drop(g)`;
//! * any other `.lock()` / `.read()` / `.write()` — a temporary, live
//!   until the end of the statement (matching Rust temporary semantics),
//!   except in `if`/`while` conditions where it ends at the `{` (also
//!   matching Rust) and in `match` scrutinees where it is extended to the
//!   end of the match block;
//! * closure bodies (`|…| { … }`, `move || { … }`) run later on other
//!   threads, so they start a fresh held-set; guards held at the closure's
//!   *creation site* do not leak into it.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{column_of, is_ident_byte, line_of};
use crate::source::SourceFile;
use crate::yields::{self, YieldSite};

/// One observed nested acquisition.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
    pub column: usize,
    pub function: String,
}

/// A re-acquisition of an already-held lock through the identical
/// receiver chain — an immediate self-deadlock with `parking_lot`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecursiveLock {
    pub lock: String,
    pub file: String,
    pub line: usize,
    pub column: usize,
    pub function: String,
}

#[derive(Clone)]
struct Held {
    lock: String,
    chain: String,
    var: Option<String>,
    depth: usize,
    temp: bool,
}

struct Ctx {
    start_depth: usize,
    held: Vec<Held>,
}

/// Extracts lock-order edges, recursive-lock findings, and
/// lock-held-across-yield findings from one file. The yield findings
/// share the same guard-liveness model (drops, block scopes, closures,
/// statement temporaries) as the edge extraction.
pub fn extract(
    file: &SourceFile,
    ignored: &BTreeSet<String>,
) -> (Vec<LockEdge>, Vec<RecursiveLock>, Vec<YieldSite>) {
    let mut edges = Vec::new();
    let mut recursive = Vec::new();
    let mut yield_sites = Vec::new();
    for function in &file.functions {
        scan_body(file, function.body_start, function.body_end, &function.name, ignored, &mut edges, &mut recursive, &mut yield_sites);
    }
    (edges, recursive, yield_sites)
}

#[allow(clippy::too_many_arguments)]
fn scan_body(
    file: &SourceFile,
    start: usize,
    end: usize,
    function: &str,
    ignored: &BTreeSet<String>,
    edges: &mut Vec<LockEdge>,
    recursive: &mut Vec<RecursiveLock>,
    yield_sites: &mut Vec<YieldSite>,
) {
    let text = &file.text;
    let mut ctxs = vec![Ctx { start_depth: 0, held: Vec::new() }];
    let mut depth = 0usize;
    let mut stmt_start = start + 1;
    let mut pending_closure = false;
    let mut i = start;
    while i < end {
        match text[i] {
            b'{' => {
                depth += 1;
                if pending_closure {
                    ctxs.push(Ctx { start_depth: depth, held: Vec::new() });
                    pending_closure = false;
                } else if scrutinee_extends_temporaries(text, stmt_start, i) {
                    // `match`/`for`/`if let`/`while let` scrutinee
                    // temporaries live for the whole block (edition 2021):
                    // promote them to block-scoped guards.
                    if let Some(ctx) = ctxs.last_mut() {
                        for h in ctx.held.iter_mut().filter(|h| h.temp) {
                            h.temp = false;
                            h.depth = depth;
                        }
                    }
                } else if let Some(ctx) = ctxs.last_mut() {
                    ctx.held.retain(|h| !h.temp);
                }
                stmt_start = i + 1;
            }
            b'}' => {
                if let Some(ctx) = ctxs.last_mut() {
                    ctx.held.retain(|h| !h.temp && h.depth < depth);
                }
                depth = depth.saturating_sub(1);
                if ctxs.len() > 1 && ctxs.last().map(|c| c.start_depth > depth).unwrap_or(false) {
                    ctxs.pop();
                }
                stmt_start = i + 1;
            }
            b';' => {
                if let Some(ctx) = ctxs.last_mut() {
                    ctx.held.retain(|h| !h.temp);
                }
                stmt_start = i + 1;
            }
            b'|' => {
                if let Some(params_end) = closure_params_end(text, i, end) {
                    let mut j = params_end + 1;
                    while j < end && text[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if j < end && text[j] == b'{' {
                        pending_closure = true;
                    }
                    // Expression-bodied closures keep the outer context
                    // (conservative over-approximation; rare and benign).
                    i = params_end;
                }
            }
            b'd' if word_at(text, i, "drop") => {
                if let Some((var, after)) = drop_argument(text, i + 4, end) {
                    if let Some(ctx) = ctxs.last_mut() {
                        if let Some(pos) =
                            ctx.held.iter().rposition(|h| h.var.as_deref() == Some(var.as_str()))
                        {
                            ctx.held.remove(pos);
                        }
                    }
                    i = after;
                    continue;
                }
            }
            b'y' => {
                if let Some(open) = yields::yield_now_at(text, i, end) {
                    if let Some(ctx) = ctxs.last() {
                        for held in &ctx.held {
                            yield_sites.push(YieldSite {
                                file: file.rel_path.clone(),
                                function: function.to_string(),
                                lock: held.lock.clone(),
                                yield_call: "yield_now".to_string(),
                                line: line_of(text, i),
                                column: column_of(text, i),
                            });
                        }
                    }
                    i = open;
                    continue;
                }
            }
            b'.' => {
                if let Some((method, open)) = yields::yield_method_at(text, i, end) {
                    if let Some(ctx) = ctxs.last() {
                        for held in &ctx.held {
                            yield_sites.push(YieldSite {
                                file: file.rel_path.clone(),
                                function: function.to_string(),
                                lock: held.lock.clone(),
                                yield_call: method.to_string(),
                                line: line_of(text, i + 1),
                                column: column_of(text, i + 1),
                            });
                        }
                    }
                    i = open;
                    continue;
                }
                if let Some(acq) = acquisition_at(text, i, end) {
                    let chain = receiver_chain(text, i);
                    if let Some(chain) = chain {
                        let field = chain.rsplit('.').next().unwrap_or(&chain).to_string();
                        let lock_id = format!("{}::{}", file.crate_name, field);
                        if !ignored.contains(&field) && !ignored.contains(&lock_id) {
                            let line = line_of(text, i);
                            let column = column_of(text, i);
                            let ctx = ctxs.last_mut().expect("context stack never empty");
                            for held in &ctx.held {
                                if held.lock == lock_id && held.chain == chain {
                                    recursive.push(RecursiveLock {
                                        lock: lock_id.clone(),
                                        file: file.rel_path.clone(),
                                        line,
                                        column,
                                        function: function.to_string(),
                                    });
                                    continue;
                                }
                                // Same class through a different receiver
                                // chain records a self-edge: either two
                                // instances (needs `ignored_locks`) or the
                                // same instance via aliases (a deadlock).
                                edges.push(LockEdge {
                                    from: held.lock.clone(),
                                    to: lock_id.clone(),
                                    file: file.rel_path.clone(),
                                    line,
                                    column,
                                    function: function.to_string(),
                                });
                            }
                            let (bound_var, temp) = binding_of(text, stmt_start, acq.close_paren);
                            ctx.held.push(Held {
                                lock: lock_id,
                                chain,
                                var: bound_var,
                                depth,
                                temp,
                            });
                        }
                    }
                    i = acq.close_paren + 1;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

struct Acquisition {
    close_paren: usize,
}

/// Detects `.lock()`, `.read()`, `.write()` (empty argument list only, so
/// `io::Read::read(&mut buf)` and friends never match) at offset `dot`.
fn acquisition_at(text: &[u8], dot: usize, end: usize) -> Option<Acquisition> {
    let mut j = dot + 1;
    let name_start = j;
    while j < end && is_ident_byte(text[j]) {
        j += 1;
    }
    let name = &text[name_start..j];
    if !(name == b"lock" || name == b"read" || name == b"write") {
        return None;
    }
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    if j >= end || text[j] != b'(' {
        return None;
    }
    j += 1;
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    if j < end && text[j] == b')' {
        Some(Acquisition { close_paren: j })
    } else {
        None
    }
}

/// Walks backward from the `.` of an acquisition to the start of the
/// receiver chain. Returns `None` when the receiver is not a simple
/// `ident(.ident)*` path (e.g. a call result), in which case the lock has
/// no stable class identity and the site is skipped.
fn receiver_chain(text: &[u8], dot: usize) -> Option<String> {
    let mut start = dot;
    while start > 0 {
        let b = text[start - 1];
        if is_ident_byte(b) || b == b'.' || b == b':' {
            start -= 1;
        } else {
            break;
        }
    }
    if start == dot {
        return None;
    }
    if start > 0 && text[start - 1] == b')' {
        return None;
    }
    let chain = String::from_utf8_lossy(&text[start..dot]).into_owned();
    let chain = chain.trim_matches('.').to_string();
    let last = chain.rsplit('.').next().unwrap_or("");
    let last = last.rsplit("::").next().unwrap_or("");
    if last.is_empty() || last.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true) {
        return None;
    }
    Some(chain)
}

/// Whether the acquisition ending at `close_paren` is `let g = x.lock();`
/// (a block-scoped guard) or a statement temporary. Returns the bound
/// variable name, if determinable, and the `temp` flag.
fn binding_of(text: &[u8], stmt_start: usize, close_paren: usize) -> (Option<String>, bool) {
    let mut k = close_paren + 1;
    while k < text.len() && text[k].is_ascii_whitespace() {
        k += 1;
    }
    let terminated = k < text.len() && text[k] == b';';
    if !terminated {
        return (None, true);
    }
    let mut s = stmt_start;
    while s < text.len() && text[s].is_ascii_whitespace() {
        s += 1;
    }
    if !word_at(text, s, "let") {
        return (None, true);
    }
    let mut v = s + 3;
    while v < text.len() && text[v].is_ascii_whitespace() {
        v += 1;
    }
    if word_at(text, v, "mut") {
        v += 3;
        while v < text.len() && text[v].is_ascii_whitespace() {
            v += 1;
        }
    }
    let var_start = v;
    while v < text.len() && is_ident_byte(text[v]) {
        v += 1;
    }
    if v == var_start {
        return (None, false); // e.g. destructuring `let (a, b) = …`
    }
    (Some(String::from_utf8_lossy(&text[var_start..v]).into_owned()), false)
}

/// If the `|` at `pipe` opens closure parameters, the offset of the
/// closing `|`.
fn closure_params_end(text: &[u8], pipe: usize, end: usize) -> Option<usize> {
    // `||` never means boolean-or at expression start; otherwise require a
    // preceding token that can only precede a closure.
    let mut p = pipe;
    while p > 0 && (text[p - 1] == b' ' || text[p - 1] == b'\t' || text[p - 1] == b'\n') {
        p -= 1;
    }
    let opens_closure = if p == 0 {
        true
    } else {
        let prev = text[p - 1];
        matches!(prev, b'(' | b',' | b'=' | b'{' | b';' | b':' | b'&' | b'>')
            || ends_with_word(text, p, "move")
            || ends_with_word(text, p, "return")
    };
    if !opens_closure {
        return None;
    }
    if pipe + 1 < end && text[pipe + 1] == b'|' {
        return Some(pipe + 1);
    }
    let mut j = pipe + 1;
    while j < end && j < pipe + 200 {
        match text[j] {
            b'|' => return Some(j),
            b';' | b'{' | b'}' => return None,
            _ => j += 1,
        }
    }
    None
}

/// Parses `drop ( ident )` starting after the `drop` keyword; returns the
/// identifier and the offset just past the closing paren.
fn drop_argument(text: &[u8], mut j: usize, end: usize) -> Option<(String, usize)> {
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    if j >= end || text[j] != b'(' {
        return None;
    }
    j += 1;
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    let start = j;
    while j < end && is_ident_byte(text[j]) {
        j += 1;
    }
    if j == start {
        return None;
    }
    let var = String::from_utf8_lossy(&text[start..j]).into_owned();
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    if j < end && text[j] == b')' {
        Some((var, j + 1))
    } else {
        None
    }
}

fn word_at(text: &[u8], i: usize, word: &str) -> bool {
    let w = word.as_bytes();
    if i + w.len() > text.len() || &text[i..i + w.len()] != w {
        return false;
    }
    let before_ok = i == 0 || !is_ident_byte(text[i - 1]);
    let after_ok = i + w.len() >= text.len() || !is_ident_byte(text[i + w.len()]);
    before_ok && after_ok
}

fn ends_with_word(text: &[u8], end: usize, word: &str) -> bool {
    let w = word.as_bytes();
    end >= w.len()
        && &text[end - w.len()..end] == w
        && (end == w.len() || !is_ident_byte(text[end - w.len() - 1]))
}

/// Whether the statement opening a block at `limit` keeps its scrutinee
/// temporaries alive for the whole block: `match`, `for`, `if let`,
/// `while let` (plain `if`/`while` conditions drop them at the `{`).
fn scrutinee_extends_temporaries(text: &[u8], stmt_start: usize, limit: usize) -> bool {
    let mut s = stmt_start;
    while s < limit && text[s].is_ascii_whitespace() {
        s += 1;
    }
    let start = s;
    while s < limit && is_ident_byte(text[s]) {
        s += 1;
    }
    let first = match std::str::from_utf8(&text[start..s]) {
        Ok(w) => w,
        Err(_) => return false,
    };
    match first {
        "match" | "for" => true,
        "if" | "while" => {
            let mut t = s;
            while t < limit && text[t].is_ascii_whitespace() {
                t += 1;
            }
            word_at(text, t, "let")
        }
        _ => false,
    }
}

/// A cycle in the lock-order graph: the participating lock classes and
/// the edges (with sites) that close the cycle.
#[derive(Debug, Clone)]
pub struct LockCycle {
    pub locks: Vec<String>,
    pub edges: Vec<LockEdge>,
}

/// Finds strongly connected components of size > 1 in the merged edge
/// set; each is reported as one potential-deadlock cycle.
pub fn find_cycles(edges: &[LockEdge]) -> Vec<LockCycle> {
    let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adjacency.entry(&e.from).or_default().insert(&e.to);
        adjacency.entry(&e.to).or_default();
    }
    let nodes: Vec<&str> = adjacency.keys().copied().collect();
    let index_of: BTreeMap<&str, usize> =
        nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();

    // Tarjan's SCC, iterative.
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // (node, neighbor iterator position)
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ni)) = call.last_mut() {
            if *ni == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let neighbors: Vec<usize> = adjacency[nodes[v]]
                .iter()
                .map(|m| index_of[m])
                .collect();
            if *ni < neighbors.len() {
                let w = neighbors[*ni];
                *ni += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let is_cycle = component.len() > 1
                        || component
                            .first()
                            .map(|&w| adjacency[nodes[w]].contains(nodes[w]))
                            .unwrap_or(false);
                    if is_cycle {
                        sccs.push(component);
                    }
                }
                let done = v;
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[done]);
                }
            }
        }
    }

    let mut cycles: Vec<LockCycle> = sccs
        .into_iter()
        .map(|component| {
            let mut locks: Vec<String> =
                component.iter().map(|&i| nodes[i].to_string()).collect();
            locks.sort();
            let members: BTreeSet<&str> = locks.iter().map(|s| s.as_str()).collect();
            let mut cycle_edges: Vec<LockEdge> = edges
                .iter()
                .filter(|e| members.contains(e.from.as_str()) && members.contains(e.to.as_str()))
                .cloned()
                .collect();
            cycle_edges.sort();
            cycle_edges.dedup_by(|a, b| a.from == b.from && a.to == b.to);
            LockCycle { locks, edges: cycle_edges }
        })
        .collect();
    cycles.sort_by(|a, b| a.locks.cmp(&b.locks));
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn edges_of(src: &str) -> Vec<LockEdge> {
        let file = SourceFile::parse("crates/demo/src/lib.rs", src);
        extract(&file, &BTreeSet::new()).0
    }

    #[test]
    fn nested_let_guards_produce_edge() {
        let edges = edges_of(
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
        );
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].from, "demo::alpha");
        assert_eq!(edges[0].to, "demo::beta");
    }

    #[test]
    fn sequential_blocks_produce_no_edge() {
        let edges = edges_of(
            "fn f(&self) { { let a = self.alpha.lock(); } { let b = self.beta.lock(); } }",
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn temporaries_end_at_statement() {
        let edges = edges_of(
            "fn f(&self) { self.alpha.lock().push(1); let b = self.beta.lock(); }",
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn same_statement_temporaries_chain() {
        let edges =
            edges_of("fn f(&self) { let x = self.alpha.lock().v + self.beta.lock().v; }");
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].from.as_str(), edges[0].to.as_str()), ("demo::alpha", "demo::beta"));
    }

    #[test]
    fn if_condition_temporary_released_before_body() {
        let edges = edges_of(
            "fn f(&self) { if self.alpha.lock().enabled { let b = self.beta.lock(); } }",
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn match_scrutinee_temporary_extends_over_arms() {
        let edges = edges_of(
            "fn f(&self) { match self.alpha.lock().kind { K::A => { let b = self.beta.lock(); } _ => {} } }",
        );
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].from, "demo::alpha");
    }

    #[test]
    fn drop_releases_guard() {
        let edges = edges_of(
            "fn f(&self) { let a = self.alpha.lock(); drop(a); let b = self.beta.lock(); }",
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn closures_start_fresh_held_set() {
        let edges = edges_of(
            "fn f(&self) { let a = self.alpha.lock(); run(move || { let b = self.beta.lock(); }); }",
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn rwlock_read_write_count_as_acquisitions() {
        let edges = edges_of(
            "fn f(&self) { let a = self.alpha.read(); let b = self.beta.write(); }",
        );
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn io_read_with_arguments_is_not_a_lock() {
        let edges = edges_of(
            "fn f(&self) { let a = self.alpha.lock(); let n = file.read(&mut buf); }",
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn identical_chain_relock_reported_recursive() {
        let file = SourceFile::parse(
            "crates/demo/src/lib.rs",
            "fn f(&self) { let a = self.alpha.lock(); let b = self.alpha.lock(); }",
        );
        let (edges, recursive, _) = extract(&file, &BTreeSet::new());
        assert!(edges.is_empty());
        assert_eq!(recursive.len(), 1);
        assert_eq!(recursive[0].lock, "demo::alpha");
    }

    #[test]
    fn ab_ba_inversion_detected_as_cycle() {
        let a = SourceFile::parse(
            "crates/one/src/lib.rs",
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
        );
        let b = SourceFile::parse(
            "crates/one/src/other.rs",
            "fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }",
        );
        let mut edges = extract(&a, &BTreeSet::new()).0;
        edges.extend(extract(&b, &BTreeSet::new()).0);
        let cycles = find_cycles(&edges);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec!["one::alpha".to_string(), "one::beta".to_string()]);
        assert_eq!(cycles[0].edges.len(), 2);
    }

    #[test]
    fn consistent_order_yields_no_cycle() {
        let a = SourceFile::parse(
            "crates/one/src/lib.rs",
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\nfn g(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
        );
        let edges = extract(&a, &BTreeSet::new()).0;
        assert!(find_cycles(&edges).is_empty());
    }

    #[test]
    fn ignored_locks_are_skipped() {
        let file = SourceFile::parse(
            "crates/demo/src/lib.rs",
            "fn f(&self) { let a = self.buffer.lock(); let b = self.beta.lock(); }",
        );
        let ignored: BTreeSet<String> = ["buffer".to_string()].into_iter().collect();
        let (edges, _, _) = extract(&file, &ignored);
        assert!(edges.is_empty(), "{edges:?}");
    }
}
