//! Lock-order analysis.
//!
//! Derives, per function, the lock-order facts from the guard spans the
//! [`crate::dataflow`] engine extracts, and records an edge `A → B`
//! whenever lock `B` is acquired while a guard of lock `A` is live in
//! the same closure context. Edges from every crate are merged into one
//! workspace lock-order graph; a cycle in that graph is a potential
//! deadlock.
//!
//! Locks are identified by *class*: the crate name plus the final field
//! (or variable) segment of the receiver chain, e.g. `self.inner.core.lock()`
//! in `crates/raft` is `raft::core`. Two instances of the same class held
//! together therefore look like a self-cycle; the analysis only reports a
//! self-edge when the full receiver chains are identical (a true re-lock,
//! which deadlocks immediately with `parking_lot`).
//!
//! The guard-liveness model (birth/death offsets, statement temporaries,
//! block scopes, `drop`, scrutinee promotion, fresh closure contexts) is
//! documented on [`crate::dataflow::BodyFlow`]; the lock-held-across-yield
//! findings (MOCHI009) are derived here too, from yield events falling
//! inside guard spans.

use std::collections::{BTreeMap, BTreeSet};

use crate::dataflow::BodyFlow;
use crate::lexer::{column_of, line_of};
use crate::source::SourceFile;
use crate::yields::YieldSite;

/// One observed nested acquisition.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
    pub column: usize,
    pub function: String,
}

/// A re-acquisition of an already-held lock through the identical
/// receiver chain — an immediate self-deadlock with `parking_lot`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecursiveLock {
    pub lock: String,
    pub file: String,
    pub line: usize,
    pub column: usize,
    pub function: String,
}

/// Extracts lock-order edges, recursive-lock findings, and
/// lock-held-across-yield findings from one file. All three are
/// projections of the same [`BodyFlow`] guard spans.
pub fn extract(
    file: &SourceFile,
    ignored: &BTreeSet<String>,
) -> (Vec<LockEdge>, Vec<RecursiveLock>, Vec<YieldSite>) {
    let mut edges = Vec::new();
    let mut recursive = Vec::new();
    let mut yield_sites = Vec::new();
    for function in &file.functions {
        let flow = BodyFlow::analyze(file, function.body_start, function.body_end, ignored);
        // An acquisition B while span A is live (same context) is either
        // a recursive re-lock (identical class and receiver chain) or a
        // lock-order edge A → B.
        for (bi, b) in flow.spans.iter().enumerate() {
            for (ai, a) in flow.spans.iter().enumerate() {
                if ai == bi || a.ctx != b.ctx || !(a.start < b.start && b.start < a.end) {
                    continue;
                }
                if a.lock == b.lock && a.chain == b.chain {
                    recursive.push(RecursiveLock {
                        lock: b.lock.clone(),
                        file: file.rel_path.clone(),
                        line: b.line,
                        column: b.column,
                        function: function.name.clone(),
                    });
                } else {
                    edges.push(LockEdge {
                        from: a.lock.clone(),
                        to: b.lock.clone(),
                        file: file.rel_path.clone(),
                        line: b.line,
                        column: b.column,
                        function: function.name.clone(),
                    });
                }
            }
        }
        // A suspension point inside a guard span (same context) holds the
        // guard across the yield.
        for y in &flow.yields {
            for span in flow.spans.iter().filter(|s| {
                s.ctx == y.ctx && s.start < y.offset && y.offset < s.end
            }) {
                yield_sites.push(YieldSite {
                    file: file.rel_path.clone(),
                    function: function.name.clone(),
                    lock: span.lock.clone(),
                    yield_call: y.call.to_string(),
                    line: line_of(&file.text, y.offset),
                    column: column_of(&file.text, y.offset),
                });
            }
        }
    }
    (edges, recursive, yield_sites)
}

/// A cycle in the lock-order graph: the participating lock classes and
/// the edges (with sites) that close the cycle.
#[derive(Debug, Clone)]
pub struct LockCycle {
    pub locks: Vec<String>,
    pub edges: Vec<LockEdge>,
}

/// Finds strongly connected components of size > 1 in the merged edge
/// set; each is reported as one potential-deadlock cycle.
pub fn find_cycles(edges: &[LockEdge]) -> Vec<LockCycle> {
    let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adjacency.entry(&e.from).or_default().insert(&e.to);
        adjacency.entry(&e.to).or_default();
    }
    let nodes: Vec<&str> = adjacency.keys().copied().collect();
    let index_of: BTreeMap<&str, usize> =
        nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();

    // Tarjan's SCC, iterative.
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // (node, neighbor iterator position)
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ni)) = call.last_mut() {
            if *ni == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let neighbors: Vec<usize> = adjacency[nodes[v]]
                .iter()
                .map(|m| index_of[m])
                .collect();
            if *ni < neighbors.len() {
                let w = neighbors[*ni];
                *ni += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let is_cycle = component.len() > 1
                        || component
                            .first()
                            .map(|&w| adjacency[nodes[w]].contains(nodes[w]))
                            .unwrap_or(false);
                    if is_cycle {
                        sccs.push(component);
                    }
                }
                let done = v;
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[done]);
                }
            }
        }
    }

    let mut cycles: Vec<LockCycle> = sccs
        .into_iter()
        .map(|component| {
            let mut locks: Vec<String> =
                component.iter().map(|&i| nodes[i].to_string()).collect();
            locks.sort();
            let members: BTreeSet<&str> = locks.iter().map(|s| s.as_str()).collect();
            let mut cycle_edges: Vec<LockEdge> = edges
                .iter()
                .filter(|e| members.contains(e.from.as_str()) && members.contains(e.to.as_str()))
                .cloned()
                .collect();
            cycle_edges.sort();
            cycle_edges.dedup_by(|a, b| a.from == b.from && a.to == b.to);
            LockCycle { locks, edges: cycle_edges }
        })
        .collect();
    cycles.sort_by(|a, b| a.locks.cmp(&b.locks));
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn edges_of(src: &str) -> Vec<LockEdge> {
        let file = SourceFile::parse("crates/demo/src/lib.rs", src);
        extract(&file, &BTreeSet::new()).0
    }

    #[test]
    fn nested_let_guards_produce_edge() {
        let edges = edges_of(
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
        );
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].from, "demo::alpha");
        assert_eq!(edges[0].to, "demo::beta");
    }

    #[test]
    fn sequential_blocks_produce_no_edge() {
        let edges = edges_of(
            "fn f(&self) { { let a = self.alpha.lock(); } { let b = self.beta.lock(); } }",
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn temporaries_end_at_statement() {
        let edges = edges_of(
            "fn f(&self) { self.alpha.lock().push(1); let b = self.beta.lock(); }",
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn same_statement_temporaries_chain() {
        let edges =
            edges_of("fn f(&self) { let x = self.alpha.lock().v + self.beta.lock().v; }");
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].from.as_str(), edges[0].to.as_str()), ("demo::alpha", "demo::beta"));
    }

    #[test]
    fn if_condition_temporary_released_before_body() {
        let edges = edges_of(
            "fn f(&self) { if self.alpha.lock().enabled { let b = self.beta.lock(); } }",
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn match_scrutinee_temporary_extends_over_arms() {
        let edges = edges_of(
            "fn f(&self) { match self.alpha.lock().kind { K::A => { let b = self.beta.lock(); } _ => {} } }",
        );
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].from, "demo::alpha");
    }

    #[test]
    fn drop_releases_guard() {
        let edges = edges_of(
            "fn f(&self) { let a = self.alpha.lock(); drop(a); let b = self.beta.lock(); }",
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn closures_start_fresh_held_set() {
        let edges = edges_of(
            "fn f(&self) { let a = self.alpha.lock(); run(move || { let b = self.beta.lock(); }); }",
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn rwlock_read_write_count_as_acquisitions() {
        let edges = edges_of(
            "fn f(&self) { let a = self.alpha.read(); let b = self.beta.write(); }",
        );
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn io_read_with_arguments_is_not_a_lock() {
        let edges = edges_of(
            "fn f(&self) { let a = self.alpha.lock(); let n = file.read(&mut buf); }",
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn identical_chain_relock_reported_recursive() {
        let file = SourceFile::parse(
            "crates/demo/src/lib.rs",
            "fn f(&self) { let a = self.alpha.lock(); let b = self.alpha.lock(); }",
        );
        let (edges, recursive, _) = extract(&file, &BTreeSet::new());
        assert!(edges.is_empty());
        assert_eq!(recursive.len(), 1);
        assert_eq!(recursive[0].lock, "demo::alpha");
    }

    #[test]
    fn ab_ba_inversion_detected_as_cycle() {
        let a = SourceFile::parse(
            "crates/one/src/lib.rs",
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
        );
        let b = SourceFile::parse(
            "crates/one/src/other.rs",
            "fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }",
        );
        let mut edges = extract(&a, &BTreeSet::new()).0;
        edges.extend(extract(&b, &BTreeSet::new()).0);
        let cycles = find_cycles(&edges);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec!["one::alpha".to_string(), "one::beta".to_string()]);
        assert_eq!(cycles[0].edges.len(), 2);
    }

    #[test]
    fn consistent_order_yields_no_cycle() {
        let a = SourceFile::parse(
            "crates/one/src/lib.rs",
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\nfn g(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }",
        );
        let edges = extract(&a, &BTreeSet::new()).0;
        assert!(find_cycles(&edges).is_empty());
    }

    #[test]
    fn ignored_locks_are_skipped() {
        let file = SourceFile::parse(
            "crates/demo/src/lib.rs",
            "fn f(&self) { let a = self.buffer.lock(); let b = self.beta.lock(); }",
        );
        let ignored: BTreeSet<String> = ["buffer".to_string()].into_iter().collect();
        let (edges, _, _) = extract(&file, &ignored);
        assert!(edges.is_empty(), "{edges:?}");
    }
}
