//! Panic-path lint: `unwrap()`, `expect()` and panicking macros inside
//! RPC-handler and provider code.
//!
//! A panicking handler kills its ULT; with enough of them a provider
//! stops answering and the resilience layer (SSG/REMI/Raft) sees a dead
//! node that is actually a live process with a poisoned handler. Provider
//! crates therefore must propagate errors to the RPC response instead of
//! panicking. Existing debt is frozen in the allowlist; new sites fail.

use crate::lexer::{column_of, is_ident_byte, line_of};
use crate::source::SourceFile;

/// Crate source prefixes considered "provider / RPC handler paths".
pub const PROVIDER_PATHS: &[&str] = &[
    "crates/margo/src",
    "crates/bedrock/src",
    "crates/yokan/src",
    "crates/warabi/src",
    "crates/remi/src",
    "crates/raft/src",
];

/// One panic-capable site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PanicSite {
    pub file: String,
    pub function: String,
    /// `unwrap`, `expect`, `panic`, `unreachable`, `todo`, `unimplemented`.
    pub kind: String,
    pub line: usize,
    pub column: usize,
}

/// Whether the panic-path lint applies to `rel_path`.
pub fn in_provider_path(rel_path: &str) -> bool {
    PROVIDER_PATHS.iter().any(|p| rel_path.starts_with(p))
}

/// Scans one file for panic-capable call sites (test code is already
/// blanked by the sanitizer).
pub fn scan(file: &SourceFile) -> Vec<PanicSite> {
    let text = &file.text;
    let mut sites = Vec::new();
    let mut i = 0usize;
    while i < text.len() {
        match text[i] {
            b'.' => {
                if let Some(kind) = method_kind(text, i) {
                    sites.push(site(file, i, kind));
                }
                i += 1;
            }
            b'p' | b'u' | b't' => {
                if let Some((kind, len)) = macro_kind(text, i) {
                    sites.push(site(file, i, kind));
                    i += len;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    sites
}

fn site(file: &SourceFile, offset: usize, kind: &str) -> PanicSite {
    PanicSite {
        file: file.rel_path.clone(),
        function: file
            .function_at(offset)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<module>".to_string()),
        kind: kind.to_string(),
        line: line_of(&file.text, offset),
        column: column_of(&file.text, offset),
    }
}

/// `.unwrap()` (empty args, so `unwrap_or*` never matches) or `.expect(`.
fn method_kind(text: &[u8], dot: usize) -> Option<&'static str> {
    let mut j = dot + 1;
    let start = j;
    while j < text.len() && is_ident_byte(text[j]) {
        j += 1;
    }
    let name = &text[start..j];
    while j < text.len() && text[j].is_ascii_whitespace() {
        j += 1;
    }
    if j >= text.len() || text[j] != b'(' {
        return None;
    }
    match name {
        b"unwrap" => {
            let mut k = j + 1;
            while k < text.len() && text[k].is_ascii_whitespace() {
                k += 1;
            }
            (k < text.len() && text[k] == b')').then_some("unwrap")
        }
        b"expect" => Some("expect"),
        _ => None,
    }
}

/// `panic!(`, `unreachable!(`, `todo!(`, `unimplemented!(`.
fn macro_kind(text: &[u8], i: usize) -> Option<(&'static str, usize)> {
    for (word, kind) in [
        ("panic!", "panic"),
        ("unreachable!", "unreachable"),
        ("todo!", "todo"),
        ("unimplemented!", "unimplemented"),
    ] {
        let w = word.as_bytes();
        if i + w.len() <= text.len()
            && &text[i..i + w.len()] == w
            && (i == 0 || !is_ident_byte(text[i - 1]))
        {
            return Some((kind, w.len()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn kinds(src: &str) -> Vec<(String, String)> {
        let file = SourceFile::parse("crates/yokan/src/lib.rs", src);
        scan(&file).into_iter().map(|s| (s.function, s.kind)).collect()
    }

    #[test]
    fn finds_unwrap_expect_and_macros() {
        let found = kinds(
            "fn h(&self) { let x = v.unwrap(); let y = w.expect(\"msg\"); panic!(\"boom\"); }",
        );
        assert_eq!(
            found,
            vec![
                ("h".to_string(), "unwrap".to_string()),
                ("h".to_string(), "expect".to_string()),
                ("h".to_string(), "panic".to_string()),
            ]
        );
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let found = kinds("fn h() { let x = v.unwrap_or(0); let y = w.unwrap_or_else(|| 1); let z = u.unwrap_or_default(); }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn strings_and_tests_are_invisible() {
        let found = kinds(
            "fn h() { log(\"never unwrap() here\"); }\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn provider_path_filter() {
        assert!(in_provider_path("crates/margo/src/rpc.rs"));
        assert!(in_provider_path("crates/raft/src/node.rs"));
        assert!(!in_provider_path("crates/mercury/src/fabric.rs"));
        assert!(!in_provider_path("crates/util/src/stats.rs"));
    }
}
