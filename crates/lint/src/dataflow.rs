//! Intraprocedural guard/dataflow engine.
//!
//! Generalizes the guard-liveness state machine that used to live inside
//! `locks.rs` into a reusable module: one pass over a function body
//! produces [`GuardSpan`]s (lock-guard birth → death offsets), the
//! closure-context tree, yield events, and value-escape marks. The
//! downstream rules then *query* the flow instead of re-implementing the
//! scan:
//!
//! * `locks.rs` (MOCHI001/002) derives lock-order edges and recursive
//!   re-locks from span overlap;
//! * `yields.rs` (MOCHI009) derives guard-across-suspension findings
//!   from yield events falling inside spans;
//! * `rpclock.rs` (MOCHI015) asks which ordered guards are live at a
//!   call site whose callee transitively reaches a `forward`;
//! * `queues.rs` (MOCHI017) resolves guard variables back to the lock
//!   field they borrow from.
//!
//! The lattice is deliberately simple — a guard is a contiguous byte
//! span per closure context:
//!
//! * **birth** — the offset of the `.lock()`/`.read()`/`.write()` call;
//! * **death** — the first of: end of statement (`;`, or the `{` of a
//!   plain `if`/`while` condition) for temporaries; the close of the
//!   enclosing block for `let`-bound guards; an explicit `drop(g)`; the
//!   end of the function body. `match`/`for`/`if let`/`while let`
//!   scrutinee temporaries are promoted to block scope (edition-2021
//!   temporary lifetimes);
//! * **branch join** — a span is the union over paths: a guard born
//!   before a branch stays live through every arm and past the join; a
//!   guard born inside an arm dies at the arm's close. `drop(g)` kills
//!   on *every* path even when lexically conditional — the workspace
//!   idiom is "drop the guard, then RPC" inside a `match` arm, and
//!   treating that drop as maybe-live would flag the correct pattern
//!   (see `raft::replicator_loop`);
//! * **contexts** — a braced closure body runs later, possibly on
//!   another thread, so it opens a fresh context: spans never cross
//!   context boundaries, and liveness queries compare contexts;
//! * **escape** — `return g;` marks the span as escaping (the guard
//!   outlives this function in the caller); the span itself still ends
//!   at the return, because no code *in this body* runs under it after.

use std::collections::BTreeSet;

use crate::lexer::{column_of, is_ident_byte, line_of};
use crate::source::SourceFile;

/// One lock guard's live range inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardSpan {
    /// Lock class, `crate::field` (e.g. `raft::core`).
    pub lock: String,
    /// Full receiver chain of the acquisition (`self.inner.core`).
    pub chain: String,
    /// Bound variable for `let g = x.lock();` guards.
    pub var: Option<String>,
    /// Offset of the `.` of the acquisition in the sanitized text.
    pub start: usize,
    /// Death offset: statement/block close, `drop`, or body end.
    pub end: usize,
    /// Closure context the span lives in (0 = the function body).
    pub ctx: usize,
    /// True when the guard value leaves the function via `return g;`.
    pub escapes: bool,
    pub line: usize,
    pub column: usize,
}

/// One suspension point (`forward`-family call or `yield_now`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YieldEvent {
    /// The suspending call name.
    pub call: &'static str,
    /// Report offset (start of the callee name) in the sanitized text.
    pub offset: usize,
    /// Closure context the event occurred in.
    pub ctx: usize,
}

/// One closure-body context. Context 0 is the function body itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowContext {
    pub parent: usize,
    pub start: usize,
    pub end: usize,
}

/// The dataflow facts for one function body.
#[derive(Debug, Clone)]
pub struct BodyFlow {
    pub spans: Vec<GuardSpan>,
    pub yields: Vec<YieldEvent>,
    pub contexts: Vec<FlowContext>,
}

impl BodyFlow {
    /// The innermost context containing `offset`.
    pub fn ctx_of(&self, offset: usize) -> usize {
        let mut best = 0usize;
        let mut best_start = self.contexts[0].start;
        for (id, ctx) in self.contexts.iter().enumerate() {
            if ctx.start <= offset && offset < ctx.end && ctx.start >= best_start {
                best = id;
                best_start = ctx.start;
            }
        }
        best
    }

    /// Guards live at `offset` in the same context as `offset`.
    pub fn live_at(&self, offset: usize) -> impl Iterator<Item = &GuardSpan> {
        let ctx = self.ctx_of(offset);
        self.spans.iter().filter(move |s| s.ctx == ctx && s.start < offset && offset < s.end)
    }

    /// The span bound to variable `var` and live at `offset`, if any —
    /// lets rules resolve a guard variable (`q` in `let q =
    /// self.queue.lock();`) back to the lock field it borrows from.
    pub fn guard_var_at(&self, var: &str, offset: usize) -> Option<&GuardSpan> {
        self.live_at(offset).find(|s| s.var.as_deref() == Some(var))
    }

    /// Runs the scan over `file.text[start..end]` (a function body span).
    pub fn analyze(
        file: &SourceFile,
        start: usize,
        end: usize,
        ignored: &BTreeSet<String>,
    ) -> BodyFlow {
        let text = &file.text;
        let mut flow = BodyFlow {
            spans: Vec::new(),
            yields: Vec::new(),
            contexts: vec![FlowContext { parent: 0, start, end }],
        };
        // (context id, block depth at which the context opened, held guards)
        struct Scan {
            id: usize,
            start_depth: usize,
            held: Vec<HeldMeta>,
        }
        struct HeldMeta {
            span: usize,
            depth: usize,
            temp: bool,
        }
        let mut ctxs = vec![Scan { id: 0, start_depth: 0, held: Vec::new() }];
        let mut depth = 0usize;
        let mut stmt_start = start + 1;
        let mut pending_closure = false;
        let mut i = start;
        while i < end {
            match text[i] {
                b'{' => {
                    depth += 1;
                    if pending_closure {
                        let id = flow.contexts.len();
                        let parent = ctxs.last().map(|c| c.id).unwrap_or(0);
                        flow.contexts.push(FlowContext { parent, start: i, end });
                        ctxs.push(Scan { id, start_depth: depth, held: Vec::new() });
                        pending_closure = false;
                    } else if scrutinee_extends_temporaries(text, stmt_start, i) {
                        // `match`/`for`/`if let`/`while let` scrutinee
                        // temporaries live for the whole block (edition
                        // 2021): promote them to block-scoped guards.
                        if let Some(ctx) = ctxs.last_mut() {
                            for h in ctx.held.iter_mut().filter(|h| h.temp) {
                                h.temp = false;
                                h.depth = depth;
                            }
                        }
                    } else if let Some(ctx) = ctxs.last_mut() {
                        for h in ctx.held.iter().filter(|h| h.temp) {
                            flow.spans[h.span].end = i;
                        }
                        ctx.held.retain(|h| !h.temp);
                    }
                    stmt_start = i + 1;
                }
                b'}' => {
                    if let Some(ctx) = ctxs.last_mut() {
                        for h in ctx.held.iter().filter(|h| h.temp || h.depth >= depth) {
                            flow.spans[h.span].end = i;
                        }
                        ctx.held.retain(|h| !h.temp && h.depth < depth);
                    }
                    depth = depth.saturating_sub(1);
                    if ctxs.len() > 1 && ctxs.last().map(|c| c.start_depth > depth).unwrap_or(false)
                    {
                        let closed = ctxs.pop().expect("checked non-empty");
                        flow.contexts[closed.id].end = i;
                        for h in &closed.held {
                            flow.spans[h.span].end = i;
                        }
                    }
                    stmt_start = i + 1;
                }
                b';' => {
                    if let Some(ctx) = ctxs.last_mut() {
                        for h in ctx.held.iter().filter(|h| h.temp) {
                            flow.spans[h.span].end = i;
                        }
                        ctx.held.retain(|h| !h.temp);
                    }
                    stmt_start = i + 1;
                }
                b'|' => {
                    if let Some(params_end) = closure_params_end(text, i, end) {
                        let mut j = params_end + 1;
                        while j < end && text[j].is_ascii_whitespace() {
                            j += 1;
                        }
                        if j < end && text[j] == b'{' {
                            pending_closure = true;
                        }
                        // Expression-bodied closures keep the outer context
                        // (conservative over-approximation; rare and benign).
                        i = params_end;
                    }
                }
                b'd' if word_at(text, i, "drop") => {
                    if let Some((var, after)) = drop_argument(text, i + 4, end) {
                        if let Some(ctx) = ctxs.last_mut() {
                            if let Some(pos) = ctx
                                .held
                                .iter()
                                .rposition(|h| flow.spans[h.span].var.as_deref() == Some(var.as_str()))
                            {
                                let h = ctx.held.remove(pos);
                                flow.spans[h.span].end = i;
                            }
                        }
                        i = after;
                        continue;
                    }
                }
                b'r' if word_at(text, i, "return") => {
                    // `return g;` — the guard value escapes to the caller.
                    if let Some(var) = returned_ident(text, i + 6, end) {
                        if let Some(ctx) = ctxs.last() {
                            for h in &ctx.held {
                                if flow.spans[h.span].var.as_deref() == Some(var.as_str()) {
                                    flow.spans[h.span].escapes = true;
                                }
                            }
                        }
                    }
                }
                b'y' => {
                    if let Some(open) = crate::yields::yield_now_at(text, i, end) {
                        let ctx = ctxs.last().map(|c| c.id).unwrap_or(0);
                        flow.yields.push(YieldEvent { call: "yield_now", offset: i, ctx });
                        i = open;
                        continue;
                    }
                }
                b'.' => {
                    if let Some((method, open)) = crate::yields::yield_method_at(text, i, end) {
                        let ctx = ctxs.last().map(|c| c.id).unwrap_or(0);
                        flow.yields.push(YieldEvent { call: method, offset: i + 1, ctx });
                        i = open;
                        continue;
                    }
                    if let Some(acq) = acquisition_at(text, i, end) {
                        if let Some(chain) = receiver_chain(text, i) {
                            let field = chain.rsplit('.').next().unwrap_or(&chain).to_string();
                            let lock_id = format!("{}::{}", file.crate_name, field);
                            if !ignored.contains(&field) && !ignored.contains(&lock_id) {
                                let (bound_var, temp) =
                                    binding_of(text, stmt_start, acq.close_paren);
                                let ctx = ctxs.last_mut().expect("context stack never empty");
                                let span_id = flow.spans.len();
                                flow.spans.push(GuardSpan {
                                    lock: lock_id,
                                    chain,
                                    var: bound_var,
                                    start: i,
                                    end, // provisional; finalized on death
                                    ctx: ctx.id,
                                    escapes: false,
                                    line: line_of(text, i),
                                    column: column_of(text, i),
                                });
                                ctx.held.push(HeldMeta { span: span_id, depth, temp });
                            }
                        }
                        i = acq.close_paren + 1;
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Anything still held at the end of the body dies there.
        for scan in &ctxs {
            for h in &scan.held {
                flow.spans[h.span].end = end;
            }
        }
        flow
    }
}

struct Acquisition {
    close_paren: usize,
}

/// Detects `.lock()`, `.read()`, `.write()` (empty argument list only, so
/// `io::Read::read(&mut buf)` and friends never match) at offset `dot`.
fn acquisition_at(text: &[u8], dot: usize, end: usize) -> Option<Acquisition> {
    let mut j = dot + 1;
    let name_start = j;
    while j < end && is_ident_byte(text[j]) {
        j += 1;
    }
    let name = &text[name_start..j];
    if !(name == b"lock" || name == b"read" || name == b"write") {
        return None;
    }
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    if j >= end || text[j] != b'(' {
        return None;
    }
    j += 1;
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    if j < end && text[j] == b')' {
        Some(Acquisition { close_paren: j })
    } else {
        None
    }
}

/// Walks backward from the `.` of an acquisition to the start of the
/// receiver chain. Returns `None` when the receiver is not a simple
/// `ident(.ident)*` path (e.g. a call result), in which case the lock has
/// no stable class identity and the site is skipped.
fn receiver_chain(text: &[u8], dot: usize) -> Option<String> {
    let mut start = dot;
    while start > 0 {
        let b = text[start - 1];
        if is_ident_byte(b) || b == b'.' || b == b':' {
            start -= 1;
        } else {
            break;
        }
    }
    if start == dot {
        return None;
    }
    if start > 0 && text[start - 1] == b')' {
        return None;
    }
    let chain = String::from_utf8_lossy(&text[start..dot]).into_owned();
    let chain = chain.trim_matches('.').to_string();
    let last = chain.rsplit('.').next().unwrap_or("");
    let last = last.rsplit("::").next().unwrap_or("");
    if last.is_empty() || last.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true) {
        return None;
    }
    Some(chain)
}

/// Whether the acquisition ending at `close_paren` is `let g = x.lock();`
/// (a block-scoped guard) or a statement temporary. Returns the bound
/// variable name, if determinable, and the `temp` flag.
fn binding_of(text: &[u8], stmt_start: usize, close_paren: usize) -> (Option<String>, bool) {
    let mut k = close_paren + 1;
    while k < text.len() && text[k].is_ascii_whitespace() {
        k += 1;
    }
    let terminated = k < text.len() && text[k] == b';';
    if !terminated {
        return (None, true);
    }
    let mut s = stmt_start;
    while s < text.len() && text[s].is_ascii_whitespace() {
        s += 1;
    }
    if !word_at(text, s, "let") {
        return (None, true);
    }
    let mut v = s + 3;
    while v < text.len() && text[v].is_ascii_whitespace() {
        v += 1;
    }
    if word_at(text, v, "mut") {
        v += 3;
        while v < text.len() && text[v].is_ascii_whitespace() {
            v += 1;
        }
    }
    let var_start = v;
    while v < text.len() && is_ident_byte(text[v]) {
        v += 1;
    }
    if v == var_start {
        return (None, false); // e.g. destructuring `let (a, b) = …`
    }
    (Some(String::from_utf8_lossy(&text[var_start..v]).into_owned()), false)
}

/// If the `|` at `pipe` opens closure parameters, the offset of the
/// closing `|`.
fn closure_params_end(text: &[u8], pipe: usize, end: usize) -> Option<usize> {
    // `||` never means boolean-or at expression start; otherwise require a
    // preceding token that can only precede a closure.
    let mut p = pipe;
    while p > 0 && (text[p - 1] == b' ' || text[p - 1] == b'\t' || text[p - 1] == b'\n') {
        p -= 1;
    }
    let opens_closure = if p == 0 {
        true
    } else {
        let prev = text[p - 1];
        matches!(prev, b'(' | b',' | b'=' | b'{' | b';' | b':' | b'&' | b'>')
            || ends_with_word(text, p, "move")
            || ends_with_word(text, p, "return")
    };
    if !opens_closure {
        return None;
    }
    if pipe + 1 < end && text[pipe + 1] == b'|' {
        return Some(pipe + 1);
    }
    let mut j = pipe + 1;
    while j < end && j < pipe + 200 {
        match text[j] {
            b'|' => return Some(j),
            b';' | b'{' | b'}' => return None,
            _ => j += 1,
        }
    }
    None
}

/// Parses `drop ( ident )` starting after the `drop` keyword; returns the
/// identifier and the offset just past the closing paren.
fn drop_argument(text: &[u8], mut j: usize, end: usize) -> Option<(String, usize)> {
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    if j >= end || text[j] != b'(' {
        return None;
    }
    j += 1;
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    let start = j;
    while j < end && is_ident_byte(text[j]) {
        j += 1;
    }
    if j == start {
        return None;
    }
    let var = String::from_utf8_lossy(&text[start..j]).into_owned();
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    if j < end && text[j] == b')' {
        Some((var, j + 1))
    } else {
        None
    }
}

/// Parses the identifier of a `return <ident> ;`/`return <ident> }` form
/// starting just after the `return` keyword; anything else (method call,
/// expression, bare `return`) is not a value escape of a guard variable.
fn returned_ident(text: &[u8], mut j: usize, end: usize) -> Option<String> {
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    let start = j;
    while j < end && is_ident_byte(text[j]) {
        j += 1;
    }
    if j == start {
        return None;
    }
    let var = String::from_utf8_lossy(&text[start..j]).into_owned();
    while j < end && text[j].is_ascii_whitespace() {
        j += 1;
    }
    match text.get(j) {
        Some(b';') | Some(b'}') => Some(var),
        _ => None,
    }
}

fn word_at(text: &[u8], i: usize, word: &str) -> bool {
    let w = word.as_bytes();
    if i + w.len() > text.len() || &text[i..i + w.len()] != w {
        return false;
    }
    let before_ok = i == 0 || !is_ident_byte(text[i - 1]);
    let after_ok = i + w.len() >= text.len() || !is_ident_byte(text[i + w.len()]);
    before_ok && after_ok
}

fn ends_with_word(text: &[u8], end: usize, word: &str) -> bool {
    let w = word.as_bytes();
    end >= w.len()
        && &text[end - w.len()..end] == w
        && (end == w.len() || !is_ident_byte(text[end - w.len() - 1]))
}

/// Whether the statement opening a block at `limit` keeps its scrutinee
/// temporaries alive for the whole block: `match`, `for`, `if let`,
/// `while let` (plain `if`/`while` conditions drop them at the `{`).
fn scrutinee_extends_temporaries(text: &[u8], stmt_start: usize, limit: usize) -> bool {
    let mut s = stmt_start;
    while s < limit && text[s].is_ascii_whitespace() {
        s += 1;
    }
    let start = s;
    while s < limit && is_ident_byte(text[s]) {
        s += 1;
    }
    let first = match std::str::from_utf8(&text[start..s]) {
        Ok(w) => w,
        Err(_) => return false,
    };
    match first {
        "match" | "for" => true,
        "if" | "while" => {
            let mut t = s;
            while t < limit && text[t].is_ascii_whitespace() {
                t += 1;
            }
            word_at(text, t, "let")
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn flow_of(src: &str) -> (SourceFile, BodyFlow) {
        let file = SourceFile::parse("crates/demo/src/lib.rs", src);
        let f = &file.functions[0];
        let flow = BodyFlow::analyze(&file, f.body_start, f.body_end, &BTreeSet::new());
        (file, flow)
    }

    #[test]
    fn block_guard_spans_to_block_close() {
        let src = "fn f(&self) { { let g = self.alpha.lock(); g.touch(); } other(); }";
        let (file, flow) = flow_of(src);
        assert_eq!(flow.spans.len(), 1);
        let s = &flow.spans[0];
        assert_eq!(s.lock, "demo::alpha");
        assert_eq!(s.var.as_deref(), Some("g"));
        // Dead by the time `other()` runs.
        let other = src.find("other").unwrap();
        assert!(s.end < other);
        assert_eq!(file.text[s.end], b'}');
    }

    #[test]
    fn temporary_dies_at_statement_end() {
        let src = "fn f(&self) { self.alpha.lock().push(1); later(); }";
        let (file, flow) = flow_of(src);
        assert_eq!(flow.spans.len(), 1);
        assert_eq!(file.text[flow.spans[0].end], b';');
        assert!(flow.live_at(src.find("later").unwrap()).next().is_none());
    }

    #[test]
    fn drop_kills_even_inside_a_branch() {
        // Must-kill on lexically conditional drop: the workspace idiom is
        // "drop the guard in this arm, then RPC" — a maybe-live join
        // would flag the correct pattern.
        let src = "fn f(&self) { let g = self.alpha.lock(); match x { A => { drop(g); post(); } _ => {} } }";
        let (_, flow) = flow_of(src);
        let post = src.find("post").unwrap();
        assert!(flow.live_at(post).next().is_none());
        // …but the guard was live before the drop.
        let m = src.find("match").unwrap();
        assert_eq!(flow.live_at(m).count(), 1);
    }

    #[test]
    fn guard_born_before_branch_lives_past_the_join() {
        let src = "fn f(&self) { let g = self.alpha.lock(); if c { a(); } else { b(); } after(); }";
        let (_, flow) = flow_of(src);
        assert_eq!(flow.live_at(src.find("after").unwrap()).count(), 1);
    }

    #[test]
    fn closure_body_is_a_fresh_context() {
        let src = "fn f(&self) { let g = self.alpha.lock(); run(move || { inner(); }); tail(); }";
        let (_, flow) = flow_of(src);
        assert_eq!(flow.contexts.len(), 2);
        let inner = src.find("inner").unwrap();
        let tail = src.find("tail").unwrap();
        assert_eq!(flow.ctx_of(inner), 1);
        assert_eq!(flow.ctx_of(tail), 0);
        // The outer guard is not live inside the closure…
        assert!(flow.live_at(inner).next().is_none());
        // …but is live at the same-context tail call.
        assert_eq!(flow.live_at(tail).count(), 1);
    }

    #[test]
    fn guard_var_resolves_to_its_lock() {
        let src = "fn f(&self) { let q = self.queue.lock(); use_it(); }";
        let (_, flow) = flow_of(src);
        let at = src.find("use_it").unwrap();
        let span = flow.guard_var_at("q", at).expect("guard var q live");
        assert_eq!(span.lock, "demo::queue");
        assert!(flow.guard_var_at("r", at).is_none());
    }

    #[test]
    fn returned_guard_marked_escaping() {
        let src = "fn f(&self) -> G { let g = self.alpha.lock(); return g; }";
        let (_, flow) = flow_of(src);
        assert_eq!(flow.spans.len(), 1);
        assert!(flow.spans[0].escapes);
    }

    #[test]
    fn returned_expression_is_not_an_escape() {
        let src = "fn f(&self) -> usize { let g = self.alpha.lock(); return g.len(); }";
        let (_, flow) = flow_of(src);
        assert!(!flow.spans[0].escapes);
    }

    #[test]
    fn yield_events_carry_context() {
        let src = "fn f(&self) { let g = self.alpha.lock(); self.m.forward(&a, N, 1, &v); spawn(move || { self.m.notify(&a, N, 1, &v); }); }";
        let (_, flow) = flow_of(src);
        assert_eq!(flow.yields.len(), 2);
        assert_eq!(flow.yields[0].call, "forward");
        assert_eq!(flow.yields[0].ctx, 0);
        assert_eq!(flow.yields[1].call, "notify");
        assert_eq!(flow.yields[1].ctx, 1);
    }

    #[test]
    fn scrutinee_temporary_promoted_to_block_scope() {
        let src = "fn f(&self) { match self.alpha.lock().kind { _ => { arm(); } } after(); }";
        let (_, flow) = flow_of(src);
        assert_eq!(flow.live_at(src.find("arm").unwrap()).count(), 1);
        assert!(flow.live_at(src.find("after").unwrap()).next().is_none());
    }
}
