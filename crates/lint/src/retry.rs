//! Interprocedural retry-soundness analysis (MOCHI013).
//!
//! PR 5's retry plane only re-sends RPCs that were passed to
//! `MargoRuntime::declare_idempotent` — the declaration is a promise
//! that re-executing the handler converges to the same state. Nothing
//! checked the promise: a handler edit that adds a counter bump or an
//! unconditional `remove` silently reintroduces the duplicate-execution
//! bug the chaos soak exists to catch, *only* under transport faults.
//!
//! The analysis rebuilds the declared-idempotent set lexically:
//!
//! * direct calls — `margo.declare_idempotent(rpc::START)` resolves the
//!   name through the contract table's constant resolver;
//! * loop form — `for name in IDEMPOTENT_RPCS { margo.declare_idempotent(name) }`
//!   resolves `IDEMPOTENT_RPCS` as a `const …: &[&str]` array (elements
//!   are string literals or `rpc_names` constants).
//!
//! For every declared RPC it finds the server-side registration (the
//! contract table's `Register` site with that name), seeds the walk with
//! the handler closure's resolved callees, and scans every reachable
//! function body for non-idempotent effect shapes:
//!
//! * `.remove(` / `.take(` / `.pop(` / `.push(` / `.append(` /
//!   `.extend(` on a *shared* receiver (the chain goes through `self`,
//!   `.lock()`, or `.write()` — plain local collections are fine);
//! * `fetch_add(` / `fetch_sub(` and dotted `+=` (field counters);
//! * `.write_all(` / `.write_all_at(` in the REMI crate (file appends).
//!
//! Keyed overwrites (`insert`, `store`) are deliberately *not* effects —
//! last-writer-wins is the idempotency shape the services are built on.
//! Backend files (`/backend/`, `target.rs`) are not descended into:
//! storage engines sit *under* the keyed-overwrite contract (an LSM put
//! appends to its WAL, but replaying the same put converges), so effects
//! inside them are the mechanism, not a violation of it.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::contracts::{
    matching_paren, preceded_by_fn_keyword, resolve_name, skip_ws, split_args, ConstTable, Role,
    RpcSite,
};
use crate::deadline::PLUMBING;
use crate::lexer::{column_of, is_ident_byte, line_of};
use crate::source::SourceFile;

/// One non-idempotent effect reachable from a retryable RPC's handler.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RetrySite {
    pub file: String,
    pub function: String,
    pub crate_name: String,
    pub line: usize,
    pub column: usize,
    /// The RPC whose retry declaration this effect undermines.
    pub rpc: String,
    /// Effect shape (`remove`, `push`, `counter`, `file-append`, …).
    pub effect: String,
    /// `<effect>:<rpc>` — the allowlist kind.
    pub kind: String,
}

const MUTATING_METHODS: &[&str] = &["append", "extend", "pop", "push", "remove", "take"];

/// Runs the analysis.
pub fn check(
    files: &[SourceFile],
    graph: &CallGraph,
    consts: &ConstTable,
    sites: &[RpcSite],
) -> Vec<RetrySite> {
    let idempotent = idempotent_rpcs(files, consts);
    if idempotent.is_empty() {
        return Vec::new();
    }

    let mut findings = Vec::new();
    let mut seen: BTreeSet<(String, String, usize)> = BTreeSet::new();
    for rpc in &idempotent {
        for site in sites {
            if site.role != Role::Register || site.name.as_deref() != Some(rpc.as_str()) {
                continue;
            }
            for node_id in graph.nodes_named(&site.file, &site.function) {
                let node = &graph.nodes[node_id];
                let file = &files[node.file_idx];
                // The handler body: the registration call's final
                // argument when we can locate the call, the whole
                // registering function otherwise (macro registrations).
                let span = registration_span(graph, node_id, site.line)
                    .unwrap_or_else(|| {
                        let f = &file.functions[node.func_idx];
                        (f.body_start, f.body_end)
                    });
                let mut seeds: Vec<usize> = Vec::new();
                for call in &graph.calls[node_id] {
                    if call.in_spawn || call.offset < span.0 || call.offset >= span.1 {
                        continue;
                    }
                    seeds.extend(call.targets.iter().copied());
                }
                seeds.sort_unstable();
                seeds.dedup();
                let parents = graph.reachable(&seeds, |n| {
                    !PLUMBING.contains(&n.crate_name.as_str()) && !is_boundary(&n.file)
                });

                // Effect spans: the handler closure itself, plus every
                // reachable function body.
                let mut spans: Vec<(usize, usize, usize)> = vec![(node.file_idx, span.0, span.1)];
                for &id in parents.keys() {
                    let n = &graph.nodes[id];
                    let f = &files[n.file_idx].functions[n.func_idx];
                    spans.push((n.file_idx, f.body_start, f.body_end));
                }
                for (file_idx, start, end) in spans {
                    let in_file = &files[file_idx];
                    for (effect, offset) in scan_effects(in_file, start, end) {
                        let function = in_file
                            .function_at(offset)
                            .map(|f| f.name.clone())
                            .unwrap_or_default();
                        if !seen.insert((rpc.clone(), in_file.rel_path.clone(), offset)) {
                            continue;
                        }
                        findings.push(RetrySite {
                            file: in_file.rel_path.clone(),
                            function,
                            crate_name: in_file.crate_name.clone(),
                            line: line_of(&in_file.text, offset),
                            column: column_of(&in_file.text, offset),
                            rpc: rpc.clone(),
                            effect: effect.clone(),
                            kind: format!("{effect}:{rpc}"),
                        });
                    }
                }
            }
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

/// Storage-engine and raw-target files: effects inside them implement
/// the keyed-overwrite contract rather than violate it.
fn is_boundary(rel_path: &str) -> bool {
    rel_path.contains("/backend/") || rel_path.ends_with("/target.rs")
}

/// The declared-idempotent RPC names across the workspace.
pub fn idempotent_rpcs(files: &[SourceFile], consts: &ConstTable) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for file in files {
        let text = &file.text;
        let mut i = 0usize;
        while let Some(pos) = find_word(text, b"declare_idempotent", i) {
            i = pos + 1;
            if preceded_by_fn_keyword(text, pos) {
                continue; // the definition in margo
            }
            let mut j = skip_ws(text, pos + b"declare_idempotent".len());
            if text.get(j) != Some(&b'(') {
                continue;
            }
            let open = j;
            j = matching_paren(text, open);
            let args = split_args(text, open + 1, j);
            // A lone string-literal argument is blanked to spaces in the
            // sanitized text and split_args reads that as zero arguments;
            // fall back to the whole paren span (resolve_name re-reads
            // the raw buffer, where the literal survives).
            let (s, e) = args.first().copied().unwrap_or((open + 1, j));
            if s >= e {
                continue;
            }
            if let Some(name) = resolve_name(file, consts, s, e) {
                out.insert(name);
                continue;
            }
            // Loop form: the argument is the loop variable of
            // `for <ident> in <CONST_ARRAY>`.
            let arg = String::from_utf8_lossy(&text[s..e]).trim().to_string();
            if !arg.is_empty() && arg.bytes().all(is_ident_byte) {
                if let Some(array) = enclosing_loop_iterable(file, pos, &arg) {
                    out.extend(resolve_array(files, consts, &file.crate_name, &array));
                }
            }
        }
    }
    out
}

/// Finds `for <var> in <path> {` preceding `pos` in the enclosing
/// function and returns the iterable's final path segment.
fn enclosing_loop_iterable(file: &SourceFile, pos: usize, var: &str) -> Option<String> {
    let function = file.function_at(pos)?;
    let text = &file.text;
    let mut best = None;
    let mut i = function.body_start;
    while let Some(kw) = find_word(text, b"for", i) {
        if kw >= pos {
            break;
        }
        i = kw + 1;
        let mut j = skip_ws(text, kw + 3);
        let ident_start = j;
        while j < text.len() && is_ident_byte(text[j]) {
            j += 1;
        }
        if &text[ident_start..j] != var.as_bytes() {
            continue;
        }
        j = skip_ws(text, j);
        if !word_eq(text, j, "in") {
            continue;
        }
        j = skip_ws(text, j + 2);
        while j < text.len() && matches!(text[j], b'&' | b'*') {
            j += 1;
        }
        let path_start = j;
        while j < text.len() && (is_ident_byte(text[j]) || text[j] == b':') {
            j += 1;
        }
        let path = String::from_utf8_lossy(&text[path_start..j]).into_owned();
        if let Some(seg) = path.rsplit("::").next().filter(|s| !s.is_empty()) {
            best = Some(seg.to_string());
        }
    }
    best
}

/// Resolves `const <ident>: &[&str] = &[…];` in `crate_name` — elements
/// are string literals (read from the raw buffer via the contract
/// resolver) or constant paths.
fn resolve_array(
    files: &[SourceFile],
    consts: &ConstTable,
    crate_name: &str,
    ident: &str,
) -> Vec<String> {
    let mut names = Vec::new();
    for file in files.iter().filter(|f| f.crate_name == crate_name) {
        let text = &file.text;
        let mut i = 0usize;
        while let Some(kw) = find_word(text, b"const", i) {
            i = kw + 1;
            let j = skip_ws(text, kw + 5);
            if !word_eq(text, j, ident) {
                continue;
            }
            // Skip to `=`, then to the array `[`.
            let mut k = j + ident.len();
            while k < text.len() && !matches!(text[k], b'=' | b';') {
                k += 1;
            }
            if text.get(k) != Some(&b'=') {
                continue;
            }
            while k < text.len() && !matches!(text[k], b'[' | b';') {
                k += 1;
            }
            if text.get(k) != Some(&b'[') {
                continue;
            }
            let open = k;
            let mut depth = 0i32;
            let mut close = open;
            while close < text.len() {
                match text[close] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                close += 1;
            }
            // Single-element arrays hit the same blanked-literal shape as
            // single-argument calls: split_args sees only whitespace.
            let mut spans = split_args(text, open + 1, close);
            if spans.is_empty() && open + 1 < close {
                spans.push((open + 1, close));
            }
            for (s, e) in spans {
                if let Some(name) = resolve_name(file, consts, s, e) {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// The handler-closure span of the registration call at `line` in
/// `node`: the final argument of the `register`/`register_typed` site.
fn registration_span(graph: &CallGraph, node_id: usize, line: usize) -> Option<(usize, usize)> {
    graph.calls[node_id]
        .iter()
        .filter(|c| {
            c.line == line && matches!(c.callee.as_str(), "register" | "register_typed")
        })
        .filter_map(|c| c.args.last().copied())
        .next()
}

/// Non-idempotent effect shapes in `[start, end)` of `file`.
fn scan_effects(file: &SourceFile, start: usize, end: usize) -> Vec<(String, usize)> {
    let text = &file.text;
    let end = end.min(text.len());
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let b = text[i];
        // Dotted `+=`: a field counter (`transfer.received_bytes += n`).
        if b == b'+' && text.get(i + 1) == Some(&b'=') && text.get(i.wrapping_sub(1)) != Some(&b'+')
        {
            let lhs_start = receiver_scan_back(text, i);
            let lhs = &text[lhs_start..i];
            if lhs.contains(&b'.') {
                out.push(("counter".to_string(), i));
            }
            i += 2;
            continue;
        }
        if b != b'.' {
            i += 1;
            continue;
        }
        let name_start = i + 1;
        let mut j = name_start;
        while j < end && is_ident_byte(text[j]) {
            j += 1;
        }
        if j == name_start || text.get(j) != Some(&b'(') {
            i += 1;
            continue;
        }
        let name = String::from_utf8_lossy(&text[name_start..j]).into_owned();
        let effect = if name == "fetch_add" || name == "fetch_sub" {
            Some("counter")
        } else if (name == "write_all" || name == "write_all_at") && file.crate_name == "remi" {
            Some("file-append")
        } else if MUTATING_METHODS.contains(&name.as_str()) {
            let recv_start = receiver_scan_back(text, i);
            let recv = String::from_utf8_lossy(&text[recv_start..i]);
            if recv.contains("lock()") || recv.contains("write()") || recv.starts_with("self") {
                match name.as_str() {
                    "append" | "extend" | "push" => Some("push"),
                    "remove" => Some("remove"),
                    "take" => Some("take"),
                    _ => Some("pop"),
                }
            } else {
                None
            }
        } else {
            None
        };
        if let Some(effect) = effect {
            out.push((effect.to_string(), name_start));
        }
        i = j;
    }
    out
}

/// Walks back over an ident/dot/paren-group chain (shared with the call
/// scanner's receiver logic, duplicated to keep span semantics local).
fn receiver_scan_back(text: &[u8], mut i: usize) -> usize {
    while i > 0 && text[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    while i > 0 {
        let b = text[i - 1];
        if is_ident_byte(b) || b == b'.' {
            i -= 1;
        } else if b == b')' || b == b']' {
            let (open, close) = if b == b')' { (b'(', b')') } else { (b'[', b']') };
            let mut depth = 0usize;
            while i > 0 {
                let c = text[i - 1];
                if c == close {
                    depth += 1;
                } else if c == open {
                    depth -= 1;
                    if depth == 0 {
                        i -= 1;
                        break;
                    }
                }
                i -= 1;
            }
        } else {
            break;
        }
    }
    i
}

fn find_word(text: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i + needle.len() <= text.len() {
        if &text[i..i + needle.len()] == needle
            && (i == 0 || !is_ident_byte(text[i - 1]))
            && !text.get(i + needle.len()).map(|&b| is_ident_byte(b)).unwrap_or(false)
        {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn word_eq(text: &[u8], i: usize, word: &str) -> bool {
    let w = word.as_bytes();
    i + w.len() <= text.len()
        && &text[i..i + w.len()] == w
        && !text.get(i + w.len()).map(|&b| is_ident_byte(b)).unwrap_or(false)
}
